//! Schedule an FFT butterfly task graph onto a hypercube multiprocessor.
//!
//! The FFT is the canonical "wide" DAG: every stage is fully parallel, but
//! the butterfly exchange pattern forces communication whose cost grows with
//! the distance between the processors holding the two operands.  This
//! example shows how the communication model (uniform latency vs. hop-scaled)
//! changes the schedules the optimiser produces, and how the bounded
//! suboptimal Aε* search scales to a graph that is already expensive for
//! exact search.
//!
//! Run with: `cargo run --release --example fft_on_hypercube`

use optsched::prelude::*;

fn main() {
    // 4-point FFT: 3 layers of 4 tasks = 12 tasks.
    let graph = fft_butterfly(4, 10, 8);
    println!(
        "FFT butterfly DAG: {} tasks, {} messages, CCR = {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.ccr()
    );

    for (label, network) in [
        ("4-PE hypercube, uniform link latency", ProcNetwork::hypercube(4)),
        (
            "4-PE hypercube, hop-scaled communication",
            ProcNetwork::hypercube(4).with_comm_model(CommModel::HopScaled),
        ),
        ("4-PE chain, hop-scaled communication", ProcNetwork::chain(4).with_comm_model(CommModel::HopScaled)),
    ] {
        let problem = SchedulingProblem::new(graph.clone(), network.clone());
        let optimal = AStarScheduler::new(&problem).run();
        let approx = AEpsScheduler::new(&problem, 0.2).run();
        let serial: Cost = graph.total_computation();
        println!("\n== {label} ==");
        println!(
            "optimal length = {} (serial {}, speedup {:.2}x), A* expanded {} states",
            optimal.schedule_length,
            serial,
            serial as f64 / optimal.schedule_length as f64,
            optimal.stats.expanded
        );
        println!(
            "Aε*(0.2) length = {} using {} expansions ({:.0}% of exact)",
            approx.schedule_length,
            approx.stats.expanded,
            100.0 * approx.stats.expanded as f64 / optimal.stats.expanded.max(1) as f64
        );
        println!(
            "processors used in the optimum: {}",
            optimal.expect_schedule().procs_used()
        );
    }
}

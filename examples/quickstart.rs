//! Quickstart: schedule the paper's example task graph (Figure 1) onto a
//! 3-processor ring and reproduce the worked example of Sections 3.1–3.4.
//!
//! Run with: `cargo run --release --example quickstart`

use optsched::prelude::*;

fn main() {
    // Figure 1(a): 6 tasks; Figure 1(b): 3 processors in a ring.
    let graph = paper_example_dag();
    let network = ProcNetwork::ring(3);

    println!("== task graph ==");
    println!("{} nodes, {} edges, CCR = {:.2}", graph.num_nodes(), graph.num_edges(), graph.ccr());
    let levels = GraphLevels::compute(&graph);
    println!("{:<6} {:>4} {:>8} {:>8}", "node", "sl", "b-level", "t-level");
    for n in graph.node_ids() {
        println!(
            "{:<6} {:>4} {:>8} {:>8}",
            format!("n{}", n.0 + 1),
            levels.static_level(n),
            levels.b_level(n),
            levels.t_level(n)
        );
    }
    println!("critical path length = {}\n", levels.critical_path_length());

    let problem = SchedulingProblem::new(graph.clone(), network.clone());
    println!("list-heuristic upper bound U = {}", problem.upper_bound());

    // Serial A* with every pruning technique (Section 3.1 + 3.2).
    let result = AStarScheduler::new(&problem).run();
    println!("\n== serial A* ==");
    println!("optimal schedule length = {}", result.schedule_length);
    println!(
        "states generated = {}, expanded = {}, pruned = {}",
        result.stats.generated,
        result.stats.expanded,
        result.stats.total_pruned()
    );
    println!("{}", render_gantt(result.expect_schedule(), &graph));

    // Parallel A* on two PPE threads (Section 3.3).
    let parallel = ParallelAStarScheduler::new(&problem, ParallelConfig::exact(2)).run();
    println!("== parallel A* (2 PPEs) ==");
    println!(
        "schedule length = {}, total states expanded = {} (per PPE: {:?})",
        parallel.schedule_length(),
        parallel.total_expanded(),
        parallel.per_ppe_stats.iter().map(|s| s.expanded).collect::<Vec<_>>()
    );

    // Approximate Aε* (Section 3.4).
    for eps in [0.2, 0.5] {
        let approx = AEpsScheduler::new(&problem, eps).run();
        println!(
            "Aε* with ε = {:.1}: length = {} (optimal {}), expanded = {}",
            eps, approx.schedule_length, result.schedule_length, approx.stats.expanded
        );
    }

    // The Chen & Yu branch-and-bound baseline used in Table 1.
    let chen = ChenYuScheduler::new(&problem).run();
    println!(
        "Chen & Yu B&B: length = {}, states = {}, path segments enumerated = {}",
        chen.schedule_length, chen.stats.generated, chen.stats.path_segments_enumerated
    );
}

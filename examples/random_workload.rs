//! Reproduce a slice of the paper's experimental set-up (Section 4.1) on a
//! single random task graph: generate a graph with a chosen CCR, then compare
//!
//! * the list-scheduling heuristics (polynomial time, no guarantee),
//! * the Chen & Yu branch-and-bound baseline,
//! * the serial A* with and without the pruning techniques, and
//! * the parallel A* on several PPE counts,
//!
//! reporting schedule lengths, state counts and wall-clock times.
//!
//! Run with: `cargo run --release --example random_workload -- [nodes] [ccr] [seed]`
//! (defaults: 10 nodes, CCR 1.0, seed 7; sizes much above 12 make the
//! un-pruned search very slow, which is precisely the paper's point).

use std::env;

use optsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let ccr: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.0);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generate_random_dag(
        &RandomDagConfig { nodes, ccr, ..Default::default() },
        &mut rng,
    );
    println!(
        "random DAG: v = {}, e = {}, requested CCR = {}, measured CCR = {:.2}, CP = {}",
        graph.num_nodes(),
        graph.num_edges(),
        ccr,
        graph.ccr(),
        graph.critical_path_length()
    );

    // The paper lets the search use up to v target processors but observes
    // that far fewer are needed; four fully connected TPEs keep this example
    // fast while leaving room for real parallelism.
    let network = ProcNetwork::fully_connected(4);
    let problem = SchedulingProblem::new(graph.clone(), network.clone());

    println!("\n{:<38} {:>8} {:>12} {:>12} {:>10}", "algorithm", "length", "generated", "expanded", "time (ms)");
    let row = |name: &str, len: Cost, generated: u64, expanded: u64, ms: f64| {
        println!("{name:<38} {len:>8} {generated:>12} {expanded:>12} {ms:>10.1}");
    };

    let (hname, hsched) = best_heuristic_schedule(&graph, &network);
    row(&format!("list heuristic ({hname})"), hsched.makespan(), 0, 0, 0.0);

    let chen = ChenYuScheduler::new(&problem).run();
    row("Chen & Yu branch-and-bound", chen.schedule_length, chen.stats.generated, chen.stats.expanded, chen.elapsed.as_secs_f64() * 1e3);

    let full = AStarScheduler::new(&problem).with_pruning(PruningConfig::none()).run();
    row("A* without pruning", full.schedule_length, full.stats.generated, full.stats.expanded, full.elapsed.as_secs_f64() * 1e3);

    let pruned = AStarScheduler::new(&problem).run();
    row("A* with pruning", pruned.schedule_length, pruned.stats.generated, pruned.stats.expanded, pruned.elapsed.as_secs_f64() * 1e3);

    for eps in [0.2, 0.5] {
        let approx = AEpsScheduler::new(&problem, eps).run();
        row(
            &format!("Aε* (ε = {eps})"),
            approx.schedule_length,
            approx.stats.generated,
            approx.stats.expanded,
            approx.elapsed.as_secs_f64() * 1e3,
        );
    }

    for q in [2, 4] {
        let par = ParallelAStarScheduler::new(&problem, ParallelConfig::exact(q)).run();
        row(
            &format!("parallel A* ({q} PPEs)"),
            par.schedule_length(),
            par.total_stats().generated,
            par.total_expanded(),
            par.elapsed.as_secs_f64() * 1e3,
        );
    }

    assert_eq!(pruned.schedule_length, full.schedule_length, "pruning never changes the optimum");
    assert_eq!(pruned.schedule_length, chen.schedule_length, "both exact algorithms agree");
    println!(
        "\noptimal = {}, heuristic degradation = {:+.1}%",
        pruned.schedule_length,
        100.0 * (hsched.makespan() as f64 - pruned.schedule_length as f64)
            / pruned.schedule_length as f64
    );
}

//! Schedule the task graph of a Gaussian-elimination kernel onto a mesh of
//! processors, comparing the polynomial-time heuristics against the optimal
//! A* schedule and the bounded-suboptimality Aε* schedule.
//!
//! Gaussian elimination is one of the classic "regular" application DAGs the
//! DAG-scheduling literature (including the authors' other papers) evaluates
//! on; it has a long critical path of pivot tasks with fan-out update tasks,
//! so the optimal processor count is small and communication costs matter.
//!
//! Run with: `cargo run --release --example gaussian_elimination`

use optsched::prelude::*;

fn main() {
    // Elimination of a 5x5 matrix: 14 tasks. Computation cost 20 per task,
    // communication cost 15 per message (CCR ~ 0.75).
    let graph = gaussian_elimination(5, 20, 15);
    println!(
        "Gaussian elimination DAG: {} tasks, {} messages, CCR = {:.2}, critical path = {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.ccr(),
        graph.critical_path_length()
    );

    // A 2x2 mesh of identical processors.
    let network = ProcNetwork::mesh(2, 2);
    let problem = SchedulingProblem::new(graph.clone(), network.clone());

    println!("\n-- polynomial-time heuristics --");
    for (name, cfg) in [
        ("b-level, earliest start", ListConfig::default()),
        (
            "b-level, earliest finish + insertion",
            ListConfig { policy: ProcessorPolicy::EarliestFinish, insertion: true, ..Default::default() },
        ),
        (
            "static level, earliest start",
            ListConfig { priority: LevelKind::StaticLevel, ..Default::default() },
        ),
    ] {
        let s = list_schedule(&graph, &network, cfg);
        s.validate(&graph, &network).expect("heuristic schedules are valid");
        println!("{name:<40} length = {}", s.makespan());
    }

    println!("\n-- optimal (serial A*) --");
    let optimal = AStarScheduler::new(&problem).run();
    println!(
        "length = {}  ({} states generated, {} expanded, {:.1} ms)",
        optimal.schedule_length,
        optimal.stats.generated,
        optimal.stats.expanded,
        optimal.elapsed.as_secs_f64() * 1e3
    );
    println!("{}", render_gantt(optimal.expect_schedule(), &graph));

    println!("-- bounded suboptimality (Aε*, ε = 0.2) --");
    let approx = AEpsScheduler::new(&problem, 0.2).run();
    let deviation =
        100.0 * (approx.schedule_length as f64 - optimal.schedule_length as f64)
            / optimal.schedule_length as f64;
    println!(
        "length = {} ({:+.1}% from optimal), {} states expanded ({:.0}% of exact)",
        approx.schedule_length,
        deviation,
        approx.stats.expanded,
        100.0 * approx.stats.expanded as f64 / optimal.stats.expanded.max(1) as f64
    );

    println!("\n-- how many processors does the optimum actually need? --");
    for p in 1..=4 {
        let prob = SchedulingProblem::new(graph.clone(), ProcNetwork::fully_connected(p));
        let r = AStarScheduler::new(&prob).run();
        println!(
            "p = {p}: optimal length = {:>4}, processors used = {}",
            r.schedule_length,
            r.expect_schedule().procs_used()
        );
    }
}

//! Results of a parallel search run.

use std::time::Duration;

use optsched_core::{SearchOutcome, SearchStats};
use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::closed::ClosedTableStats;

/// Outcome of a parallel A* / Aε* run, including per-PPE statistics.
#[derive(Debug, Clone)]
pub struct ParallelSearchResult {
    /// The best complete schedule found.
    pub schedule: Schedule,
    /// Why the run stopped (same meaning as for the serial schedulers; for
    /// an ε-bounded run, `Optimal` means "within the configured bound").
    pub outcome: SearchOutcome,
    /// Statistics of every PPE, indexed by PPE id.
    pub per_ppe_stats: Vec<SearchStats>,
    /// Per-shard hit/miss statistics of the global CLOSED table
    /// (`None` when the run used `DuplicateDetection::Local`).
    pub closed_stats: Option<ClosedTableStats>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Number of PPE threads used.
    pub num_ppes: usize,
    /// High-water mark of the `in_flight` gauge in fixed-size state
    /// *records*: one per scheduled node of a shipped delta chain, `v` (the
    /// node count) per full clone shipped by the eager store.  Whatever is
    /// parked in the inter-PPE channels is owned by no PPE's state store, so
    /// it escapes the per-PPE `peak_live_states` counters; the result folds
    /// the peak back in (see [`ParallelSearchResult::peak_live_states`]) so
    /// the memory headline stays airtight under eager communication.
    pub peak_in_flight: u64,
}

impl ParallelSearchResult {
    /// Schedule length of the returned schedule.
    pub fn schedule_length(&self) -> Cost {
        self.schedule.makespan()
    }

    /// True if the run carries its optimality (or ε-bound) guarantee.
    pub fn is_optimal(&self) -> bool {
        self.outcome == SearchOutcome::Optimal
    }

    /// Aggregated statistics over all PPEs.
    ///
    /// Delegates to [`SearchStats::merge`], the single authoritative
    /// definition of how per-PPE counters aggregate (sums for additive
    /// counters, max for high-water marks), so a counter added to
    /// `SearchStats` can never be silently dropped from the totals.
    pub fn total_stats(&self) -> SearchStats {
        let mut total = SearchStats::default();
        for s in &self.per_ppe_stats {
            total.merge(s);
        }
        total
    }

    /// Total states expanded across all PPEs.
    pub fn total_expanded(&self) -> u64 {
        self.per_ppe_stats.iter().map(|s| s.expanded).sum()
    }

    /// Redundant cross-PPE expansions avoided by the sharded global CLOSED
    /// table: states dropped at generation time because a *different* PPE had
    /// already claimed the same partial schedule.  Always 0 in `Local` mode,
    /// where every PPE prunes only against its own history.
    pub fn redundant_expansions_avoided(&self) -> u64 {
        self.per_ppe_stats.iter().map(|s| s.duplicates_global).sum()
    }

    /// The run's live-full-state memory headline: the largest number of
    /// fully materialised states any single PPE's store held at once
    /// (root-plus-scratch with the delta arena, every stored state with
    /// `StoreKind::EagerClone`) **plus** the in-flight transfer high-water
    /// mark — clones parked in the channels belong to no store, and before
    /// they were folded in here an eagerly communicating run could park an
    /// unbounded number of full states in flight without the headline
    /// moving.  The store-only component remains available as
    /// `total_stats().peak_live_states`.
    pub fn peak_live_states(&self) -> u64 {
        self.total_stats().peak_live_states + self.peak_in_flight
    }

    /// Ownership-transferring best-state election transfers accepted across
    /// all PPEs (always 0 in `Local` mode, whose election sends copies).
    pub fn election_transfers(&self) -> u64 {
        self.total_stats().election_transfers
    }

    /// Ratio between the busiest and the least busy PPE (1.0 = perfectly even).
    ///
    /// A rough indicator of how well the round-robin load sharing balanced
    /// the search; returns 1.0 when fewer than two PPEs did any work.
    pub fn load_imbalance(&self) -> f64 {
        let counts: Vec<u64> = self.per_ppe_stats.iter().map(|s| s.expanded).collect();
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_core::SearchStats;

    fn dummy(expanded: Vec<u64>) -> ParallelSearchResult {
        ParallelSearchResult {
            schedule: Schedule::new(1, 1),
            outcome: SearchOutcome::Optimal,
            per_ppe_stats: expanded
                .into_iter()
                .map(|e| SearchStats {
                    expanded: e,
                    generated: e * 2,
                    duplicates_global: e / 10,
                    election_transfers: e / 5,
                    max_open_size: e as usize,
                    peak_live_states: e + 1,
                    ..Default::default()
                })
                .collect(),
            closed_stats: None,
            elapsed: Duration::from_millis(1),
            num_ppes: 2,
            peak_in_flight: 3,
        }
    }

    #[test]
    fn aggregation_sums_counters() {
        let r = dummy(vec![10, 30]);
        assert_eq!(r.total_expanded(), 40);
        assert_eq!(r.total_stats().generated, 80);
        assert_eq!(r.redundant_expansions_avoided(), 4);
        assert_eq!(r.total_stats().duplicates_global, 4);
        assert_eq!(r.election_transfers(), 8);
        // High-water marks take the max across PPEs, not the sum; the
        // headline additionally folds in the in-flight transfer peak.
        assert_eq!(r.total_stats().max_open_size, 30);
        assert_eq!(r.total_stats().peak_live_states, 31);
        assert_eq!(r.peak_live_states(), 31 + 3);
        assert!((r.load_imbalance() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn load_imbalance_edge_cases() {
        assert_eq!(dummy(vec![0, 0]).load_imbalance(), 1.0);
        assert_eq!(dummy(vec![5, 0]).load_imbalance(), f64::INFINITY);
    }
}

//! Parallel A* / Aε* DAG scheduling (Section 3.3 of Kwok & Ahmad, ICPP'98).
//!
//! The paper parallelises the A* scheduler over the *physical* processing
//! elements (PPEs) of an Intel Paragon: every PPE keeps its own OPEN and
//! CLOSED lists, PPEs are connected by a mesh and only communicate with their
//! topological neighbours, work is balanced with a round-robin load-sharing
//! scheme, and the communication period decreases exponentially
//! (T = v/2, v/4, …, down to 2 expansions) as the search converges.
//!
//! **Substitution note** (see `DESIGN.md`): the Paragon is replaced by a
//! thread-based PPE simulator.  Each PPE is an OS thread with private search
//! lists; the PPE interconnection topology is virtual (any
//! [`Topology`](optsched_procnet::Topology)); states travel between
//! neighbouring PPEs over `crossbeam` channels; the incumbent schedule,
//! per-PPE best costs and termination flag live behind shared atomics/locks.
//! The control flow — initial distribution cases 1–3, neighbour-only
//! communication, best-state election, round-robin sharing, exponentially
//! shrinking periods, goal broadcast — follows Section 3.3.
//!
//! **Beyond the paper**: on shared memory the private per-PPE CLOSED lists
//! are optional.  By default duplicate detection is *global*: a sharded,
//! lock-striped CLOSED table ([`closed::ShardedClosedTable`]) shared by all
//! PPEs drops a state at generation time when any PPE has already claimed an
//! equal-or-better partial schedule, eliminating the redundant cross-PPE
//! expansions of the paper's design.  Select the paper's behaviour with
//! [`DuplicateDetection::Local`] (see [`ParallelConfig::duplicate_detection`]).
//!
//! Two further shared-memory departures (PR 4): each PPE stores its frontier
//! in an arena of parent-id + delta records
//! ([`StateArena`](optsched_core::engine::StateArena), selected by
//! [`ParallelConfig::store`]), materialising full states only on expansion
//! and on send, so a worker's live full states stay at root-plus-scratch; and
//! in sharded mode the best-state election *transfers claim ownership* of the
//! elected state to the neighbour with the worst frontier instead of sending
//! a copy that the receiver would immediately drop as a global duplicate
//! (counted in `SearchStats::election_transfers`).
//!
//! ```
//! use optsched_core::SchedulingProblem;
//! use optsched_parallel::{ParallelAStarScheduler, ParallelConfig};
//! use optsched_procnet::ProcNetwork;
//! use optsched_taskgraph::paper_example_dag;
//!
//! let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
//! let config = ParallelConfig { num_ppes: 2, ..Default::default() };
//! let result = ParallelAStarScheduler::new(&problem, config).run();
//! assert_eq!(result.schedule_length(), 14);
//! ```

#![warn(missing_docs)]

pub mod closed;
pub mod config;
pub mod result;
pub mod scheduler;

pub use closed::{ClaimOutcome, ClosedTableStats, DuplicateDetection, ShardedClosedTable, TableBackend};
pub use config::ParallelConfig;
pub use result::ParallelSearchResult;
pub use scheduler::ParallelAStarScheduler;

//! The thread-based parallel A* / Aε* scheduler.
//!
//! Every PPE (thread) runs the same best-first loop as the serial scheduler
//! on its private OPEN/CLOSED lists; the pieces that make it the *parallel*
//! algorithm of Section 3.3 are:
//!
//! * **Initial distribution** — the frontier obtained by repeatedly expanding
//!   the initial empty state until at least `q` states exist is dealt to the
//!   PPEs in the interleaved order of the paper (best to PPE 0, second best
//!   to PPE q−1, third to PPE 1, …), extras round-robin (cases 1–3).
//! * **Neighbour communication** — every `T` expansions a PPE runs a
//!   best-state election and balances OPEN sizes by dealing surplus states
//!   round-robin to deficit neighbours.  `T` starts at `v/2` and halves after
//!   every phase down to the configured floor.  In `Local` mode the election
//!   is the paper's: a *copy* of the best OPEN state goes to every neighbour
//!   (receivers may drop it as a duplicate).  In `ShardedGlobal` mode copies
//!   would always be dropped at the receiver (the signature is already
//!   claimed), so the election instead *transfers ownership*: the best state
//!   is popped and shipped — claim included — to the neighbour with the worst
//!   published frontier, and the receiver keeps it unconditionally (counted
//!   in [`SearchStats::election_transfers`], never in `duplicates_global`).
//! * **Goal broadcast / termination** — the best complete schedule lives in a
//!   shared incumbent; a PPE that can prove no open or in-flight state can
//!   beat the incumbent (within the ε bound, if any) raises the global
//!   termination flag.
//!
//! Since PR 4 each PPE stores its search frontier in a private
//! [`StateArena`]: OPEN holds arena ids ordered by `(f, h, FIFO)`, generated
//! children live as parent-id + [`ChildDelta`] records, and a full
//! [`SearchState`] is built only when a state is selected for expansion
//! (scratch replay).  Transfers between PPEs ship the state's *delta chain*
//! (≤ v fixed-size records, extracted without materialising) rather than a
//! full clone; the receiver re-roots the chain below its own slot-0 initial
//! state, so a PPE's live full states stay at root-plus-scratch regardless of
//! OPEN size or transfer volume.  With the refcounted arena (on by default)
//! expanded, goal-popped and shipped-away states release their records, so
//! the record count tracks the live frontier instead of the whole history.
//! [`StoreKind::EagerClone`] retains the clone-per-generation layout — and
//! full-clone transfers — as the measurable baseline; the `in_flight` gauge
//! counts fixed-size *records* (one per scheduled node of a chain, `v` per
//! full clone) so the two transfer forms are compared in the same unit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use optsched_core::engine::{
    expand_state, ArenaConfig, DuplicateFilter, ExpansionContext, StateArena, StateId, StoreKind,
};
use optsched_core::state::{ChildDelta, StateSignature};
use optsched_core::{SchedulingProblem, SearchOutcome, SearchState, SearchStats};
use optsched_obs as obs;
use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::closed::{ClaimOutcome, DuplicateDetection, ShardedClosedTable};
use crate::config::ParallelConfig;
use crate::result::ParallelSearchResult;

/// Number of FOCAL candidates inspected per selection in the ε-bounded mode.
const FOCAL_SCAN_LIMIT: usize = 64;

/// An OPEN entry ordered by `(f, h, insertion counter)` ascending.  The
/// state itself lives in the PPE's [`StateArena`]; the entry carries only its
/// id plus the ordering key, so OPEN membership costs no live full state in
/// the delta layout.
struct HeapEntry {
    key: (Cost, Cost, u64),
    id: StateId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest key is on top.
        Reverse(self.key).cmp(&Reverse(other.key))
    }
}

/// Transfer depth at or below which a delta arena ships the raw chain; any
/// deeper and it materialises the state and ships one snapshot instead.  A
/// shallow chain is a couple of fixed-size records — cheaper than a clone on
/// both ends — but a deep one costs the receiver `d` record insertions plus a
/// refcount cascade of `d` releases when the state dies, which is what kept
/// the arena store behind the eager baseline on transfer-heavy runs.  A
/// snapshot adopts (and reclaims) as one record and doubles as a nearby
/// replay base for every descendant.
const SNAPSHOT_DEPTH_THRESHOLD: usize = 4;

/// The wire form of a state travelling between PPEs.
#[derive(Clone)]
enum Payload {
    /// A fully materialised clone — the eager store's native transfer form,
    /// and the delta store's form for states deeper than
    /// [`SNAPSHOT_DEPTH_THRESHOLD`] (adopted as a single snapshot record).
    Full(SearchState),
    /// A root-anchored delta chain (depth-ordered, last delta carries the
    /// state's true `g`/`h`) — the arena store's transfer form: at most `v`
    /// fixed-size [`ChildDelta`] records, extracted from the sender's arena
    /// without materialising and re-rooted below the receiver's slot-0
    /// initial state.
    Chain(Vec<ChildDelta>),
}

impl Payload {
    /// Channel footprint in fixed-size records: one per scheduled node of a
    /// chain, one per node (`v`) for a full clone — the unit in which the
    /// `in_flight` gauge and its peak are kept.
    fn records(&self, problem: &SchedulingProblem) -> u64 {
        match self {
            Payload::Full(_) => problem.num_nodes() as u64,
            Payload::Chain(chain) => chain.len() as u64,
        }
    }

    /// `(f, g, h)` of the state this payload denotes, without materialising.
    fn costs(&self) -> (Cost, Cost, Cost) {
        match self {
            Payload::Full(s) => (s.f(), s.g(), s.h()),
            Payload::Chain(chain) => {
                let last = chain.last().expect("transfers never ship the depth-0 root");
                (last.f(), last.g, last.h)
            }
        }
    }

    /// True when the payload denotes a complete schedule.
    fn is_goal(&self, problem: &SchedulingProblem) -> bool {
        match self {
            Payload::Full(s) => s.is_goal(problem),
            Payload::Chain(chain) => chain.len() == problem.num_nodes(),
        }
    }

    /// The partial schedule's signature (chains fold their assignments onto
    /// the initial state's signature without building a full state).
    fn signature(&self, problem: &SchedulingProblem) -> StateSignature {
        match self {
            Payload::Full(s) => s.signature(),
            Payload::Chain(chain) => chain_signature(problem, chain),
        }
    }

    /// Rebuilds the full state (delta replay for chains).  Only needed on
    /// the rare goal-arrival path; everything else reads the payload as is.
    fn to_state(&self, problem: &SchedulingProblem) -> SearchState {
        match self {
            Payload::Full(s) => s.clone(),
            Payload::Chain(chain) => {
                let mut s = SearchState::initial(problem);
                for d in chain {
                    s.apply_delta_in_place(problem, d);
                }
                s
            }
        }
    }
}

/// Signature of the state a root-anchored delta chain denotes: the chain's
/// assignments folded onto the initial (empty) signature.
fn chain_signature(problem: &SchedulingProblem, chain: &[ChildDelta]) -> StateSignature {
    let mut sig = SearchState::initial(problem).signature();
    for d in chain {
        sig = sig.with_assignment(d.node, d.proc, d.start);
    }
    sig
}

/// A state travelling between PPEs.
struct Transfer {
    payload: Payload,
    /// True when the sender popped the state from its own OPEN list (load
    /// sharing, or the sharded-mode ownership-transferring election): the
    /// receiver is the state's new owner and must keep it.  False for the
    /// paper's copy-based election in `Local` mode, where the sender keeps
    /// its own copy — a receiver may freely drop it as a duplicate.
    owned: bool,
    /// True when the transfer was produced by the best-state election rather
    /// than load sharing.  Pure accounting (the ownership semantics above are
    /// untouched): accepted owned elections are counted in
    /// [`SearchStats::election_transfers`].
    election: bool,
}

/// Per-PPE view of duplicate detection: a private seen-set in `Local` mode,
/// or a handle to the shared sharded CLOSED table in `ShardedGlobal` mode.
///
/// This is the parallel scheduler's implementation of the engine's
/// [`DuplicateFilter`] hook: locally generated children flow through
/// [`expand_state`] and hit [`DuplicateFilter::admit`]; states arriving from
/// other PPEs go through [`DupFilter::admit_transfer`], which preserves the
/// claim-ownership semantics of the sharded table.
enum DupFilter<'t> {
    Local { seen: HashSet<StateSignature> },
    Global { table: &'t ShardedClosedTable, id: usize },
}

impl DuplicateFilter for DupFilter<'_> {
    /// Decides whether a state entering OPEN should be kept, updating the
    /// duplicate counters.
    fn admit(&mut self, sig: StateSignature, g: Cost, stats: &mut SearchStats) -> bool {
        match self {
            DupFilter::Local { seen } => {
                if seen.insert(sig) {
                    true
                } else {
                    stats.duplicates += 1;
                    false
                }
            }
            DupFilter::Global { table, id } => match table.try_claim(sig, g, *id) {
                ClaimOutcome::Claimed => true,
                ClaimOutcome::DuplicateSameOwner => {
                    stats.duplicates += 1;
                    false
                }
                ClaimOutcome::DuplicateOtherOwner => {
                    stats.duplicates_global += 1;
                    false
                }
            },
        }
    }
}

impl DupFilter<'_> {
    /// Admission check for a state received from another PPE.
    /// `owned_transfer` marks a state whose ownership was just transferred
    /// by load sharing or by the sharded-mode best-state election: in global
    /// mode its signature is already claimed (by its generator) and the
    /// claim travels with the state, so it is admitted without consulting
    /// the table — dropping it there would lose the only live copy.  This is
    /// also why owned transfers can never be counted in
    /// `duplicates`/`duplicates_global`.
    fn admit_transfer(
        &mut self,
        sig: impl FnOnce() -> StateSignature,
        g: Cost,
        owned_transfer: bool,
        stats: &mut SearchStats,
    ) -> bool {
        if owned_transfer && matches!(self, DupFilter::Global { .. }) {
            return true;
        }
        self.admit(sig(), g, stats)
    }

    /// Called when a state is shipped away by load sharing or the sharded
    /// election.  In local mode the sender forgets the signature so the state
    /// is accepted back should another PPE return it (two PPEs exchanging
    /// their copies of one state must not both drop it).  In global mode the
    /// claim stays in the table and simply travels with the state (the
    /// signature closure is never evaluated).
    fn release(&mut self, sig: impl FnOnce() -> StateSignature) {
        if let DupFilter::Local { seen } = self {
            seen.remove(&sig());
        }
    }
}

/// State shared by all PPE threads.
struct Shared {
    /// Best complete schedule known so far and its length.
    incumbent: Mutex<(Cost, Schedule)>,
    /// Lock-free mirror of the incumbent length.  Read on every generated
    /// state for upper-bound pruning and on every loop iteration for the
    /// termination test; taking the mutex there serialises all PPEs and
    /// makes the parallel search slower than the serial one.  The mirror is
    /// updated inside the incumbent lock, so it can only lag behind by being
    /// *larger* than the true incumbent for a moment — a stale (looser)
    /// bound never prunes a state it should not and never terminates early.
    incumbent_len: AtomicU64,
    /// Smallest f in each PPE's OPEN list (u64::MAX when empty).
    local_min_f: Vec<AtomicU64>,
    /// Size of each PPE's OPEN list (for load sharing).
    open_sizes: Vec<AtomicUsize>,
    /// Fixed-size state records currently travelling between PPEs (one per
    /// scheduled node of a shipped delta chain, `v` per full clone).  Zero
    /// exactly when no transfer is outstanding, which is all the termination
    /// test needs.
    in_flight: AtomicI64,
    /// High-water mark of `in_flight`: the most transfer *records* that were
    /// ever parked in the channels at once.  Those records are owned by no
    /// PPE's state store, so folding this gauge into the result's
    /// [`ParallelSearchResult::peak_live_states`] is what makes the memory
    /// headline airtight under eager communication.
    in_flight_peak: AtomicU64,
    /// Global stop flag.
    terminate: AtomicBool,
    /// Set when a resource limit caused the stop.
    limit_hit: AtomicBool,
    /// Set when the target cost caused the stop.
    target_hit: AtomicBool,
    /// Expansions across all PPEs (for the global expansion limit).
    total_expanded: AtomicU64,
    /// Generations across all PPEs (for the global generation limit).
    total_generated: AtomicU64,
    /// The sharded global CLOSED table (`None` in `Local` mode).
    closed: Option<ShardedClosedTable>,
}

impl Shared {
    fn new(q: usize, incumbent_len: Cost, incumbent: Schedule, closed: Option<ShardedClosedTable>) -> Shared {
        Shared {
            incumbent: Mutex::new((incumbent_len, incumbent)),
            incumbent_len: AtomicU64::new(incumbent_len),
            local_min_f: (0..q).map(|_| AtomicU64::new(u64::MAX)).collect(),
            open_sizes: (0..q).map(|_| AtomicUsize::new(0)).collect(),
            in_flight: AtomicI64::new(0),
            in_flight_peak: AtomicU64::new(0),
            terminate: AtomicBool::new(false),
            limit_hit: AtomicBool::new(false),
            target_hit: AtomicBool::new(false),
            total_expanded: AtomicU64::new(0),
            total_generated: AtomicU64::new(0),
            closed,
        }
    }

    /// Current incumbent length, without taking the lock.
    fn incumbent_len(&self) -> Cost {
        self.incumbent_len.load(Ordering::SeqCst)
    }

    /// Registers `records` more state records entering the channels,
    /// updating the in-flight high-water mark.  Every send site must use
    /// this (and undo with a plain `fetch_sub` of the same amount on a
    /// failed send), and every receive must subtract exactly the payload's
    /// record count, so the gauge and its peak never diverge.
    fn in_flight_add(&self, records: u64) {
        let now = self.in_flight.fetch_add(records as i64, Ordering::SeqCst) + records as i64;
        if now > 0 {
            self.in_flight_peak.fetch_max(now as u64, Ordering::SeqCst);
        }
    }

    /// Installs `schedule` (built lazily) as the incumbent if `len` improves
    /// on the best complete schedule known so far.
    fn offer_incumbent(&self, len: Cost, schedule: impl FnOnce() -> Schedule) {
        if len >= self.incumbent_len() {
            return;
        }
        let mut inc = self.incumbent.lock();
        if len < inc.0 {
            *inc = (len, schedule());
            self.incumbent_len.store(len, Ordering::SeqCst);
        }
    }
}

/// Parallel A* (and Aε*) scheduler over a virtual PPE network.
#[derive(Debug, Clone)]
pub struct ParallelAStarScheduler<'a> {
    problem: &'a SchedulingProblem,
    config: ParallelConfig,
}

impl<'a> ParallelAStarScheduler<'a> {
    /// Creates a scheduler for `problem` with the given parallel configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_ppes == 0` or if a configured ε is negative.
    pub fn new(problem: &'a SchedulingProblem, config: ParallelConfig) -> Self {
        assert!(config.num_ppes >= 1, "at least one PPE is required");
        if let Some(eps) = config.epsilon {
            assert!(eps.is_finite() && eps >= 0.0, "epsilon must be non-negative");
        }
        ParallelAStarScheduler { problem, config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Builds the initial work distribution (Section 3.3, cases 1–3):
    /// repeatedly expands the lowest-cost frontier state, starting from the
    /// empty schedule, until at least `q` states exist (or nothing is left to
    /// expand), then deals the frontier out in the interleaved order.
    fn initial_distribution(&self, stats: &mut SearchStats) -> Vec<Vec<SearchState>> {
        let q = self.config.num_ppes;
        let mut frontier: Vec<SearchState> = Vec::new();

        let initial = SearchState::initial(self.problem);
        let mut to_expand = vec![initial];
        while frontier.len() + to_expand.len() < q.max(1) && !to_expand.is_empty() {
            // Expand the most promising expandable state.
            to_expand.sort_by_key(|s| Reverse(s.f()));
            let state = to_expand.pop().expect("loop guard ensures non-empty");
            if state.is_goal(self.problem) {
                frontier.push(state);
                continue;
            }
            stats.expanded += 1;
            for (node, proc) in
                state.expansion_candidates(self.problem, &self.config.pruning, stats)
            {
                let child = state.schedule_node(self.problem, node, proc, self.config.heuristic);
                stats.heuristic_evaluations += 1;
                stats.generated += 1;
                to_expand.push(child);
            }
        }
        frontier.extend(to_expand);
        // Sort by increasing cost and deal out: best -> PPE 0, next -> PPE q-1,
        // then PPE 1, PPE q-2, ... and the extras round-robin.
        frontier.sort_by_key(|s| (s.f(), s.h()));
        let mut buckets: Vec<Vec<SearchState>> = vec![Vec::new(); q];
        for (j, state) in frontier.into_iter().enumerate() {
            let target = if j < q {
                if j % 2 == 0 {
                    j / 2
                } else {
                    q - 1 - j / 2
                }
            } else {
                j % q
            };
            buckets[target].push(state);
        }
        buckets
    }

    /// Runs the parallel search and returns the best schedule with per-PPE
    /// statistics.
    pub fn run(&self) -> ParallelSearchResult {
        let start = Instant::now();
        let cfg = self.config;
        let q = cfg.num_ppes;

        let mut setup_stats = SearchStats::default();
        let buckets = self.initial_distribution(&mut setup_stats);

        let ub_schedule = self.problem.upper_bound_schedule().clone();
        let closed = match cfg.duplicate_detection {
            DuplicateDetection::Local => None,
            DuplicateDetection::ShardedGlobal => Some(ShardedClosedTable::new(cfg.num_shards)),
        };
        let shared = Shared::new(q, ub_schedule.makespan(), ub_schedule, closed);
        // Seed every PPE's published frontier cost from its initial bucket so
        // that no thread can observe an all-empty frontier (and terminate)
        // before the other threads have published their real minima.
        for (i, bucket) in buckets.iter().enumerate() {
            let min_f = bucket.iter().map(|s| s.f()).min().unwrap_or(u64::MAX);
            shared.local_min_f[i].store(min_f, Ordering::SeqCst);
        }
        let neighbors = cfg.ppe_neighbors();
        let deadline = cfg.limits.max_millis.map(|ms| start + Duration::from_millis(ms));

        let channels: Vec<(Sender<Transfer>, Receiver<Transfer>)> =
            (0..q).map(|_| unbounded()).collect();
        let txs: Vec<Sender<Transfer>> = channels.iter().map(|(t, _)| t.clone()).collect();
        let mut rxs: Vec<Option<Receiver<Transfer>>> =
            channels.into_iter().map(|(_, r)| Some(r)).collect();

        let mut per_ppe_stats: Vec<SearchStats> = Vec::with_capacity(q);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(q);
            for (id, bucket) in buckets.into_iter().enumerate() {
                let rx = rxs[id].take().expect("one receiver per PPE");
                let txs = txs.clone();
                let shared = &shared;
                let neighbors = neighbors[id].clone();
                let problem = self.problem;
                handles.push(scope.spawn(move || {
                    ppe_worker(id, problem, &cfg, &neighbors, shared, rx, &txs, bucket, deadline)
                }));
            }
            for h in handles {
                per_ppe_stats.push(h.join().expect("PPE thread panicked"));
            }
        });

        // Attribute the setup expansion work to PPE 0 so no counted state is lost.
        if let Some(first) = per_ppe_stats.first_mut() {
            first.merge(&setup_stats);
        }

        let closed_stats = shared.closed.as_ref().map(|t| t.stats());
        let (len, schedule) = shared.incumbent.into_inner();
        debug_assert_eq!(len, schedule.makespan());
        let outcome = if shared.limit_hit.load(Ordering::SeqCst) {
            SearchOutcome::LimitReached
        } else if shared.target_hit.load(Ordering::SeqCst) {
            SearchOutcome::TargetReached
        } else {
            SearchOutcome::Optimal
        };

        ParallelSearchResult {
            schedule,
            outcome,
            per_ppe_stats,
            closed_stats,
            elapsed: start.elapsed(),
            num_ppes: q,
            peak_in_flight: shared.in_flight_peak.load(Ordering::SeqCst),
        }
    }
}

/// Selects the next state to expand: plain best-first for the exact search,
/// or a FOCAL-style "deepest state within (1+ε)·fmin" for the ε-bounded one.
fn select_state(open: &mut BinaryHeap<HeapEntry>, epsilon: Option<f64>) -> HeapEntry {
    let Some(eps) = epsilon else {
        return open.pop().expect("select_state called on a non-empty OPEN");
    };
    let fmin = open.peek().expect("non-empty OPEN").key.0;
    let threshold = (fmin as f64 * (1.0 + eps)).floor() as Cost;
    let mut focal: Vec<HeapEntry> = Vec::new();
    while focal.len() < FOCAL_SCAN_LIMIT {
        match open.peek() {
            Some(e) if e.key.0 <= threshold => focal.push(open.pop().expect("peeked")),
            _ => break,
        }
    }
    // Pick the FOCAL member with the smallest h (closest to a goal).
    let best_idx = focal
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| (e.key.1, e.key.0, e.key.2))
        .map(|(i, _)| i)
        .expect("focal contains at least the fmin state");
    let chosen = focal.swap_remove(best_idx);
    for e in focal {
        open.push(e);
    }
    chosen
}

/// The per-PPE search loop.
#[allow(clippy::too_many_arguments)]
fn ppe_worker(
    id: usize,
    problem: &SchedulingProblem,
    cfg: &ParallelConfig,
    neighbors: &[usize],
    shared: &Shared,
    rx: Receiver<Transfer>,
    txs: &[Sender<Transfer>],
    initial: Vec<SearchState>,
    deadline: Option<Instant>,
) -> SearchStats {
    // Observability: each PPE gets its own timeline track — a span covering
    // the worker's lifetime plus instants on elections, transfers and the
    // end-of-run duplicate tally.  Disabled cost: one relaxed load per site.
    let obs_track = if obs::enabled() { obs::next_track() } else { 0 };
    let _obs_span = obs::span("ppe", obs_track).with_arg("ppe", id as u64);
    let mut stats = SearchStats::default();
    let mut open: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut arena = StateArena::new(
        problem,
        ArenaConfig::from(cfg.store).with_gc(cfg.arena_gc).with_path_cache(cfg.path_cache),
    );
    // Slot 0 is the problem's initial (empty) state: a delta arena re-roots
    // every state received from another PPE as a delta chain below it, so
    // transfers never add live full states on the receiving side.
    arena.insert_root(SearchState::initial(problem));
    let mut dup = match &shared.closed {
        Some(table) => DupFilter::Global { table, id },
        None => DupFilter::Local { seen: HashSet::new() },
    };
    let mut counter: u64 = 0;

    let bound_factor = cfg.epsilon.map_or(1.0, |e| 1.0 + e);
    let v = problem.num_nodes() as u64;
    let goal_depth = problem.num_nodes() as u16;
    let mut comm_period = (v / 2).max(cfg.min_comm_period);
    let mut since_comm: u64 = 0;
    let mut idle_spins: u32 = 0;

    /// How a state arrives from outside this PPE's own expansions; governs
    /// the ownership semantics of duplicate detection.  (Locally generated
    /// children do not pass through here — they flow through the engine's
    /// [`expand_state`] pipeline below.)
    enum Arrival {
        /// Dealt out by the initial distribution.
        Initial,
        /// A best-state election copy from a neighbour (`Local` mode: the
        /// sender keeps its own copy, so dropping this one as a duplicate is
        /// always safe).
        ElectionCopy,
        /// A load-sharing transfer: the sender gave up its copy, this PPE is
        /// now the sole owner and must keep the state.
        OwnedTransfer,
        /// An ownership-transferring election (`ShardedGlobal` mode): like
        /// [`Arrival::OwnedTransfer`], but counted separately so the
        /// election's effectiveness is observable.
        ElectionTransfer,
    }

    let push_transfer = |open: &mut BinaryHeap<HeapEntry>,
                             arena: &mut StateArena<'_>,
                             dup: &mut DupFilter<'_>,
                             counter: &mut u64,
                             stats: &mut SearchStats,
                             payload: Payload,
                             arrival: Arrival| {
        let (f, g, h) = payload.costs();
        if cfg.pruning.upper_bound_pruning && f > shared.incumbent_len() {
            stats.pruned_upper_bound += 1;
            return;
        }
        let owned_transfer =
            matches!(arrival, Arrival::OwnedTransfer | Arrival::ElectionTransfer);
        if !dup.admit_transfer(|| payload.signature(problem), g, owned_transfer, stats) {
            return;
        }
        if matches!(arrival, Arrival::ElectionTransfer) {
            stats.election_transfers += 1;
        }
        if payload.is_goal(problem) {
            shared.offer_incumbent(g, || payload.to_state(problem).to_schedule(problem));
        }
        *counter += 1;
        let key = (f, h, *counter);
        let id = match payload {
            Payload::Full(state) => arena.adopt_snapshot(state),
            Payload::Chain(chain) => arena.adopt_chain(&chain),
        };
        open.push(HeapEntry { key, id });
    };

    for s in initial {
        push_transfer(
            &mut open,
            &mut arena,
            &mut dup,
            &mut counter,
            &mut stats,
            Payload::Full(s),
            Arrival::Initial,
        );
    }

    let mut kept: Vec<(ChildDelta, Cost)> = Vec::new();
    loop {
        if shared.terminate.load(Ordering::SeqCst) {
            break;
        }

        // Import states sent by neighbours.  The published minimum and the
        // in-flight counter are updated in an order that never lets another
        // PPE observe "nothing in flight" while this state is still invisible.
        while let Ok(t) = rx.try_recv() {
            let records = t.payload.records(problem) as i64;
            let arrival = match (t.owned, t.election) {
                (true, true) => Arrival::ElectionTransfer,
                (true, false) => Arrival::OwnedTransfer,
                (false, _) => Arrival::ElectionCopy,
            };
            let arrival_name = match arrival {
                Arrival::ElectionCopy | Arrival::ElectionTransfer => "election_in",
                _ => "transfer_in",
            };
            obs::instant(arrival_name, obs_track, "records", records as u64);
            push_transfer(&mut open, &mut arena, &mut dup, &mut counter, &mut stats, t.payload, arrival);
            let min_f = open.peek().map_or(u64::MAX, |e| e.key.0);
            shared.local_min_f[id].store(min_f, Ordering::SeqCst);
            shared.in_flight.fetch_sub(records, Ordering::SeqCst);
        }

        // Publish this PPE's frontier cost and OPEN size.
        let min_f = open.peek().map_or(u64::MAX, |e| e.key.0);
        shared.local_min_f[id].store(min_f, Ordering::SeqCst);
        shared.open_sizes[id].store(open.len(), Ordering::Relaxed);
        stats.max_open_size = stats.max_open_size.max(open.len());

        // Global termination test: nothing in flight and no frontier state
        // anywhere can improve on the incumbent (within the ε bound).
        let incumbent_len = shared.incumbent_len();
        if shared.in_flight.load(Ordering::SeqCst) == 0 {
            let global_min = shared
                .local_min_f
                .iter()
                .map(|a| a.load(Ordering::SeqCst))
                .min()
                .unwrap_or(u64::MAX);
            let done = global_min == u64::MAX
                || (incumbent_len as f64) <= bound_factor * (global_min as f64);
            if done {
                shared.terminate.store(true, Ordering::SeqCst);
                break;
            }
        }

        // Resource limits (evaluated on the global counters).
        if let Some(max_exp) = cfg.limits.max_expansions {
            if shared.total_expanded.load(Ordering::Relaxed) >= max_exp {
                shared.limit_hit.store(true, Ordering::SeqCst);
                shared.terminate.store(true, Ordering::SeqCst);
                break;
            }
        }
        if let Some(max_gen) = cfg.limits.max_generated {
            if shared.total_generated.load(Ordering::Relaxed) >= max_gen {
                shared.limit_hit.store(true, Ordering::SeqCst);
                shared.terminate.store(true, Ordering::SeqCst);
                break;
            }
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                shared.limit_hit.store(true, Ordering::SeqCst);
                shared.terminate.store(true, Ordering::SeqCst);
                break;
            }
        }
        if let Some(target) = cfg.limits.target_cost {
            if incumbent_len <= target {
                shared.target_hit.store(true, Ordering::SeqCst);
                shared.terminate.store(true, Ordering::SeqCst);
                break;
            }
        }

        if open.is_empty() {
            // Idle: wait for work from neighbours or for global termination.
            idle_spins += 1;
            if idle_spins > 64 {
                std::thread::sleep(Duration::from_micros(50));
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        idle_spins = 0;

        let entry = select_state(&mut open, cfg.epsilon);
        kept.clear();
        let mut popped_goal = false;
        {
            // Materialise the selected state (scratch replay in the delta
            // layout); the borrow lasts until the children collected in
            // `kept` are stored, mirroring the serial engine's loop.
            let state = arena.materialise(entry.id);
            if state.is_goal(problem) {
                // Goal broadcast: publish and keep searching until the global
                // termination condition proves it cannot be beaten.
                shared.offer_incumbent(state.g(), || state.to_schedule(problem));
                popped_goal = true;
            } else {
                stats.expanded += 1;
                shared.total_expanded.fetch_add(1, Ordering::Relaxed);
                since_comm += 1;

                // Locally generated children flow through the engine's shared
                // admission pipeline: each candidate is evaluated
                // allocation-free, pruned against the shared incumbent, and
                // claimed through the duplicate-detection hook (private set
                // or sharded global table); only survivors are stored — as
                // delta records in the arena layout, materialised clones in
                // the eager baseline.
                expand_state(
                    ExpansionContext { problem, pruning: &cfg.pruning, heuristic: cfg.heuristic },
                    state,
                    &mut dup,
                    &mut stats,
                    |_parent, delta, _stats| {
                        let f = delta.f();
                        (!cfg.pruning.upper_bound_pruning || f <= shared.incumbent_len())
                            .then_some(f)
                    },
                    |parent, delta, f, _stats| {
                        if parent.depth() + 1 == goal_depth {
                            shared.offer_incumbent(delta.g, || {
                                parent.apply_delta(problem, &delta).to_schedule(problem)
                            });
                        }
                        kept.push((delta, f));
                    },
                );
            }
        }
        for &(delta, f) in &kept {
            counter += 1;
            stats.generated += 1;
            shared.total_generated.fetch_add(1, Ordering::Relaxed);
            let child = arena.insert_child(entry.id, &delta);
            open.push(HeapEntry { key: (f, delta.h, counter), id: child });
        }
        // The popped state's own handle is done: children hold their own
        // references up the chain, so with reclamation on, dead subtrees
        // (no surviving children) release their records here.
        arena.release(entry.id);
        if popped_goal {
            // Goal pops never trigger the communication phase (unchanged
            // from the pre-reclamation loop).
            continue;
        }

        // Communication phase: neighbour exchange + round-robin load sharing.
        if since_comm >= comm_period && !neighbors.is_empty() {
            since_comm = 0;
            comm_period = (comm_period / 2).max(cfg.min_comm_period);

            // Best-state election.
            match cfg.duplicate_detection {
                DuplicateDetection::Local => {
                    // The paper's election: offer a *copy* of this PPE's best
                    // state to every neighbour (each receiver keeps or drops
                    // it through its own duplicate detection).  A delta arena
                    // ships a shallow state's chain without materialising it
                    // and a deep one as a single snapshot.
                    if let Some(best) = open.peek() {
                        let payload = extract_payload(&mut arena, best.id);
                        let records = payload.records(problem);
                        for &nb in neighbors {
                            shared.in_flight_add(records);
                            let copy = Transfer {
                                payload: payload.clone(),
                                owned: false,
                                election: true,
                            };
                            if txs[nb].send(copy).is_err() {
                                shared.in_flight.fetch_sub(records as i64, Ordering::SeqCst);
                            }
                        }
                        obs::instant("election_send", obs_track, "copies", neighbors.len() as u64);
                    }
                }
                DuplicateDetection::ShardedGlobal => {
                    // Ownership-transferring election: a copy would reach the
                    // receiver with an already-claimed signature and be
                    // dropped on arrival, so instead *give away* the best
                    // state (claim travels with it, see `DupFilter::release`)
                    // to the neighbour whose published frontier is worst —
                    // and only to one that actually profits, i.e. whose
                    // frontier minimum is strictly worse than this state.
                    // The receiver force-keeps it; nothing is wasted.  When
                    // the receiver's frontier is *far* worse (empty, or more
                    // than 25% above this PPE's best f), one state will not
                    // keep it busy: ship a k-best batch, every member still
                    // strictly better than the receiver's published minimum.
                    if let Some(best) = open.peek() {
                        let best_f = best.key.0;
                        let target = neighbors
                            .iter()
                            .map(|&nb| (shared.local_min_f[nb].load(Ordering::SeqCst), Reverse(nb)))
                            .filter(|&(min_f, _)| min_f > best_f)
                            .max();
                        if let Some((nb_min_f, Reverse(nb))) = target {
                            let far_worse =
                                nb_min_f == u64::MAX || nb_min_f > best_f + (best_f >> 2);
                            let batch = if far_worse { cfg.election_batch.max(1) } else { 1 };
                            let mut shipped = 0u64;
                            for _ in 0..batch {
                                if !open.peek().is_some_and(|e| e.key.0 < nb_min_f) {
                                    break;
                                }
                                let e = open.pop().expect("peeked a qualifying state above");
                                let payload = extract_owned(problem, &mut arena, &mut dup, e.id);
                                let records = payload.records(problem);
                                shared.in_flight_add(records);
                                let t = Transfer { payload, owned: true, election: true };
                                if txs[nb].send(t).is_err() {
                                    shared.in_flight.fetch_sub(records as i64, Ordering::SeqCst);
                                }
                                shipped += 1;
                            }
                            obs::instant("election_send", obs_track, "states", shipped);
                        }
                    }
                }
            }

            // Round-robin load sharing of surplus states to deficit neighbours.
            let neighbor_sizes: Vec<(usize, usize)> = neighbors
                .iter()
                .map(|&nb| (nb, shared.open_sizes[nb].load(Ordering::Relaxed)))
                .collect();
            let total: usize =
                open.len() + neighbor_sizes.iter().map(|&(_, s)| s).sum::<usize>();
            let avg = total / (neighbor_sizes.len() + 1);
            if open.len() > avg + 1 {
                let deficits: Vec<usize> = neighbor_sizes
                    .iter()
                    .filter(|&&(_, s)| s < avg)
                    .map(|&(nb, _)| nb)
                    .collect();
                if !deficits.is_empty() {
                    let surplus = open.len() - avg;
                    // Keep the best state locally; deal the following ones out.
                    let keep = open.pop();
                    let mut sent = 0usize;
                    let mut outgoing: Vec<StateId> = Vec::with_capacity(surplus);
                    while sent < surplus {
                        match open.pop() {
                            Some(e) => {
                                outgoing.push(e.id);
                                sent += 1;
                            }
                            None => break,
                        }
                    }
                    if let Some(k) = keep {
                        open.push(k);
                    }
                    for (i, sid) in outgoing.into_iter().enumerate() {
                        // Chain-on-send: the state leaves a delta arena as
                        // its ≤ v-record delta chain (full clone from the
                        // eager store).  Shipping transfers ownership (see
                        // `DupFilter::release`): the receiver force-inserts
                        // it, so the sole live copy of a claimed signature is
                        // never dropped by both sides of an exchange.
                        let payload = extract_owned(problem, &mut arena, &mut dup, sid);
                        let records = payload.records(problem);
                        let target = deficits[i % deficits.len()];
                        shared.in_flight_add(records);
                        let t = Transfer { payload, owned: true, election: false };
                        if txs[target].send(t).is_err() {
                            shared.in_flight.fetch_sub(records as i64, Ordering::SeqCst);
                        }
                    }
                    obs::instant("load_share", obs_track, "states", sent as u64);
                }
            }
        }
    }

    // The arena is the PPE's only holder of full states: every state in the
    // eager layout, root + scratch (plus nothing per OPEN entry) in the
    // delta layout.  The record counters report the O(live frontier)
    // behaviour of the refcounted store and the replay work behind it.
    stats.peak_live_states = arena.peak_live_full() as u64;
    stats.peak_live_records = arena.peak_live_records() as u64;
    stats.reclaimed_records = arena.reclaimed_records();
    stats.materialisations = arena.materialisations();
    stats.path_cache_hits = arena.path_cache_hits();
    stats.path_cache_ancestor_hits = arena.path_cache_ancestor_hits();
    stats.replayed_deltas = arena.replayed_deltas();
    stats.replayed_deltas_saved = arena.replayed_deltas_saved();
    obs::instant(
        "ppe_done",
        obs_track,
        "duplicates",
        stats.duplicates + stats.duplicates_global,
    );
    stats
}

/// Builds the wire form of state `id` without disturbing the sender's store:
/// a shallow delta-arena state leaves as its raw chain, a deep one (past
/// [`SNAPSHOT_DEPTH_THRESHOLD`]) and every eager state as a materialised
/// snapshot clone.
fn extract_payload(arena: &mut StateArena<'_>, id: StateId) -> Payload {
    match arena.kind() {
        StoreKind::DeltaArena if arena.record_depth(id) <= SNAPSHOT_DEPTH_THRESHOLD => {
            Payload::Chain(arena.extract_chain(id))
        }
        StoreKind::DeltaArena | StoreKind::EagerClone => {
            Payload::Full(arena.materialise_owned(id))
        }
    }
}

/// Pops state `id` out of the sender's store for an ownership transfer (wire
/// form per [`extract_payload`]).  The sender's duplicate bookkeeping forgets
/// the signature (`Local` mode only — in `ShardedGlobal` mode the claim
/// travels with the state) and the state's arena records are released: from
/// here on the payload in the channel is the state's only live copy.
fn extract_owned(
    problem: &SchedulingProblem,
    arena: &mut StateArena<'_>,
    dup: &mut DupFilter<'_>,
    id: StateId,
) -> Payload {
    let payload = extract_payload(arena, id);
    dup.release(|| payload.signature(problem));
    arena.release(id);
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_core::{AStarScheduler, PruningConfig, SearchLimits, StoreKind};
    use optsched_procnet::{ProcNetwork, Topology};
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn parallel_finds_14_on_the_example_for_various_ppe_counts() {
        let prob = example_problem();
        for q in [1, 2, 3, 4, 8] {
            let r = ParallelAStarScheduler::new(&prob, ParallelConfig::exact(q)).run();
            assert!(r.is_optimal(), "q={q}");
            assert_eq!(r.schedule_length(), 14, "q={q}");
            r.schedule.validate(prob.graph(), prob.network()).unwrap();
            assert_eq!(r.num_ppes, q);
            assert_eq!(r.per_ppe_stats.len(), q);
        }
    }

    #[test]
    fn parallel_matches_serial_on_random_graphs() {
        // Seed picked so the three CCR instances stay small enough for the
        // exact searches on a single-core host (vendored RNG stream).
        let mut rng = StdRng::seed_from_u64(11);
        for ccr in [0.1, 1.0, 10.0] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 10, ccr, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let serial = AStarScheduler::new(&prob).run();
            let parallel =
                ParallelAStarScheduler::new(&prob, ParallelConfig::exact(4)).run();
            assert!(serial.is_optimal() && parallel.is_optimal());
            assert_eq!(serial.schedule_length, parallel.schedule_length(), "ccr={ccr}");
            parallel.schedule.validate(prob.graph(), prob.network()).unwrap();
        }
    }

    #[test]
    fn mesh_topology_like_the_paragon_works() {
        let prob = example_problem();
        let r = ParallelAStarScheduler::new(&prob, ParallelConfig::paragon_like(4)).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length(), 14);
    }

    #[test]
    fn ring_topology_works() {
        let prob = example_problem();
        let cfg = ParallelConfig {
            num_ppes: 4,
            ppe_topology: Some(Topology::Ring),
            ..Default::default()
        };
        let r = ParallelAStarScheduler::new(&prob, cfg).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length(), 14);
    }

    #[test]
    fn parallel_aeps_respects_the_bound() {
        // Small, well-conditioned instance: the parallel search repeats most
        // of the serial work per PPE, so a 12-node graph here dominated the
        // whole suite's runtime.
        let mut rng = StdRng::seed_from_u64(42);
        let g = generate_random_dag(
            &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
        let optimal = AStarScheduler::new(&prob).run();
        for eps in [0.2, 0.5] {
            let r = ParallelAStarScheduler::new(&prob, ParallelConfig::approximate(4, eps)).run();
            assert!(r.is_optimal());
            let bound = (optimal.schedule_length as f64 * (1.0 + eps)).floor() as Cost;
            assert!(
                r.schedule_length() <= bound,
                "eps={eps}: {} > {}",
                r.schedule_length(),
                bound
            );
            r.schedule.validate(prob.graph(), prob.network()).unwrap();
        }
    }

    #[test]
    fn without_pruning_the_parallel_search_is_still_exact() {
        let prob = example_problem();
        let cfg = ParallelConfig {
            num_ppes: 3,
            pruning: PruningConfig::none(),
            ..Default::default()
        };
        let r = ParallelAStarScheduler::new(&prob, cfg).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length(), 14);
    }

    #[test]
    fn expansion_limit_reports_limit_reached() {
        let prob = example_problem();
        let cfg = ParallelConfig {
            num_ppes: 2,
            limits: SearchLimits::expansions(1),
            ..Default::default()
        };
        let r = ParallelAStarScheduler::new(&prob, cfg).run();
        // The incumbent from the list heuristic is always available.
        r.schedule.validate(prob.graph(), prob.network()).unwrap();
        assert!(matches!(r.outcome, SearchOutcome::LimitReached | SearchOutcome::Optimal));
    }

    #[test]
    fn target_cost_stops_early() {
        let prob = example_problem();
        let cfg = ParallelConfig {
            num_ppes: 2,
            limits: SearchLimits { target_cost: Some(prob.upper_bound()), ..Default::default() },
            ..Default::default()
        };
        let r = ParallelAStarScheduler::new(&prob, cfg).run();
        assert!(matches!(r.outcome, SearchOutcome::TargetReached | SearchOutcome::Optimal));
        assert!(r.schedule_length() <= prob.upper_bound());
    }

    #[test]
    fn total_stats_cover_the_whole_search() {
        let prob = example_problem();
        let r = ParallelAStarScheduler::new(&prob, ParallelConfig::exact(2)).run();
        let total = r.total_stats();
        assert!(total.generated > 0);
        assert!(total.expanded > 0);
        assert!(r.load_imbalance() >= 1.0);
        assert!(r.elapsed.as_secs() < 30);
    }

    #[test]
    #[should_panic(expected = "at least one PPE")]
    fn zero_ppes_rejected() {
        let prob = example_problem();
        let _ = ParallelAStarScheduler::new(&prob, ParallelConfig { num_ppes: 0, ..Default::default() });
    }

    #[test]
    fn local_mode_matches_sharded_mode_on_the_example() {
        let prob = example_problem();
        for q in [1, 2, 4] {
            for mode in [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal] {
                let cfg = ParallelConfig::exact(q).with_duplicate_detection(mode);
                let r = ParallelAStarScheduler::new(&prob, cfg).run();
                assert!(r.is_optimal(), "q={q} mode={mode}");
                assert_eq!(r.schedule_length(), 14, "q={q} mode={mode}");
                // The table statistics are reported exactly when the table exists.
                assert_eq!(r.closed_stats.is_some(), mode == DuplicateDetection::ShardedGlobal);
                if mode == DuplicateDetection::Local {
                    assert_eq!(r.redundant_expansions_avoided(), 0);
                }
            }
        }
    }

    /// Cross-checks the sharded table's counters against the per-PPE stats:
    /// every claim that inserted an entry is a miss, every dropped duplicate
    /// (local or cross-PPE) is a hit, and nothing else touches the table.
    #[test]
    fn sharded_table_counters_reconcile_with_ppe_stats() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generate_random_dag(
            &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
        let cfg = ParallelConfig { num_ppes: 4, min_comm_period: 1, ..Default::default() };
        let r = ParallelAStarScheduler::new(&prob, cfg).run();
        assert!(r.is_optimal());

        let table = r.closed_stats.as_ref().expect("sharded mode reports table stats");
        assert_eq!(table.num_shards(), 16);
        assert_eq!(
            table.total_entries() as u64,
            table.total_misses(),
            "every successful claim inserts exactly one entry"
        );
        // Exact signatures imply equal g, so the defensive better-g re-open
        // path must never fire in a real search.
        assert_eq!(table.total_reopens(), 0);
        let total = r.total_stats();
        assert_eq!(
            table.total_hits(),
            total.duplicates + total.duplicates_global,
            "every table hit is counted as a duplicate by exactly one PPE"
        );
        assert!(table.total_hits() > 0, "a contended run must drop duplicates");
        assert!(r.redundant_expansions_avoided() > 0);
        // The striping actually spreads load: more than one shard is touched.
        assert!(table.per_shard.iter().filter(|s| s.entries > 0).count() > 1);
    }

    /// Stress the shared table through the real PPE loop: repeated contended
    /// runs on the single-core host must stay optimal with consistent
    /// counters in every interleaving.
    #[test]
    fn sharded_mode_is_stable_across_repeated_contended_runs() {
        let prob = example_problem();
        let cfg = ParallelConfig {
            num_ppes: 4,
            min_comm_period: 1,
            num_shards: 2,
            ..Default::default()
        };
        for run in 0..5 {
            let r = ParallelAStarScheduler::new(&prob, cfg).run();
            assert!(r.is_optimal(), "run {run}");
            assert_eq!(r.schedule_length(), 14, "run {run}");
            let table = r.closed_stats.as_ref().expect("table stats");
            assert_eq!(table.total_entries() as u64, table.total_misses(), "run {run}");
            let total = r.total_stats();
            assert_eq!(
                table.total_hits(),
                total.duplicates + total.duplicates_global,
                "run {run}"
            );
        }
    }

    /// The PR 4 tentpole, observed from the outside: both store layouts stay
    /// exact and agree on the optimum, while the delta arena holds at most
    /// the initial root plus one scratch state live per PPE — OPEN size and
    /// transfer volume no longer cost full states.
    #[test]
    fn arena_store_matches_eager_store_with_tiny_live_footprint() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generate_random_dag(
            &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        for problem in [
            example_problem(),
            SchedulingProblem::new(g, ProcNetwork::fully_connected(3)),
        ] {
            let serial = AStarScheduler::new(&problem).run();
            for mode in [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal] {
                let cfg = ParallelConfig {
                    num_ppes: 4,
                    min_comm_period: 1, // maximise transfers: the hard case
                    ..Default::default()
                }
                .with_duplicate_detection(mode);
                let arena = ParallelAStarScheduler::new(&problem, cfg).run();
                let eager = ParallelAStarScheduler::new(
                    &problem,
                    cfg.with_store(StoreKind::EagerClone),
                )
                .run();
                assert!(arena.is_optimal() && eager.is_optimal(), "mode={mode}");
                assert_eq!(arena.schedule_length(), serial.schedule_length, "mode={mode}");
                assert_eq!(eager.schedule_length(), serial.schedule_length, "mode={mode}");
                // The delta arena's stores hold roots, scratch states and
                // adopted snapshot transfers — a subset of the live records
                // plus one scratch per PPE; the airtight headline
                // additionally folds in the in-flight transfer peak (these
                // eager-communication runs park real clones in the
                // channels).  Only the delta store rebuilds by replay.
                assert!(
                    arena.total_stats().peak_live_states
                        <= arena.total_stats().peak_live_records + cfg.num_ppes as u64,
                    "mode={mode}: delta arena held {} live full states over {} records",
                    arena.total_stats().peak_live_states,
                    arena.total_stats().peak_live_records
                );
                assert!(
                    arena.total_stats().replayed_deltas > 0,
                    "mode={mode}: the delta store expands by replay"
                );
                assert_eq!(
                    eager.total_stats().replayed_deltas,
                    0,
                    "mode={mode}: the eager store never replays"
                );
                assert_eq!(
                    arena.peak_live_states(),
                    arena.total_stats().peak_live_states + arena.peak_in_flight,
                    "mode={mode}: headline must fold the in-flight peak in"
                );
                // The eager baseline's stores hold every stored state live.
                assert!(
                    eager.peak_live_states() > arena.total_stats().peak_live_states,
                    "mode={mode}: eager {} vs arena {}",
                    eager.peak_live_states(),
                    arena.total_stats().peak_live_states
                );
            }
        }
    }

    /// The in-flight gauge's high-water mark is recorded and folded into the
    /// memory headline: an eagerly communicating multi-PPE run parks at
    /// least one transfer clone in the channels at some instant, while a
    /// q = 1 run (no neighbours, no transfers) records exactly zero.
    #[test]
    fn in_flight_peak_is_recorded_and_zero_without_neighbours() {
        let prob = example_problem();
        let eager_comm = ParallelConfig {
            num_ppes: 4,
            min_comm_period: 1,
            ..Default::default()
        };
        let mut peak_seen = 0;
        for _ in 0..3 {
            let r = ParallelAStarScheduler::new(&prob, eager_comm).run();
            assert!(r.is_optimal());
            assert_eq!(
                r.peak_live_states(),
                r.total_stats().peak_live_states + r.peak_in_flight
            );
            peak_seen = peak_seen.max(r.peak_in_flight);
        }
        assert!(peak_seen > 0, "eager communication must put states in flight");

        let solo = ParallelAStarScheduler::new(&prob, ParallelConfig::exact(1)).run();
        assert_eq!(solo.peak_in_flight, 0, "q=1 has no channels to park states in");
        assert_eq!(solo.peak_live_states(), solo.total_stats().peak_live_states);
    }

    /// In `Local` mode the election still sends copies (the paper's design):
    /// no ownership-transferring elections can ever be recorded.
    #[test]
    fn local_mode_election_sends_copies_not_ownership() {
        let prob = example_problem();
        let cfg = ParallelConfig {
            num_ppes: 4,
            min_comm_period: 1,
            ..Default::default()
        }
        .with_duplicate_detection(DuplicateDetection::Local);
        for _ in 0..3 {
            let r = ParallelAStarScheduler::new(&prob, cfg).run();
            assert!(r.is_optimal());
            assert_eq!(r.election_transfers(), 0, "local mode elections are copies");
        }
    }

    #[test]
    fn initial_distribution_covers_all_ppes_for_large_q() {
        let prob = example_problem();
        let sched = ParallelAStarScheduler::new(&prob, ParallelConfig::exact(6));
        let mut stats = SearchStats::default();
        let buckets = sched.initial_distribution(&mut stats);
        assert_eq!(buckets.len(), 6);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert!(total >= 6, "frontier of {total} states should cover every PPE");
        // The best state goes to PPE 0 (interleaved dealing).
        assert!(!buckets[0].is_empty());
    }
}

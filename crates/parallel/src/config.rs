//! Configuration of the parallel search.

use optsched_core::{HeuristicKind, PruningConfig, SearchLimits, StoreKind};
use optsched_procnet::Topology;

use crate::closed::DuplicateDetection;

/// Parameters of a parallel A* / Aε* run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Number of physical processing elements (PPE threads) `q`.
    /// The paper evaluates q ∈ {2, 4, 8, 16}.
    pub num_ppes: usize,
    /// Virtual interconnection topology of the PPEs; communication and load
    /// sharing only happen between topological neighbours.  The default mesh
    /// mirrors the Intel Paragon.  `None` falls back to a fully connected
    /// PPE network.
    pub ppe_topology: Option<Topology>,
    /// Pruning techniques applied by every PPE (same semantics as the serial
    /// scheduler).
    pub pruning: PruningConfig,
    /// Admissible heuristic used by every PPE.
    pub heuristic: HeuristicKind,
    /// `None` runs the exact parallel A*; `Some(ε)` runs the parallel Aε*
    /// with the corresponding FOCAL bound (the paper uses 0.2 and 0.5).
    pub epsilon: Option<f64>,
    /// Smallest communication period (in expansions). The period starts at
    /// `v / 2` and is halved after every communication phase down to this
    /// floor (the paper uses 2).
    pub min_comm_period: u64,
    /// How duplicate states are detected across PPEs: the paper's per-PPE
    /// private CLOSED lists (`Local`), or one global lock-striped table
    /// (`ShardedGlobal`, the default) that drops a state at generation time
    /// when *any* PPE has already claimed its signature.
    pub duplicate_detection: DuplicateDetection,
    /// Number of lock stripes of the sharded global CLOSED table (rounded up
    /// to a power of two; ignored in `Local` mode).  More shards mean less
    /// lock contention at a small memory cost; 16 is plenty for the thread
    /// counts the paper evaluates.
    pub num_shards: usize,
    /// Layout of each PPE's private state store.  With the default
    /// [`StoreKind::DeltaArena`] a worker's OPEN list holds arena ids and the
    /// generated states live as parent-id + delta records, materialised only
    /// on expansion and on load-share/election send; received states are
    /// re-rooted as delta chains.  [`StoreKind::EagerClone`] is the
    /// clone-per-generation baseline, defined exactly as for the serial
    /// engine: every admitted state is materialised immediately and retained
    /// in the arena for the whole run (the pre-arena *workers* freed popped
    /// states, so their OPEN high-water mark — still reported as
    /// `max_open_size` — is the tighter historical comparison point).
    pub store: StoreKind,
    /// Refcounted reclamation of dead delta chains in each PPE's arena (on
    /// by default; it never changes the search, see the engine's arena
    /// documentation).  Off restores the append-only store of PR 4/5 for
    /// before/after measurements.
    pub arena_gc: bool,
    /// Capacity of each PPE arena's materialisation path-cache (0 disables
    /// it; see [`optsched_core::ArenaConfig::path_cache`]).
    pub path_cache: u32,
    /// Largest number of states the `ShardedGlobal` best-state election
    /// ships in one phase when the receiver's published frontier minimum is
    /// *far* worse than this PPE's best `f` (empty, or more than 25% above).
    /// Every batch member is still strictly better than the receiver's
    /// published minimum; 1 restores the single-transfer election.  Ignored
    /// in `Local` mode, whose election sends copies.
    pub election_batch: u32,
    /// Resource limits applied to the whole parallel run (expansions and
    /// generations are counted across all PPEs).
    pub limits: SearchLimits,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            num_ppes: 4,
            ppe_topology: None,
            pruning: PruningConfig::all(),
            heuristic: HeuristicKind::PaperStaticLevel,
            epsilon: None,
            min_comm_period: 2,
            duplicate_detection: DuplicateDetection::default(),
            num_shards: 16,
            store: StoreKind::default(),
            arena_gc: true,
            path_cache: 8,
            election_batch: 4,
            limits: SearchLimits::unlimited(),
        }
    }
}

impl ParallelConfig {
    /// Convenience constructor for an exact run on `q` PPEs.
    pub fn exact(q: usize) -> ParallelConfig {
        ParallelConfig { num_ppes: q, ..Default::default() }
    }

    /// Convenience constructor for an approximate run on `q` PPEs with bound ε.
    pub fn approximate(q: usize, epsilon: f64) -> ParallelConfig {
        ParallelConfig { num_ppes: q, epsilon: Some(epsilon), ..Default::default() }
    }

    /// Returns this configuration with the given duplicate-detection mode.
    pub fn with_duplicate_detection(self, mode: DuplicateDetection) -> ParallelConfig {
        ParallelConfig { duplicate_detection: mode, ..self }
    }

    /// Returns this configuration with the given per-PPE state-store layout.
    pub fn with_store(self, store: StoreKind) -> ParallelConfig {
        ParallelConfig { store, ..self }
    }

    /// Returns this configuration with arena reclamation switched on or off.
    pub fn with_arena_gc(self, arena_gc: bool) -> ParallelConfig {
        ParallelConfig { arena_gc, ..self }
    }

    /// Returns this configuration with the given per-PPE path-cache capacity.
    pub fn with_path_cache(self, path_cache: u32) -> ParallelConfig {
        ParallelConfig { path_cache, ..self }
    }

    /// Returns this configuration with the given election batch size.
    pub fn with_election_batch(self, election_batch: u32) -> ParallelConfig {
        ParallelConfig { election_batch, ..self }
    }

    /// The undirected neighbour lists of the PPE network.
    ///
    /// A `Mesh` topology whose dimensions do not multiply to `num_ppes` is
    /// rejected at construction time by [`Topology::edges`]; the helper
    /// [`ParallelConfig::paragon_like`] picks a valid mesh automatically.
    pub fn ppe_neighbors(&self) -> Vec<Vec<usize>> {
        let q = self.num_ppes;
        let edges = match self.ppe_topology {
            Some(t) => t.edges(q),
            None => Topology::FullyConnected.edges(q),
        };
        let mut adj = vec![Vec::new(); q];
        for (a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        adj
    }

    /// A configuration with a roughly square mesh of PPEs, like the Paragon
    /// partitions used in the paper.
    pub fn paragon_like(q: usize) -> ParallelConfig {
        let mut rows = (q as f64).sqrt().floor() as usize;
        while rows > 1 && q % rows != 0 {
            rows -= 1;
        }
        let topology = if rows <= 1 {
            Topology::Chain
        } else {
            Topology::Mesh { rows, cols: q / rows }
        };
        ParallelConfig { num_ppes: q, ppe_topology: Some(topology), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_exact_fully_connected() {
        let c = ParallelConfig::default();
        assert_eq!(c.num_ppes, 4);
        assert!(c.epsilon.is_none());
        assert_eq!(c.duplicate_detection, DuplicateDetection::ShardedGlobal);
        assert_eq!(c.num_shards, 16);
        let adj = c.ppe_neighbors();
        assert_eq!(adj.len(), 4);
        assert_eq!(adj[0], vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_detection_mode_switch() {
        let local = ParallelConfig::exact(4).with_duplicate_detection(DuplicateDetection::Local);
        assert_eq!(local.duplicate_detection, DuplicateDetection::Local);
        // The rest of the configuration is untouched.
        assert_eq!(local.num_ppes, 4);
        assert_eq!(local.num_shards, ParallelConfig::default().num_shards);
    }

    #[test]
    fn store_knob_defaults_to_the_delta_arena() {
        assert_eq!(ParallelConfig::default().store, StoreKind::DeltaArena);
        let eager = ParallelConfig::exact(4).with_store(StoreKind::EagerClone);
        assert_eq!(eager.store, StoreKind::EagerClone);
        assert_eq!(eager.num_ppes, 4);
    }

    #[test]
    fn arena_lifecycle_knobs_default_on() {
        let c = ParallelConfig::default();
        assert!(c.arena_gc);
        assert_eq!(c.path_cache, 8);
        assert_eq!(c.election_batch, 4);
        let tuned = ParallelConfig::exact(4)
            .with_arena_gc(false)
            .with_path_cache(0)
            .with_election_batch(1);
        assert!(!tuned.arena_gc);
        assert_eq!(tuned.path_cache, 0);
        assert_eq!(tuned.election_batch, 1);
        assert_eq!(tuned.num_ppes, 4);
    }

    #[test]
    fn paragon_like_builds_a_mesh_when_possible() {
        let c = ParallelConfig::paragon_like(16);
        assert_eq!(c.ppe_topology, Some(Topology::Mesh { rows: 4, cols: 4 }));
        let adj = c.ppe_neighbors();
        // Interior PPE of a 4x4 mesh has 4 neighbours.
        assert_eq!(adj[5].len(), 4);

        let c2 = ParallelConfig::paragon_like(8);
        assert_eq!(c2.ppe_topology, Some(Topology::Mesh { rows: 2, cols: 4 }));

        let prime = ParallelConfig::paragon_like(7);
        assert_eq!(prime.ppe_topology, Some(Topology::Chain));
        assert_eq!(prime.ppe_neighbors()[0], vec![1]);
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(ParallelConfig::exact(8).num_ppes, 8);
        assert_eq!(ParallelConfig::approximate(16, 0.5).epsilon, Some(0.5));
    }

    #[test]
    fn ring_topology_neighbours() {
        let c = ParallelConfig {
            num_ppes: 5,
            ppe_topology: Some(Topology::Ring),
            ..Default::default()
        };
        let adj = c.ppe_neighbors();
        assert_eq!(adj[0], vec![1, 4]);
        assert_eq!(adj[2], vec![1, 3]);
    }
}

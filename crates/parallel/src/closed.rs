//! Sharded global duplicate detection for the parallel search.
//!
//! The paper's PPEs each keep a *private* CLOSED list, so the same partial
//! schedule can be generated — and expanded — by several PPEs.  On shared
//! memory nothing forces that design: this module provides a single logical
//! CLOSED/seen table shared by every PPE, split into `N` independent shards
//! so concurrent claims on different signatures almost never contend.
//!
//! A PPE *claims* a [`StateSignature`] at generation time; the first claim
//! wins and every later claim of the same signature (by any PPE) reports a
//! duplicate, identifying the owner so redundant cross-PPE work can be
//! counted separately from ordinary local duplicates.  Because a signature
//! encodes the exact `(processor, start time)` assignment of every scheduled
//! node, two states with equal signatures have equal `g` and identical future
//! expansions — dropping the loser never loses reachability, so the search
//! stays exact.  The table still records the claimed `g` and re-opens a
//! signature on a strictly better claim as a defensive measure.
//!
//! Two shard backends implement the claim protocol ([`TableBackend`]):
//!
//! * **`atomic`** (the default) — a chaining hash table of atomic bucket
//!   heads over immutable push-front nodes.  A claim hashes its signature,
//!   walks its bucket's chain (a fingerprint word short-circuits mismatched
//!   nodes; a match is always decided by full signature equality) and, if
//!   absent, publishes a heap node with one compare-and-swap on the head; a
//!   loser re-walks only the prefix its race inserted and retries.  Nodes
//!   are never removed or moved, so no locks, no spinning and no ABA; growth
//!   is a non-event — the load factor rises and chains lengthen gracefully
//!   (~`entries / 2^20` nodes per walk) instead of migrating or probing
//!   saturated windows.
//! * **`mutex`** — the PR 2 lock-striped `Mutex<HashMap>` shards, kept for
//!   the ablation and as the reference model the atomic backend is
//!   property-tested against.
//!
//! Both backends keep identical per-shard hit/miss/reopen counters with the
//! exact `entries == misses` invariant.
//!
//! Ownership of a claim travels with the state: when load sharing moves a
//! state to another PPE, the receiver inserts it into its OPEN list without
//! consulting the table (the claim is still "alive", merely held elsewhere),
//! so a claimed state is never dropped by all PPEs at once.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use optsched_core::state::StateSignature;
use optsched_taskgraph::Cost;

/// How the parallel search detects duplicate states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateDetection {
    /// Every PPE keeps a private CLOSED/seen table, as on the paper's
    /// message-passing Paragon.  The same state can be expanded by several
    /// PPEs; kept for ablation and as the faithful-to-the-paper mode.
    Local,
    /// One global table shared by all PPEs, split into
    /// [`ParallelConfig::num_shards`](crate::ParallelConfig::num_shards)
    /// shards: a state already claimed by any PPE is dropped at generation
    /// time, eliminating redundant cross-PPE expansions.
    #[default]
    ShardedGlobal,
}

impl std::fmt::Display for DuplicateDetection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DuplicateDetection::Local => write!(f, "local"),
            DuplicateDetection::ShardedGlobal => write!(f, "sharded"),
        }
    }
}

impl std::str::FromStr for DuplicateDetection {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "local" => Ok(DuplicateDetection::Local),
            "sharded" | "global" | "sharded-global" => Ok(DuplicateDetection::ShardedGlobal),
            other => Err(format!("unknown duplicate-detection mode `{other}` (expected local|sharded)")),
        }
    }
}

/// Which shard store a [`ShardedClosedTable`] claims through.
///
/// Selected per table at construction; [`ShardedClosedTable::new`] reads the
/// `OPTSCHED_CLOSED_TABLE` environment knob (`atomic` is the default) so the
/// conformance matrix and the ablation bins can pin either backend without a
/// recompile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableBackend {
    /// Lock-striped `Mutex<HashMap>` shards (the PR 2 design; the reference
    /// model for the atomic backend's property tests).
    Mutex,
    /// Lock-free chaining over atomic bucket heads: CAS claim, immutable
    /// push-front nodes, migration-free growth.
    #[default]
    Atomic,
}

impl TableBackend {
    /// The backend selected by `OPTSCHED_CLOSED_TABLE` (`mutex`|`atomic`),
    /// defaulting to [`TableBackend::Atomic`] when unset or unparsable.
    pub fn from_env() -> TableBackend {
        std::env::var("OPTSCHED_CLOSED_TABLE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_default()
    }
}

impl std::fmt::Display for TableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableBackend::Mutex => write!(f, "mutex"),
            TableBackend::Atomic => write!(f, "atomic"),
        }
    }
}

impl std::str::FromStr for TableBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mutex" | "locked" | "hashmap" => Ok(TableBackend::Mutex),
            "atomic" | "lockfree" | "lock-free" => Ok(TableBackend::Atomic),
            other => Err(format!("unknown closed-table backend `{other}` (expected mutex|atomic)")),
        }
    }
}

/// Result of [`ShardedClosedTable::try_claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The signature was not in the table (or arrived with a strictly better
    /// `g`); the caller now owns it and must keep the state.
    Claimed,
    /// The signature was already claimed by the *calling* PPE: an ordinary
    /// local duplicate.
    DuplicateSameOwner,
    /// The signature was already claimed by a *different* PPE: a redundant
    /// cross-PPE expansion avoided.
    DuplicateOtherOwner,
}

/// How a claim resolved inside a shard store — the store reports the kind and
/// the shard translates it into counter updates, so both backends keep
/// bit-compatible counters by construction.
enum ClaimKind {
    /// New signature inserted (counts as a miss).
    Fresh,
    /// Existing entry replaced by a strictly better `g` (counts as a reopen).
    Reopen,
    /// Duplicate dropped (counts as a hit); carries the owning PPE.
    Duplicate { owner: u32 },
}

/// A claim: the best `g` seen for the signature and the PPE that holds it.
#[derive(Debug, Clone, Copy)]
struct ClaimEntry {
    g: Cost,
    owner: u32,
}

// ---------------------------------------------------------------------------
// Atomic shard store
// ---------------------------------------------------------------------------

/// Bucket heads across the *whole table*, divided among its shards — a claim
/// costs one bucket load plus an average chain walk of
/// `entries / TOTAL_BUCKET_BUDGET` nodes, independent of the shard count.
/// 2^20 head pointers are 8 MiB; a v = 12 parallel run claims ~3 M
/// signatures, so chains average ~3 nodes at the largest searches this
/// repository runs and the cost never cliffs (an earlier open-addressed
/// design degraded to window-scanning whole saturated segments).
const TOTAL_BUCKET_BUDGET: usize = 1 << 20;

/// Floor on the per-shard bucket array, so high shard counts keep useful
/// per-shard tables.
const MIN_BUCKETS_PER_SHARD: usize = 1 << 10;

/// One published claim of the atomic store: an immutable chain node (except
/// for the defensive better-`g` reopen fields).  The full signature is kept
/// so a match is always decided by signature equality, never by the
/// fingerprint.
struct ClaimNode {
    /// Fingerprint of the signature hash; checked before the signature so
    /// walking over a mismatched node costs one word comparison, not a slice
    /// comparison.
    fp: u64,
    sig: StateSignature,
    g: AtomicU64,
    owner: AtomicU32,
    /// The next node in the bucket chain.  Written only while the node is
    /// still privately owned (before its publishing CAS); immutable after.
    next: *mut ClaimNode,
}

/// The lock-free shard store: a fixed power-of-two array of bucket heads,
/// each an atomic pointer to an immutable push-front chain of [`ClaimNode`]s.
///
/// A claim walks its bucket's chain; if the signature is absent it CAS-es a
/// new node in at the head.  A loser re-walks only the *prefix* its race
/// inserted (chains grow at the head and nodes are never removed, so the old
/// head is still reachable and there is no ABA), then retries.  Growth is a
/// non-event: load factor rises and chains lengthen gracefully instead of
/// probing saturated windows.
struct AtomicStore {
    buckets: Box<[AtomicPtr<ClaimNode>]>,
    mask: usize,
}

// SAFETY: all mutation goes through atomics; published `ClaimNode` pointers
// are immutable (bar their atomic fields) and freed only in `Drop`, which
// requires `&mut`.
unsafe impl Send for AtomicStore {}
unsafe impl Sync for AtomicStore {}

impl AtomicStore {
    fn new(num_buckets: usize) -> AtomicStore {
        let capacity = num_buckets.max(MIN_BUCKETS_PER_SHARD).next_power_of_two();
        let buckets = (0..capacity).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        AtomicStore { buckets, mask: capacity - 1 }
    }

    /// Walks `chain` (stopping at `until`, exclusive) for a node matching
    /// `fp`/`sig`.
    ///
    /// SAFETY: every pointer reachable from a published head stays valid
    /// until `Drop`, and `until` must be a pointer previously loaded from
    /// this bucket (chains only grow at the head, so it remains reachable).
    fn walk(
        mut chain: *mut ClaimNode,
        until: *mut ClaimNode,
        fp: u64,
        sig: &StateSignature,
    ) -> Option<&ClaimNode> {
        while chain != until {
            // SAFETY: see above — non-null chain pointers stay valid.
            let node = unsafe { &*chain };
            if node.fp == fp && node.sig == *sig {
                return Some(node);
            }
            chain = node.next;
        }
        None
    }

    fn try_claim(&self, sig: StateSignature, g: Cost, owner: u32) -> ClaimKind {
        let h = slot_hash(&sig);
        let fp = h | 1;
        let bucket = &self.buckets[(h as usize) & self.mask];
        let mut head = bucket.load(Ordering::Acquire);
        if let Some(node) = AtomicStore::walk(head, ptr::null_mut(), fp, &sig) {
            return resolve_occupied(node, g, owner);
        }
        // Absent: publish a new node at the head.  The signature moves into
        // the node (no clone); the box is reused across failed CAS attempts
        // and simply dropped if a racing claim turns out to hold it already.
        let mut node = Box::new(ClaimNode {
            fp,
            sig,
            g: AtomicU64::new(g),
            owner: AtomicU32::new(owner),
            next: head,
        });
        loop {
            let raw = Box::into_raw(node);
            match bucket.compare_exchange(head, raw, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return ClaimKind::Fresh,
                Err(new_head) => {
                    // SAFETY: `raw` lost the race and was never published; we
                    // still own it.
                    node = unsafe { Box::from_raw(raw) };
                    // Only the freshly inserted prefix (new_head..head) can
                    // contain our signature — everything from `head` down was
                    // checked before the CAS.
                    if let Some(won) = AtomicStore::walk(new_head, head, fp, &node.sig) {
                        return resolve_occupied(won, g, owner);
                    }
                    node.next = new_head;
                    head = new_head;
                }
            }
        }
    }

    fn find(&self, sig: &StateSignature) -> bool {
        let h = slot_hash(sig);
        let head = self.buckets[(h as usize) & self.mask].load(Ordering::Acquire);
        AtomicStore::walk(head, ptr::null_mut(), h | 1, sig).is_some()
    }

    /// Chain nodes across all buckets (each claimed signature occupies
    /// exactly one node, so this equals the entry count).
    fn len(&self) -> usize {
        let mut n = 0;
        for bucket in self.buckets.iter() {
            let mut p = bucket.load(Ordering::Acquire);
            while !p.is_null() {
                n += 1;
                // SAFETY: as in `walk`.
                p = unsafe { &*p }.next;
            }
        }
        n
    }
}

impl Drop for AtomicStore {
    fn drop(&mut self) {
        for bucket in self.buckets.iter_mut() {
            let mut p = *bucket.get_mut();
            while !p.is_null() {
                // SAFETY: `&mut self` means no concurrent readers; every
                // non-null pointer was produced by `Box::into_raw` and
                // published once.
                let node = unsafe { Box::from_raw(p) };
                p = node.next;
            }
        }
    }
}

/// Duplicate/reopen resolution on an already-published entry, shared by the
/// atomic probe loop.  The reopen CAS loop mirrors the mutex backend's
/// replace-under-lock: only a strictly better `g` wins, and the owner follows
/// the winning `g`.
fn resolve_occupied(entry: &ClaimNode, g: Cost, owner: u32) -> ClaimKind {
    let mut current = entry.g.load(Ordering::Acquire);
    while g < current {
        match entry.g.compare_exchange(current, g, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                entry.owner.store(owner, Ordering::Release);
                return ClaimKind::Reopen;
            }
            Err(better) => current = better,
        }
    }
    ClaimKind::Duplicate { owner: entry.owner.load(Ordering::Acquire) }
}

/// Within-shard slot hash: the shard index consumes the low bits of the
/// signature hash, so the slot hash remixes the full word to keep bucket
/// indices independent of shard selection.  A bare odd-constant multiply is
/// NOT enough here: it maps a fixed-low-bits residue class onto a stride
/// lattice, leaving only `buckets / num_shards` of each shard's buckets
/// reachable — the xor-shift finalizer (splitmix64's) restores full
/// avalanche into the low bits the bucket mask reads.
fn slot_hash(sig: &StateSignature) -> u64 {
    let mut x = sig_hash(sig);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn sig_hash(sig: &StateSignature) -> u64 {
    let mut h = DefaultHasher::new();
    sig.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Shards and the table
// ---------------------------------------------------------------------------

/// The per-shard claim store: one of the two [`TableBackend`]s.
enum ShardStore {
    Mutex(Mutex<HashMap<StateSignature, ClaimEntry>>),
    Atomic(AtomicStore),
}

impl ShardStore {
    fn try_claim(&self, sig: StateSignature, g: Cost, owner: u32) -> ClaimKind {
        match self {
            ShardStore::Mutex(map) => match map.lock().entry(sig) {
                Entry::Occupied(mut e) => {
                    if g < e.get().g {
                        e.insert(ClaimEntry { g, owner });
                        ClaimKind::Reopen
                    } else {
                        ClaimKind::Duplicate { owner: e.get().owner }
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(ClaimEntry { g, owner });
                    ClaimKind::Fresh
                }
            },
            ShardStore::Atomic(store) => store.try_claim(sig, g, owner),
        }
    }

    fn contains(&self, sig: &StateSignature) -> bool {
        match self {
            ShardStore::Mutex(map) => map.lock().contains_key(sig),
            ShardStore::Atomic(store) => store.find(sig),
        }
    }

    fn len(&self) -> usize {
        match self {
            ShardStore::Mutex(map) => map.lock().len(),
            ShardStore::Atomic(store) => store.len(),
        }
    }
}

/// One shard: a claim store plus lock-free hit/miss counters (read without
/// any lock by [`ShardedClosedTable::stats`]).
struct Shard {
    store: ShardStore,
    hits: AtomicU64,
    misses: AtomicU64,
    reopens: AtomicU64,
}

impl Shard {
    fn new(backend: TableBackend, buckets: usize) -> Shard {
        let store = match backend {
            TableBackend::Mutex => ShardStore::Mutex(Mutex::new(HashMap::new())),
            TableBackend::Atomic => ShardStore::Atomic(AtomicStore::new(buckets)),
        };
        Shard {
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reopens: AtomicU64::new(0),
        }
    }
}

/// Counters of one shard, snapshot by [`ShardedClosedTable::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCounters {
    /// Signatures currently claimed in this shard.
    pub entries: usize,
    /// Claims that found the signature already present (duplicates dropped).
    pub hits: u64,
    /// Claims that inserted a new signature.
    pub misses: u64,
    /// Claims that *replaced* an existing entry because they carried a
    /// strictly better `g`.  Exact signatures imply equal `g`, so this stays
    /// 0 unless the signature representation is ever loosened; tracking it
    /// separately keeps `entries == misses` an exact invariant either way.
    pub reopens: u64,
}

/// Per-shard hit/miss/occupancy statistics of a [`ShardedClosedTable`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClosedTableStats {
    /// One entry per shard, indexed by shard id.
    pub per_shard: Vec<ShardCounters>,
}

impl ClosedTableStats {
    /// Number of shards the table was built with.
    pub fn num_shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Total signatures claimed across all shards.
    pub fn total_entries(&self) -> usize {
        self.per_shard.iter().map(|s| s.entries).sum()
    }

    /// Total duplicate claims dropped across all shards.
    pub fn total_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.hits).sum()
    }

    /// Total first-time claims across all shards.
    pub fn total_misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.misses).sum()
    }

    /// Total better-`g` re-opens across all shards (0 in practice; see
    /// [`ShardCounters::reopens`]).
    pub fn total_reopens(&self) -> u64 {
        self.per_shard.iter().map(|s| s.reopens).sum()
    }

    /// Ratio of claims that were duplicates (0.0 when the table is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.total_misses() + self.total_reopens();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }
}

/// The sharded global CLOSED/duplicate-detection table.
pub struct ShardedClosedTable {
    shards: Vec<Shard>,
    backend: TableBackend,
    /// `shards.len() - 1`; shard count is a power of two so masking replaces
    /// the modulo on the hot path.
    mask: usize,
}

impl std::fmt::Debug for ShardedClosedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedClosedTable")
            .field("backend", &self.backend)
            .field("num_shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

impl ShardedClosedTable {
    /// Creates a table with `num_shards` shards, rounded up to the next power
    /// of two (minimum 1, capped at 1024 — beyond that the per-shard stores
    /// cost more memory than they save in contention), using the backend
    /// selected by the `OPTSCHED_CLOSED_TABLE` environment knob
    /// ([`TableBackend::from_env`]; `atomic` by default).
    pub fn new(num_shards: usize) -> ShardedClosedTable {
        ShardedClosedTable::with_backend(num_shards, TableBackend::from_env())
    }

    /// As [`ShardedClosedTable::new`], but with an explicit backend — the
    /// constructor the ablation bins and the reference-model property tests
    /// use.
    pub fn with_backend(num_shards: usize, backend: TableBackend) -> ShardedClosedTable {
        let n = num_shards.clamp(1, 1024).next_power_of_two();
        // The atomic backend's bucket budget is a whole-table constant: more
        // shards mean smaller per-shard arrays, not more memory.
        let buckets = (TOTAL_BUCKET_BUDGET / n).max(MIN_BUCKETS_PER_SHARD);
        ShardedClosedTable {
            shards: (0..n).map(|_| Shard::new(backend, buckets)).collect(),
            backend,
            mask: n - 1,
        }
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard backend in use.
    pub fn backend(&self) -> TableBackend {
        self.backend
    }

    fn shard_of(&self, sig: &StateSignature) -> &Shard {
        &self.shards[(sig_hash(sig) as usize) & self.mask]
    }

    /// Attempts to claim `sig` with cost `g` on behalf of PPE `owner`.
    ///
    /// The first claim of a signature wins; later claims report whether the
    /// duplicate was generated by the same or a different PPE.  A claim with
    /// a strictly better `g` re-opens the signature (defensive: exact
    /// signatures imply equal `g`, so completeness is preserved either way).
    pub fn try_claim(&self, sig: StateSignature, g: Cost, owner: usize) -> ClaimOutcome {
        let shard = self.shard_of(&sig);
        match shard.store.try_claim(sig, g, owner as u32) {
            ClaimKind::Fresh => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                ClaimOutcome::Claimed
            }
            ClaimKind::Reopen => {
                shard.reopens.fetch_add(1, Ordering::Relaxed);
                ClaimOutcome::Claimed
            }
            ClaimKind::Duplicate { owner: holder } => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                if holder as usize == owner {
                    ClaimOutcome::DuplicateSameOwner
                } else {
                    ClaimOutcome::DuplicateOtherOwner
                }
            }
        }
    }

    /// True if `sig` has been claimed.
    pub fn contains(&self, sig: &StateSignature) -> bool {
        self.shard_of(sig).store.contains(sig)
    }

    /// Total signatures claimed across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.store.len()).sum()
    }

    /// True if no signature has been claimed yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.store.len() == 0)
    }

    /// Snapshot of the per-shard counters.
    pub fn stats(&self) -> ClosedTableStats {
        ClosedTableStats {
            per_shard: self
                .shards
                .iter()
                .map(|s| ShardCounters {
                    entries: s.store.len(),
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    reopens: s.reopens.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_core::{HeuristicKind, SchedulingProblem, SearchState};
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    const BACKENDS: [TableBackend; 2] = [TableBackend::Mutex, TableBackend::Atomic];

    /// Distinct signatures harvested from a breadth-first enumeration of the
    /// paper example's state space (no pruning): real states, real hashes.
    fn signature_corpus() -> Vec<(StateSignature, Cost)> {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;
        let mut frontier = vec![SearchState::initial(&prob)];
        let mut sigs: Vec<(StateSignature, Cost)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _depth in 0..3 {
            let mut next = Vec::new();
            for s in &frontier {
                for n in s.ready_nodes(&prob) {
                    for p in prob.network().proc_ids() {
                        let child = s.schedule_node(&prob, n, p, h);
                        let sig = child.signature();
                        if seen.insert(sig.clone()) {
                            sigs.push((sig, child.g()));
                            next.push(child);
                        }
                    }
                }
            }
            frontier = next;
        }
        assert!(sigs.len() >= 30, "corpus too small: {}", sigs.len());
        sigs
    }

    #[test]
    fn first_claim_wins_and_owners_are_tracked() {
        for backend in BACKENDS {
            let table = ShardedClosedTable::with_backend(4, backend);
            let corpus = signature_corpus();
            let (sig, g) = corpus[0].clone();
            assert!(!table.contains(&sig));
            assert_eq!(table.try_claim(sig.clone(), g, 0), ClaimOutcome::Claimed);
            assert_eq!(table.try_claim(sig.clone(), g, 0), ClaimOutcome::DuplicateSameOwner);
            assert_eq!(table.try_claim(sig.clone(), g, 1), ClaimOutcome::DuplicateOtherOwner);
            assert!(table.contains(&sig));
            assert_eq!(table.len(), 1);

            let stats = table.stats();
            assert_eq!(stats.total_entries(), 1);
            assert_eq!(stats.total_misses(), 1);
            assert_eq!(stats.total_hits(), 2);
            assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9, "{backend}");
        }
    }

    #[test]
    fn better_g_reopens_a_signature() {
        for backend in BACKENDS {
            let table = ShardedClosedTable::with_backend(1, backend);
            let (sig, g) = signature_corpus()[0].clone();
            assert_eq!(table.try_claim(sig.clone(), g + 5, 0), ClaimOutcome::Claimed);
            // Equal g: duplicate.  Strictly better g: re-claimed.
            assert_eq!(table.try_claim(sig.clone(), g + 5, 1), ClaimOutcome::DuplicateOtherOwner);
            assert_eq!(table.try_claim(sig.clone(), g, 1), ClaimOutcome::Claimed);
            assert_eq!(table.try_claim(sig, g, 0), ClaimOutcome::DuplicateOtherOwner);
            assert_eq!(table.len(), 1);

            // A re-open replaces the entry and is counted separately, so the
            // `entries == misses` invariant survives it.
            let stats = table.stats();
            assert_eq!(stats.total_misses(), 1);
            assert_eq!(stats.total_reopens(), 1);
            assert_eq!(stats.total_hits(), 2);
            assert_eq!(stats.total_entries() as u64, stats.total_misses());
        }
    }

    #[test]
    fn shard_count_is_a_power_of_two() {
        for backend in BACKENDS {
            assert_eq!(ShardedClosedTable::with_backend(0, backend).num_shards(), 1);
            assert_eq!(ShardedClosedTable::with_backend(1, backend).num_shards(), 1);
            assert_eq!(ShardedClosedTable::with_backend(5, backend).num_shards(), 8);
            assert_eq!(ShardedClosedTable::with_backend(16, backend).num_shards(), 16);
            assert_eq!(ShardedClosedTable::with_backend(1_000_000, backend).num_shards(), 1024);
            let t = ShardedClosedTable::with_backend(6, backend);
            assert!(t.is_empty());
            assert_eq!(t.stats().num_shards(), 8);
            assert_eq!(t.backend(), backend);
        }
    }

    /// A single shard takes the whole corpus without losing or duplicating
    /// any signature, however dense its buckets get: chains simply lengthen.
    #[test]
    fn atomic_backend_survives_dense_single_shard_fill() {
        let table = ShardedClosedTable::with_backend(1, TableBackend::Atomic);
        let corpus = signature_corpus();
        for (sig, g) in &corpus {
            assert_eq!(table.try_claim(sig.clone(), *g, 0), ClaimOutcome::Claimed);
        }
        for (sig, g) in &corpus {
            assert_eq!(table.try_claim(sig.clone(), *g, 1), ClaimOutcome::DuplicateOtherOwner);
            assert!(table.contains(sig));
        }
        assert_eq!(table.len(), corpus.len());
        let stats = table.stats();
        assert_eq!(stats.total_misses(), corpus.len() as u64);
        assert_eq!(stats.total_entries(), corpus.len());
    }

    /// The stress test of the ISSUE: q = 4 threads hammer one table with an
    /// overlapping stream of claims (every thread claims the full corpus, in
    /// a different order, several times).  No update may be lost: across all
    /// threads each signature is claimed successfully *exactly once*, and the
    /// final table state equals a serial replay of the same claims.
    #[test]
    fn concurrent_claims_equal_a_serial_replay() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 25;
        for backend in BACKENDS {
            let corpus = signature_corpus();
            let table = ShardedClosedTable::with_backend(8, backend);

            let claim_wins: Vec<u64> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|id| {
                        let corpus = &corpus;
                        let table = &table;
                        scope.spawn(move || {
                            let mut wins = 0u64;
                            for round in 0..ROUNDS {
                                // Rotate the iteration order per thread and round
                                // so claims collide in every interleaving.
                                let offset = (id * 7 + round * 13) % corpus.len();
                                for i in 0..corpus.len() {
                                    let (sig, g) = &corpus[(i + offset) % corpus.len()];
                                    if table.try_claim(sig.clone(), *g, id) == ClaimOutcome::Claimed
                                    {
                                        wins += 1;
                                    }
                                }
                            }
                            wins
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("stress thread panicked")).collect()
            });

            // Serial replay: claiming the corpus on a fresh table yields exactly
            // one entry (and one win) per distinct signature.
            let replay = ShardedClosedTable::with_backend(8, backend);
            let mut replay_wins = 0u64;
            for (sig, g) in &corpus {
                if replay.try_claim(sig.clone(), *g, 0) == ClaimOutcome::Claimed {
                    replay_wins += 1;
                }
            }
            assert_eq!(replay_wins, corpus.len() as u64);
            assert_eq!(replay.len(), corpus.len());

            // No lost updates: same total wins, same final contents.
            let total_wins: u64 = claim_wins.iter().sum();
            assert_eq!(total_wins, replay_wins, "{backend}: a claim was lost or double-granted");
            assert_eq!(table.len(), replay.len());
            for (sig, _) in &corpus {
                assert!(table.contains(sig));
            }

            // Counter bookkeeping: every attempt is either a hit or a miss, and
            // entries mirror the successful claims.
            let stats = table.stats();
            let attempts = (THREADS * ROUNDS * corpus.len()) as u64;
            assert_eq!(stats.total_hits() + stats.total_misses(), attempts);
            assert_eq!(stats.total_misses(), total_wins);
            assert_eq!(stats.total_entries(), corpus.len());
        }
    }

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("local".parse::<DuplicateDetection>().unwrap(), DuplicateDetection::Local);
        assert_eq!(
            "sharded".parse::<DuplicateDetection>().unwrap(),
            DuplicateDetection::ShardedGlobal
        );
        assert_eq!(
            "SHARDED-GLOBAL".parse::<DuplicateDetection>().unwrap(),
            DuplicateDetection::ShardedGlobal
        );
        assert!("bogus".parse::<DuplicateDetection>().is_err());
        assert_eq!(DuplicateDetection::Local.to_string(), "local");
        assert_eq!(DuplicateDetection::ShardedGlobal.to_string(), "sharded");
        assert_eq!(DuplicateDetection::default(), DuplicateDetection::ShardedGlobal);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("mutex".parse::<TableBackend>().unwrap(), TableBackend::Mutex);
        assert_eq!("ATOMIC".parse::<TableBackend>().unwrap(), TableBackend::Atomic);
        assert_eq!("lock-free".parse::<TableBackend>().unwrap(), TableBackend::Atomic);
        assert!("bogus".parse::<TableBackend>().is_err());
        assert_eq!(TableBackend::Mutex.to_string(), "mutex");
        assert_eq!(TableBackend::Atomic.to_string(), "atomic");
        assert_eq!(TableBackend::default(), TableBackend::Atomic);
    }
}

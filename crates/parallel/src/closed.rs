//! Sharded global duplicate detection for the parallel search.
//!
//! The paper's PPEs each keep a *private* CLOSED list, so the same partial
//! schedule can be generated — and expanded — by several PPEs.  On shared
//! memory nothing forces that design: this module provides a single logical
//! CLOSED/seen table shared by every PPE, split into `N` independently locked
//! shards so concurrent claims on different signatures almost never contend.
//!
//! A PPE *claims* a [`StateSignature`] at generation time; the first claim
//! wins and every later claim of the same signature (by any PPE) reports a
//! duplicate, identifying the owner so redundant cross-PPE work can be
//! counted separately from ordinary local duplicates.  Because a signature
//! encodes the exact `(processor, start time)` assignment of every scheduled
//! node, two states with equal signatures have equal `g` and identical future
//! expansions — dropping the loser never loses reachability, so the search
//! stays exact.  The table still records the claimed `g` and re-opens a
//! signature on a strictly better claim as a defensive measure.
//!
//! Ownership of a claim travels with the state: when load sharing moves a
//! state to another PPE, the receiver inserts it into its OPEN list without
//! consulting the table (the claim is still "alive", merely held elsewhere),
//! so a claimed state is never dropped by all PPEs at once.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use optsched_core::state::StateSignature;
use optsched_taskgraph::Cost;

/// How the parallel search detects duplicate states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateDetection {
    /// Every PPE keeps a private CLOSED/seen table, as on the paper's
    /// message-passing Paragon.  The same state can be expanded by several
    /// PPEs; kept for ablation and as the faithful-to-the-paper mode.
    Local,
    /// One global table shared by all PPEs, lock-striped into
    /// [`ParallelConfig::num_shards`](crate::ParallelConfig::num_shards)
    /// shards: a state already claimed by any PPE is dropped at generation
    /// time, eliminating redundant cross-PPE expansions.
    #[default]
    ShardedGlobal,
}

impl std::fmt::Display for DuplicateDetection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DuplicateDetection::Local => write!(f, "local"),
            DuplicateDetection::ShardedGlobal => write!(f, "sharded"),
        }
    }
}

impl std::str::FromStr for DuplicateDetection {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "local" => Ok(DuplicateDetection::Local),
            "sharded" | "global" | "sharded-global" => Ok(DuplicateDetection::ShardedGlobal),
            other => Err(format!("unknown duplicate-detection mode `{other}` (expected local|sharded)")),
        }
    }
}

/// Result of [`ShardedClosedTable::try_claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The signature was not in the table (or arrived with a strictly better
    /// `g`); the caller now owns it and must keep the state.
    Claimed,
    /// The signature was already claimed by the *calling* PPE: an ordinary
    /// local duplicate.
    DuplicateSameOwner,
    /// The signature was already claimed by a *different* PPE: a redundant
    /// cross-PPE expansion avoided.
    DuplicateOtherOwner,
}

/// A claim: the best `g` seen for the signature and the PPE that holds it.
#[derive(Debug, Clone, Copy)]
struct ClaimEntry {
    g: Cost,
    owner: u32,
}

/// One lock-striped shard: a map guarded by its own mutex plus lock-free
/// hit/miss counters (updated under the shard lock, read without it).
#[derive(Debug, Default)]
struct Shard {
    map: Mutex<HashMap<StateSignature, ClaimEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    reopens: AtomicU64,
}

/// Counters of one shard, snapshot by [`ShardedClosedTable::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardCounters {
    /// Signatures currently claimed in this shard.
    pub entries: usize,
    /// Claims that found the signature already present (duplicates dropped).
    pub hits: u64,
    /// Claims that inserted a new signature.
    pub misses: u64,
    /// Claims that *replaced* an existing entry because they carried a
    /// strictly better `g`.  Exact signatures imply equal `g`, so this stays
    /// 0 unless the signature representation is ever loosened; tracking it
    /// separately keeps `entries == misses` an exact invariant either way.
    pub reopens: u64,
}

/// Per-shard hit/miss/occupancy statistics of a [`ShardedClosedTable`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClosedTableStats {
    /// One entry per shard, indexed by shard id.
    pub per_shard: Vec<ShardCounters>,
}

impl ClosedTableStats {
    /// Number of shards the table was built with.
    pub fn num_shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Total signatures claimed across all shards.
    pub fn total_entries(&self) -> usize {
        self.per_shard.iter().map(|s| s.entries).sum()
    }

    /// Total duplicate claims dropped across all shards.
    pub fn total_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.hits).sum()
    }

    /// Total first-time claims across all shards.
    pub fn total_misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.misses).sum()
    }

    /// Total better-`g` re-opens across all shards (0 in practice; see
    /// [`ShardCounters::reopens`]).
    pub fn total_reopens(&self) -> u64 {
        self.per_shard.iter().map(|s| s.reopens).sum()
    }

    /// Ratio of claims that were duplicates (0.0 when the table is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_hits() + self.total_misses() + self.total_reopens();
        if total == 0 {
            0.0
        } else {
            self.total_hits() as f64 / total as f64
        }
    }
}

/// The sharded, lock-striped global CLOSED/duplicate-detection table.
#[derive(Debug)]
pub struct ShardedClosedTable {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two so masking replaces
    /// the modulo on the hot path.
    mask: usize,
}

impl ShardedClosedTable {
    /// Creates a table with `num_shards` shards, rounded up to the next power
    /// of two (minimum 1, capped at 1024 — beyond that the per-shard mutexes
    /// cost more memory than they save in contention).
    pub fn new(num_shards: usize) -> ShardedClosedTable {
        let n = num_shards.clamp(1, 1024).next_power_of_two();
        ShardedClosedTable {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: n - 1,
        }
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, sig: &StateSignature) -> &Shard {
        let mut h = DefaultHasher::new();
        sig.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Attempts to claim `sig` with cost `g` on behalf of PPE `owner`.
    ///
    /// The first claim of a signature wins; later claims report whether the
    /// duplicate was generated by the same or a different PPE.  A claim with
    /// a strictly better `g` re-opens the signature (defensive: exact
    /// signatures imply equal `g`, so completeness is preserved either way).
    pub fn try_claim(&self, sig: StateSignature, g: Cost, owner: usize) -> ClaimOutcome {
        let shard = self.shard_of(&sig);
        let mut map = shard.map.lock();
        match map.entry(sig) {
            Entry::Occupied(mut e) => {
                if g < e.get().g {
                    e.insert(ClaimEntry { g, owner: owner as u32 });
                    shard.reopens.fetch_add(1, Ordering::Relaxed);
                    ClaimOutcome::Claimed
                } else {
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    if e.get().owner as usize == owner {
                        ClaimOutcome::DuplicateSameOwner
                    } else {
                        ClaimOutcome::DuplicateOtherOwner
                    }
                }
            }
            Entry::Vacant(v) => {
                v.insert(ClaimEntry { g, owner: owner as u32 });
                shard.misses.fetch_add(1, Ordering::Relaxed);
                ClaimOutcome::Claimed
            }
        }
    }

    /// True if `sig` has been claimed.
    pub fn contains(&self, sig: &StateSignature) -> bool {
        self.shard_of(sig).map.lock().contains_key(sig)
    }

    /// Total signatures claimed across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// True if no signature has been claimed yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.map.lock().is_empty())
    }

    /// Snapshot of the per-shard counters.
    pub fn stats(&self) -> ClosedTableStats {
        ClosedTableStats {
            per_shard: self
                .shards
                .iter()
                .map(|s| ShardCounters {
                    entries: s.map.lock().len(),
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    reopens: s.reopens.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_core::{HeuristicKind, SchedulingProblem, SearchState};
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    /// Distinct signatures harvested from a breadth-first enumeration of the
    /// paper example's state space (no pruning): real states, real hashes.
    fn signature_corpus() -> Vec<(StateSignature, Cost)> {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;
        let mut frontier = vec![SearchState::initial(&prob)];
        let mut sigs: Vec<(StateSignature, Cost)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _depth in 0..3 {
            let mut next = Vec::new();
            for s in &frontier {
                for n in s.ready_nodes(&prob) {
                    for p in prob.network().proc_ids() {
                        let child = s.schedule_node(&prob, n, p, h);
                        let sig = child.signature();
                        if seen.insert(sig.clone()) {
                            sigs.push((sig, child.g()));
                            next.push(child);
                        }
                    }
                }
            }
            frontier = next;
        }
        assert!(sigs.len() >= 30, "corpus too small: {}", sigs.len());
        sigs
    }

    #[test]
    fn first_claim_wins_and_owners_are_tracked() {
        let table = ShardedClosedTable::new(4);
        let corpus = signature_corpus();
        let (sig, g) = corpus[0].clone();
        assert!(!table.contains(&sig));
        assert_eq!(table.try_claim(sig.clone(), g, 0), ClaimOutcome::Claimed);
        assert_eq!(table.try_claim(sig.clone(), g, 0), ClaimOutcome::DuplicateSameOwner);
        assert_eq!(table.try_claim(sig.clone(), g, 1), ClaimOutcome::DuplicateOtherOwner);
        assert!(table.contains(&sig));
        assert_eq!(table.len(), 1);

        let stats = table.stats();
        assert_eq!(stats.total_entries(), 1);
        assert_eq!(stats.total_misses(), 1);
        assert_eq!(stats.total_hits(), 2);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn better_g_reopens_a_signature() {
        let table = ShardedClosedTable::new(1);
        let (sig, g) = signature_corpus()[0].clone();
        assert_eq!(table.try_claim(sig.clone(), g + 5, 0), ClaimOutcome::Claimed);
        // Equal g: duplicate.  Strictly better g: re-claimed.
        assert_eq!(table.try_claim(sig.clone(), g + 5, 1), ClaimOutcome::DuplicateOtherOwner);
        assert_eq!(table.try_claim(sig.clone(), g, 1), ClaimOutcome::Claimed);
        assert_eq!(table.try_claim(sig, g, 0), ClaimOutcome::DuplicateOtherOwner);
        assert_eq!(table.len(), 1);

        // A re-open replaces the entry and is counted separately, so the
        // `entries == misses` invariant survives it.
        let stats = table.stats();
        assert_eq!(stats.total_misses(), 1);
        assert_eq!(stats.total_reopens(), 1);
        assert_eq!(stats.total_hits(), 2);
        assert_eq!(stats.total_entries() as u64, stats.total_misses());
    }

    #[test]
    fn shard_count_is_a_power_of_two() {
        assert_eq!(ShardedClosedTable::new(0).num_shards(), 1);
        assert_eq!(ShardedClosedTable::new(1).num_shards(), 1);
        assert_eq!(ShardedClosedTable::new(5).num_shards(), 8);
        assert_eq!(ShardedClosedTable::new(16).num_shards(), 16);
        assert_eq!(ShardedClosedTable::new(1_000_000).num_shards(), 1024);
        let t = ShardedClosedTable::new(6);
        assert!(t.is_empty());
        assert_eq!(t.stats().num_shards(), 8);
    }

    /// The stress test of the ISSUE: q = 4 threads hammer one table with an
    /// overlapping stream of claims (every thread claims the full corpus, in
    /// a different order, several times).  No update may be lost: across all
    /// threads each signature is claimed successfully *exactly once*, and the
    /// final table state equals a serial replay of the same claims.
    #[test]
    fn concurrent_claims_equal_a_serial_replay() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 25;
        let corpus = signature_corpus();
        let table = ShardedClosedTable::new(8);

        let claim_wins: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|id| {
                    let corpus = &corpus;
                    let table = &table;
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        for round in 0..ROUNDS {
                            // Rotate the iteration order per thread and round
                            // so claims collide in every interleaving.
                            let offset = (id * 7 + round * 13) % corpus.len();
                            for i in 0..corpus.len() {
                                let (sig, g) = &corpus[(i + offset) % corpus.len()];
                                if table.try_claim(sig.clone(), *g, id) == ClaimOutcome::Claimed {
                                    wins += 1;
                                }
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("stress thread panicked")).collect()
        });

        // Serial replay: claiming the corpus on a fresh table yields exactly
        // one entry (and one win) per distinct signature.
        let replay = ShardedClosedTable::new(8);
        let mut replay_wins = 0u64;
        for (sig, g) in &corpus {
            if replay.try_claim(sig.clone(), *g, 0) == ClaimOutcome::Claimed {
                replay_wins += 1;
            }
        }
        assert_eq!(replay_wins, corpus.len() as u64);
        assert_eq!(replay.len(), corpus.len());

        // No lost updates: same total wins, same final contents.
        let total_wins: u64 = claim_wins.iter().sum();
        assert_eq!(total_wins, replay_wins, "a claim was lost or double-granted");
        assert_eq!(table.len(), replay.len());
        for (sig, _) in &corpus {
            assert!(table.contains(sig));
        }

        // Counter bookkeeping: every attempt is either a hit or a miss, and
        // entries mirror the successful claims.
        let stats = table.stats();
        let attempts = (THREADS * ROUNDS * corpus.len()) as u64;
        assert_eq!(stats.total_hits() + stats.total_misses(), attempts);
        assert_eq!(stats.total_misses(), total_wins);
        assert_eq!(stats.total_entries(), corpus.len());
    }

    #[test]
    fn mode_parses_and_displays() {
        assert_eq!("local".parse::<DuplicateDetection>().unwrap(), DuplicateDetection::Local);
        assert_eq!(
            "sharded".parse::<DuplicateDetection>().unwrap(),
            DuplicateDetection::ShardedGlobal
        );
        assert_eq!(
            "SHARDED-GLOBAL".parse::<DuplicateDetection>().unwrap(),
            DuplicateDetection::ShardedGlobal
        );
        assert!("bogus".parse::<DuplicateDetection>().is_err());
        assert_eq!(DuplicateDetection::Local.to_string(), "local");
        assert_eq!(DuplicateDetection::ShardedGlobal.to_string(), "sharded");
        assert_eq!(DuplicateDetection::default(), DuplicateDetection::ShardedGlobal);
    }
}

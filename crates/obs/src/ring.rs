//! Per-thread event rings and the global drain registry.
//!
//! Each thread that records gets one fixed-capacity ring, registered (behind
//! an `Arc`) in a global list the first time the thread records.  Recording
//! is wait-free: the writer try-acquires the ring's single-word `busy` flag
//! and, on the rare loss (a concurrent [`drain`] holds it), drops the event
//! and bumps a counter rather than spinning.  The ring outlives its thread —
//! `drain` reads through the registry's `Arc`s, so events from exited worker
//! threads are still collected.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events a ring can hold before the oldest are overwritten.
pub const RING_CAPACITY: usize = 16 * 1024;

/// What kind of timeline entry an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A scope with a duration (`ph: "X"` in Chrome trace terms).
    Span,
    /// A point marker (`ph: "i"`).
    Instant,
}

/// One recorded timeline entry.  `Copy` and fully static-named so recording
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Static name of the span/instant.
    pub name: &'static str,
    /// Name of the enclosing span on the recording thread (`""` for roots
    /// and instants).
    pub parent: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Microseconds since the process epoch (span events: the *start*).
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Timeline row (Chrome trace `tid`); see [`crate::next_track`].
    pub track: u64,
    /// Name of the numeric payload (`""` for none).
    pub arg_name: &'static str,
    /// Numeric payload.
    pub arg: u64,
}

const EMPTY: Event = Event {
    name: "",
    parent: "",
    kind: EventKind::Instant,
    ts_us: 0,
    dur_us: 0,
    track: 0,
    arg_name: "",
    arg: 0,
};

/// A fixed-capacity single-producer ring of [`Event`]s with a try-lock
/// against the (rare) concurrent drainer.
pub struct EventRing {
    slots: Box<[UnsafeCell<Event>]>,
    /// Monotonic count of events ever written; `head % capacity` is the next
    /// slot.  Only meaningful while `busy` is held.
    head: AtomicU64,
    /// Single-word mutual exclusion between the owning writer and a drainer.
    busy: AtomicBool,
    /// Events discarded because the writer lost the `busy` race.
    dropped: AtomicU64,
}

// SAFETY: every access to `slots`/`head` happens strictly inside a successful
// `busy` compare-exchange acquire/release window, which serialises the owner
// thread's writes against the drainer (and would serialise any number of
// writers, though each ring has exactly one).
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// An empty ring (normally implicit: each recording thread gets one).
    pub fn new() -> Self {
        EventRing {
            slots: (0..RING_CAPACITY).map(|_| UnsafeCell::new(EMPTY)).collect(),
            head: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    fn try_acquire(&self) -> bool {
        self.busy
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn release(&self) {
        self.busy.store(false, Ordering::Release);
    }

    /// Wait-free push: on contention the event is dropped and counted.
    pub fn push(&self, ev: Event) {
        if !self.try_acquire() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let head = self.head.load(Ordering::Relaxed);
        let slot = (head as usize) % RING_CAPACITY;
        // SAFETY: `busy` is held (see the Sync impl).
        unsafe { *self.slots[slot].get() = ev };
        self.head.store(head + 1, Ordering::Relaxed);
        self.release();
    }

    /// Takes the ring's contents in write order (oldest first), leaving it
    /// empty.  Spins for the `busy` word — drains are rare and writer
    /// critical sections are a handful of instructions.
    pub fn take(&self) -> Vec<Event> {
        while !self.try_acquire() {
            std::hint::spin_loop();
        }
        let head = self.head.load(Ordering::Relaxed);
        let len = (head as usize).min(RING_CAPACITY);
        let start = head as usize - len;
        let mut out = Vec::with_capacity(len);
        for i in start..head as usize {
            // SAFETY: `busy` is held.
            out.push(unsafe { *self.slots[i % RING_CAPACITY].get() });
        }
        self.head.store(0, Ordering::Relaxed);
        self.release();
        out
    }

    /// Events this ring has discarded under drain contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::new()
    }
}

fn registry() -> &'static Mutex<Vec<Arc<EventRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<EventRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: Arc<EventRing> = {
        let ring = Arc::new(EventRing::new());
        registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    };
}

/// Records one event into the calling thread's ring.  Call sites normally go
/// through [`crate::instant`]/[`crate::span`], which check the enable flag
/// first; `record` itself is unconditional.
pub fn record(ev: Event) {
    // `try_with` so late events during thread teardown are dropped, not a
    // panic in a destructor.
    let _ = LOCAL_RING.try_with(|ring| ring.push(ev));
}

/// Drains every registered ring (live and exited threads alike) and returns
/// the events sorted by timestamp.
pub fn drain() -> Vec<Event> {
    let rings: Vec<Arc<EventRing>> = registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut events: Vec<Event> = rings.iter().flat_map(|r| r.take()).collect();
    events.sort_by_key(|e| (e.ts_us, e.track));
    events
}

/// Total events dropped across all rings (writer lost the drain race, or the
/// ring wrapped — wrapping is silent; this counts only contention drops).
pub fn dropped() -> u64 {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|r| r.dropped())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_keeping_the_newest_events() {
        let ring = EventRing::new();
        let total = RING_CAPACITY as u64 + 37;
        for i in 0..total {
            let mut ev = EMPTY;
            ev.ts_us = i;
            ring.push(ev);
        }
        let events = ring.take();
        assert_eq!(events.len(), RING_CAPACITY, "capacity bounds the drain");
        // The oldest 37 were overwritten; what remains is the newest window,
        // still in write order.
        assert_eq!(events[0].ts_us, 37);
        assert_eq!(events[RING_CAPACITY - 1].ts_us, total - 1);
        for w in events.windows(2) {
            assert_eq!(w[1].ts_us, w[0].ts_us + 1, "write order is preserved");
        }
        assert!(ring.take().is_empty(), "take clears the ring");
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn contended_push_drops_instead_of_blocking() {
        let ring = EventRing::new();
        assert!(ring.try_acquire());
        ring.push(EMPTY); // writer loses the race while we hold `busy`
        assert_eq!(ring.dropped(), 1);
        ring.release();
        ring.push(EMPTY);
        assert_eq!(ring.take().len(), 1);
    }
}

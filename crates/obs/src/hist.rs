//! Fixed-bucket log2 latency histograms.
//!
//! Values land in power-of-two buckets: bucket 0 holds exactly 0, bucket `b`
//! (for `b ≥ 1`) holds `[2^(b-1), 2^b)`, and the last bucket absorbs
//! everything above its lower bound.  With 40 buckets the top bucket starts
//! at `2^38` — about 76 hours when the unit is microseconds — so the range
//! covers any latency this service can produce.  The price is quantisation:
//! [`HistogramSnapshot::percentile`] reports a bucket *upper bound*, i.e. at
//! most 2× the true value.  Recording is one relaxed `fetch_add`; snapshots
//! merge like counters (element-wise add), so per-shard or per-run histograms
//! aggregate exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (see the module docs for the bucket layout).
pub const NUM_BUCKETS: usize = 40;

/// Index of the bucket `value` lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive `(low, high)` value range of bucket `bucket`.
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < NUM_BUCKETS);
    if bucket == 0 {
        (0, 0)
    } else if bucket == NUM_BUCKETS - 1 {
        (1 << (bucket - 1), u64::MAX)
    } else {
        (1 << (bucket - 1), (1 << bucket) - 1)
    }
}

/// A concurrent log2 histogram; share it and [`record`](Histogram::record)
/// from any thread.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
        }
    }

    /// Counts one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

/// An immutable copy of a [`Histogram`]; merges like a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_bounds`] for the value ranges).
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; NUM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Element-wise (counter-style) merge of another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Nearest-rank percentile (`p` in `0.0..=100.0`), reported as the
    /// matched bucket's upper bound — an overestimate of at most 2×.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(bucket).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b);
            if b < NUM_BUCKETS - 1 {
                assert_eq!(bucket_of(hi), b);
            }
        }
    }

    #[test]
    fn percentile_reports_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 1, 1, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.percentile(50.0), 1, "p50 is in the value-1 bucket");
        assert_eq!(snap.percentile(100.0), 1023, "p100 rounds 1000 up to its bucket cap");
        assert!(snap.percentile(100.0) >= 1000);
        assert_eq!(HistogramSnapshot::default().percentile(99.0), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(500);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.buckets[bucket_of(5)], 2);
        assert_eq!(merged.buckets[bucket_of(500)], 1);
    }
}

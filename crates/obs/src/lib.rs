//! Zero-dependency observability for optsched: lock-free per-thread event
//! rings, RAII span scopes, fixed-bucket log2 latency histograms, and a
//! Chrome trace-event (Perfetto-loadable) exporter.
//!
//! # Design
//!
//! Everything event-shaped sits behind one global enable flag.  When tracing
//! is **disabled** (the default), every instrumentation site costs exactly one
//! relaxed atomic load — no clock read, no allocation, no thread-local access.
//! [`Histogram`]s are deliberately *not* behind the flag: they are plain
//! relaxed-atomic bucket counters, cheap enough that the service keeps its
//! latency distributions always on.
//!
//! When **enabled**, each thread records [`Event`]s into its own fixed-size
//! [ring buffer](EventRing).  Writers never block: a writer that loses the
//! single-word acquire race (only possible against a concurrent [`drain`])
//! drops the event and bumps a `dropped` counter instead of waiting.
//! Timestamps are microseconds from a process-wide monotonic epoch, so events
//! from different threads interleave correctly in one timeline.
//!
//! Spans are RAII guards: [`span`] pushes the span name onto a thread-local
//! stack (so nested spans know their parent) and the guard's `Drop` records
//! one complete-span event with the measured duration.
//!
//! [`drain`] collects and clears every thread's ring (including rings of
//! threads that have already exited) sorted by timestamp; [`trace`] renders
//! drained events as Chrome `trace_event` JSON.

mod hist;
mod ring;
mod span;
pub mod trace;

pub use hist::{bucket_of, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use ring::{drain, dropped, record, Event, EventKind, EventRing, RING_CAPACITY};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TRACK: AtomicU64 = AtomicU64::new(1);

/// Turns event/span collection on or off, process-wide.
///
/// Enabling also pins the monotonic epoch (if this is the first enable), so
/// timestamps count from roughly the moment tracing started.
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether event/span collection is on.  This is the *entire* disabled-mode
/// cost of an instrumentation site: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process-wide monotonic epoch (pinned on first use).
#[inline]
pub fn now_us() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Hands out distinct track ids (Chrome trace `tid`s) so independent
/// activities — one search run, one connection, one PPE — get their own row
/// in the timeline.  Track 0 is the anonymous default.
pub fn next_track() -> u64 {
    NEXT_TRACK.fetch_add(1, Ordering::Relaxed)
}

/// Records an instant event (a point marker) if tracing is enabled.
///
/// `arg_name`/`arg` attach one numeric payload (use `""`/`0` for none).
#[inline]
pub fn instant(name: &'static str, track: u64, arg_name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    record(Event {
        name,
        parent: "",
        kind: EventKind::Instant,
        ts_us: now_us(),
        dur_us: 0,
        track,
        arg_name,
        arg,
    });
}

/// Drains all rings and writes them as Chrome trace-event JSON to `path`.
/// Returns the number of events written.
pub fn save_chrome_trace(path: &str) -> std::io::Result<usize> {
    let events = drain();
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    trace::write_chrome_trace(&mut out, &events)?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global flag and rings are process-wide, so the unit tests that
    // toggle them share one lock to stay independent of test threading.
    pub(crate) fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial_guard();
        set_enabled(false);
        let _ = drain();
        instant("noop", 0, "", 0);
        {
            let _s = span("noop_span", 0);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn instants_and_spans_land_in_the_drain() {
        let _g = serial_guard();
        set_enabled(true);
        let _ = drain();
        let track = next_track();
        {
            let _outer = span("outer", track);
            instant("tick", track, "n", 7);
            let _inner = span("inner", track);
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 3);
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(tick.kind, EventKind::Instant);
        assert_eq!((tick.arg_name, tick.arg), ("n", 7));
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(inner.parent, "outer", "nested span records its parent");
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.parent, "");
        assert!(outer.dur_us >= inner.dur_us);
        assert!(drain().is_empty(), "drain takes the events");
    }

    #[test]
    fn tracks_are_distinct() {
        let a = next_track();
        let b = next_track();
        assert_ne!(a, b);
    }
}

//! Chrome trace-event JSON export (the format `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly).
//!
//! Spans become complete events (`"ph": "X"`, with `ts`/`dur` in
//! microseconds), instants become thread-scoped instant events
//! (`"ph": "i"`).  The [`Event::track`] id is emitted as the `tid`, so each
//! track gets its own timeline row; `pid` is constant.

use std::io::{self, Write};

use crate::ring::{Event, EventKind};

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders one event as a Chrome trace-event JSON object.
pub fn event_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"name\":\"");
    push_escaped(&mut s, ev.name);
    s.push_str("\",\"cat\":\"optsched\",\"ph\":");
    match ev.kind {
        EventKind::Span => {
            s.push_str("\"X\"");
            s.push_str(&format!(",\"dur\":{}", ev.dur_us));
        }
        EventKind::Instant => s.push_str("\"i\",\"s\":\"t\""),
    }
    s.push_str(&format!(",\"ts\":{},\"pid\":1,\"tid\":{}", ev.ts_us, ev.track));
    if !ev.arg_name.is_empty() || !ev.parent.is_empty() {
        s.push_str(",\"args\":{");
        let mut first = true;
        if !ev.arg_name.is_empty() {
            s.push('"');
            push_escaped(&mut s, ev.arg_name);
            s.push_str(&format!("\":{}", ev.arg));
            first = false;
        }
        if !ev.parent.is_empty() {
            if !first {
                s.push(',');
            }
            s.push_str("\"parent\":\"");
            push_escaped(&mut s, ev.parent);
            s.push('"');
        }
        s.push('}');
    }
    s.push('}');
    s
}

/// Writes `events` as a Chrome trace-event JSON array.
pub fn write_chrome_trace<W: Write>(out: &mut W, events: &[Event]) -> io::Result<()> {
    out.write_all(b"[")?;
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.write_all(b",\n")?;
        }
        out.write_all(event_json(ev).as_bytes())?;
    }
    out.write_all(b"]\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_and_instant_render_as_chrome_events() {
        let span = Event {
            name: "search",
            parent: "request",
            kind: EventKind::Span,
            ts_us: 10,
            dur_us: 25,
            track: 3,
            arg_name: "expanded",
            arg: 42,
        };
        let json = event_json(&span);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":25"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"expanded\":42"));
        assert!(json.contains("\"parent\":\"request\""));

        let instant = Event {
            name: "incumbent",
            parent: "",
            kind: EventKind::Instant,
            ts_us: 11,
            dur_us: 0,
            track: 3,
            arg_name: "makespan",
            arg: 14,
        };
        let json = event_json(&instant);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(!json.contains("parent"));

        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[span, instant]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('[') && text.trim_end().ends_with(']'));
    }

    #[test]
    fn names_are_escaped() {
        let ev = Event {
            name: "quote\"back\\slash",
            parent: "",
            kind: EventKind::Instant,
            ts_us: 0,
            dur_us: 0,
            track: 0,
            arg_name: "",
            arg: 0,
        };
        let json = event_json(&ev);
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}

//! RAII span scopes with thread-local parent tracking.

use std::cell::RefCell;

use crate::ring::{record, Event, EventKind};
use crate::{enabled, now_us};

thread_local! {
    /// Names of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span scope.  Inert (and allocation-free) when tracing is disabled;
/// otherwise the guard's `Drop` records one complete-span event covering the
/// scope's lifetime, parented to the span that was open when it started.
pub fn span(name: &'static str, track: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            parent: "",
            track,
            start_us: 0,
            arg_name: "",
            arg: 0,
            armed: false,
        };
    }
    let parent = SPAN_STACK
        .try_with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied().unwrap_or("");
            stack.push(name);
            parent
        })
        .unwrap_or("");
    SpanGuard {
        name,
        parent,
        track,
        start_us: now_us(),
        arg_name: "",
        arg: 0,
        armed: true,
    }
}

/// Guard returned by [`span`]; records the span when dropped.
#[must_use = "a span measures the scope it is bound to — binding it to `_` drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    parent: &'static str,
    track: u64,
    start_us: u64,
    arg_name: &'static str,
    arg: u64,
    armed: bool,
}

impl SpanGuard {
    /// Attaches one numeric payload to the span's eventual event.
    pub fn with_arg(mut self, arg_name: &'static str, arg: u64) -> Self {
        self.arg_name = arg_name;
        self.arg = arg;
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let _ = SPAN_STACK.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
        });
        let end = now_us();
        record(Event {
            name: self.name,
            parent: self.parent,
            kind: EventKind::Span,
            ts_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            track: self.track,
            arg_name: self.arg_name,
            arg: self.arg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{drain, set_enabled};

    #[test]
    fn span_created_while_disabled_stays_inert_across_an_enable() {
        let _g = crate::tests::serial_guard();
        set_enabled(false);
        let _ = drain();
        let guard = span("late", 0);
        set_enabled(true);
        drop(guard); // was never pushed: must not record or pop anything
        {
            let _live = span("live", 0).with_arg("k", 3);
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "live");
        assert_eq!((events[0].arg_name, events[0].arg), ("k", 3));
    }
}

//! Property tests of the observability primitives: histogram merge laws and
//! ring-buffer wrap behaviour over randomised inputs.

use optsched_obs::{bucket_of, Event, EventKind, EventRing, Histogram, HistogramSnapshot, NUM_BUCKETS, RING_CAPACITY};
use proptest::prelude::*;

/// Expands a seed into a stream of latency-like values spanning many buckets
/// (a splitmix-style generator, so cases are reproducible from the seed).
fn values(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            // Bias toward small values but keep a heavy tail.
            z >> (z % 56)
        })
        .collect()
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// merge() behaves like counter addition: commutative, associative, and
    /// total-count preserving.
    #[test]
    fn histogram_merge_is_associative_and_count_preserving(
        (sa, sb, sc) in (any::<u64>(), any::<u64>(), any::<u64>()),
        (la, lb, lc) in (0usize..200, 0usize..200, 0usize..200),
    ) {
        let (a, b, c) = (
            snapshot_of(&values(sa, la)),
            snapshot_of(&values(sb, lb)),
            snapshot_of(&values(sc, lc)),
        );
        prop_assert_eq!(a.count(), la as u64, "every recorded value is counted");

        // (a + b) + c == a + (b + c)
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);

        // a + b == b + a, and counts add.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.count(), a.count() + b.count());

        // Merging is exactly recording the concatenation.
        let mut all = values(sa, la);
        all.extend(values(sb, lb));
        prop_assert_eq!(ab, snapshot_of(&all));
    }

    /// Bucketing is monotone (v <= w never lands v in a later bucket), and
    /// percentile never under-reports the recorded maximum's bucket floor.
    #[test]
    fn histogram_buckets_and_percentiles_are_monotone(
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let vals = values(seed, len);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert!(bucket_of(w[0]) <= bucket_of(w[1]));
        }
        let snap = snapshot_of(&vals);
        let mut last = 0u64;
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let v = snap.percentile(p);
            prop_assert!(v >= last, "percentile is monotone in p");
            last = v;
        }
        // p100 is the max's bucket upper bound: >= max, <= 2x max (quantisation).
        let max = *sorted.last().unwrap();
        let p100 = snap.percentile(100.0);
        prop_assert!(p100 >= max);
        if max > 0 && bucket_of(max) < NUM_BUCKETS - 1 {
            prop_assert!(p100 < max.saturating_mul(2));
        }
    }

    /// A ring that wraps keeps exactly the newest `RING_CAPACITY` events, in
    /// write order, and take() leaves it empty.
    #[test]
    fn ring_wrap_keeps_the_newest_window(extra in 0u64..100) {
        let ring = EventRing::new();
        let total = RING_CAPACITY as u64 + extra;
        for i in 0..total {
            ring.push(Event {
                name: "e",
                parent: "",
                kind: EventKind::Instant,
                ts_us: i,
                dur_us: 0,
                track: 0,
                arg_name: "",
                arg: i,
            });
        }
        let events = ring.take();
        prop_assert_eq!(events.len(), RING_CAPACITY.min(total as usize));
        prop_assert_eq!(events[0].ts_us, extra, "oldest surviving event");
        prop_assert_eq!(events[events.len() - 1].ts_us, total - 1);
        for w in events.windows(2) {
            prop_assert_eq!(w[1].ts_us, w[0].ts_us + 1);
        }
        prop_assert!(ring.take().is_empty());
        prop_assert_eq!(ring.dropped(), 0);
    }
}

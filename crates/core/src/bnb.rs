//! The Chen & Yu branch-and-bound baseline (reference [3] of the paper).
//!
//! Chen and Yu's algorithm is a branch-and-bound-with-underestimates search
//! for the same problem.  Its distinguishing feature — and the reason the
//! paper's A* outperforms it (Section 4.2) — is the cost of evaluating its
//! underestimate: for every newly generated state it
//!
//! 1. determines **all complete execution paths** extended from the node just
//!    scheduled,
//! 2. exhaustively **matches those paths against the processor graph** to
//!    find the minimum communication the remaining work must incur, and
//! 3. takes the estimated finish time of the last exit node as the bound.
//!
//! This re-implementation follows that recipe literally: the bound is
//! computed by explicit depth-first enumeration of the execution paths
//! (rather than from precomputed static levels) and, for every edge of every
//! path, the minimum communication is obtained by scanning processor pairs.
//! The value obtained is an admissible lower bound — numerically it can never
//! exceed the true remaining time — so the search is still exact; it is the
//! *evaluation cost per state* that differs from the A* scheduler, which is
//! exactly the asymmetry Table 1 measures.  [`SearchStats::path_segments_enumerated`]
//! records how much path-matching work was performed.
//!
//! No state-space pruning techniques are applied (Chen & Yu's algorithm
//! predates them); duplicate partial schedules are still detected, as in any
//! reasonable implementation, to keep memory bounded.

use optsched_procnet::ProcId;
use optsched_schedule::Schedule;
use optsched_taskgraph::{Cost, NodeId};

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::engine::{run_search, ArenaConfig, BoundPolicy, StoreKind};
use crate::problem::SchedulingProblem;
use crate::state::SearchState;
use crate::stats::{SearchResult, SearchStats};

/// Safety valve: maximum number of path/processor-assignment segments
/// enumerated per bound evaluation before the enumeration is cut short (the
/// truncated maximum is still a valid lower bound).
///
/// Chen & Yu's evaluation is exponential in the path length (every complete
/// execution path is matched exhaustively against the processor graph); the
/// cap keeps the baseline runnable on the benchmark workloads while
/// preserving the property Table 1 measures — a per-state evaluation cost
/// that is one to two orders of magnitude above the A* cost function's.
const MAX_SEGMENTS_PER_EVALUATION: u64 = 4_000;

/// Re-implementation of the Chen & Yu branch-and-bound scheduler: a thin
/// configuration over the unified [`engine`](crate::engine) whose
/// [`BoundPolicy`] orders OPEN by the path-enumeration underestimate.
#[derive(Debug, Clone)]
pub struct ChenYuScheduler<'a> {
    problem: &'a SchedulingProblem,
    limits: SearchLimits,
    store: ArenaConfig,
    seed_incumbent: bool,
    warm_start: Option<Schedule>,
}

impl<'a> ChenYuScheduler<'a> {
    /// Creates the baseline scheduler.
    pub fn new(problem: &'a SchedulingProblem) -> Self {
        ChenYuScheduler {
            problem,
            limits: SearchLimits::unlimited(),
            store: ArenaConfig::default(),
            seed_incumbent: false,
            warm_start: None,
        }
    }

    /// Applies resource limits to the run.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the state-store layout (delta arena by default).
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store.kind = store;
        self
    }

    /// Enables or disables refcounted arena reclamation (on by default).
    pub fn with_arena_gc(mut self, gc: bool) -> Self {
        self.store.gc = gc;
        self
    }

    /// Sets the materialisation path-cache capacity (0 disables it).
    pub fn with_path_cache(mut self, entries: u32) -> Self {
        self.store.path_cache = entries;
        self
    }

    /// Starts the branch-and-bound elimination from the list-heuristic upper
    /// bound instead of the algorithm's native infinite incumbent (and prunes
    /// strictly, since that bound is attained; see [`run_search`]).  This is
    /// the classic "seed BnB with a heuristic solution" accelerator — off by
    /// default to preserve the faithful-to-Chen-&-Yu baseline.
    pub fn with_seeded_incumbent(mut self, seed: bool) -> Self {
        self.seed_incumbent = seed;
        self
    }

    /// Hands the search a complete schedule attained elsewhere as a candidate
    /// starting incumbent (adopted only when strictly better than the bound
    /// the run would otherwise start from; must be feasible for this
    /// problem).
    pub fn with_warm_start(mut self, warm: Option<Schedule>) -> Self {
        self.warm_start = warm;
        self
    }

    /// The expensive underestimate: explicit enumeration of the execution
    /// paths from `from` (the node just scheduled), matched against the
    /// processor graph, yielding a lower bound on the time between `FT(from)`
    /// and the completion of the last exit node reachable from it.
    ///
    /// `state` may be either the child (with `from` scheduled) or its parent:
    /// the enumeration only consults the scheduled-status of strict
    /// descendants of `from`, which is identical in both.
    fn path_bound(&self, state: &SearchState, from: NodeId, stats: &mut SearchStats) -> Cost {
        let graph = self.problem.graph();
        let net = self.problem.network();
        let mut best: Cost = 0;
        // Depth-first enumeration of every path from `from` to an exit node.
        // The stack holds (node, next-child cursor); `comp_acc` / `comm_acc`
        // carry the accumulated computation and minimum-communication along
        // the current path, excluding `from` itself (the bound estimates the
        // time *after* FT(from)).
        let mut path: Vec<(NodeId, usize)> = vec![(from, 0)];
        let mut comp_acc: Vec<Cost> = vec![0];
        let mut comm_acc: Vec<Cost> = vec![0];
        let mut budget = MAX_SEGMENTS_PER_EVALUATION;
        while !path.is_empty() {
            let top = path.len() - 1;
            let (node, cursor) = path[top];
            // Only unscheduled successors contribute to the *remaining* work.
            let next = graph
                .successors(node)
                .iter()
                .enumerate()
                .skip(cursor)
                .find(|(_, &(c, _))| !state.is_scheduled(c));
            match next {
                Some((i, &(child, edge_comm))) if budget > 0 => {
                    path[top].1 = i + 1;
                    budget -= 1;
                    stats.path_segments_enumerated += 1;
                    // Minimum communication this edge can incur over all
                    // placements of its two endpoints (zero when co-located).
                    let mut min_comm = Cost::MAX;
                    for a in net.proc_ids() {
                        for b in net.proc_ids() {
                            min_comm = min_comm.min(net.comm_cost(edge_comm, a, b));
                        }
                    }
                    let comp = comp_acc[top] + graph.weight(child);
                    let comm = comm_acc[top] + min_comm;
                    best = best.max(comp + comm);
                    if graph.successors(child).is_empty() {
                        // A complete execution path has been determined:
                        // exhaustively match it against the processor graph,
                        // i.e. enumerate every assignment of the path's nodes
                        // to processors and take the cheapest total
                        // communication.  (Its minimum is attained by
                        // co-location, so the value cannot exceed the simple
                        // per-edge bound accumulated above — the enumeration
                        // is the evaluation cost Chen & Yu pay per state.)
                        let mut full_path: Vec<NodeId> = path.iter().map(|&(n, _)| n).collect();
                        full_path.push(child);
                        let matched =
                            exhaustive_path_matching(self.problem, &full_path, &mut budget, stats);
                        best = best.max(comp + matched);
                    } else {
                        path.push((child, 0));
                        comp_acc.push(comp);
                        comm_acc.push(comm);
                    }
                }
                _ => {
                    path.pop();
                    comp_acc.pop();
                    comm_acc.pop();
                }
            }
        }
        best
    }

    /// Runs the branch-and-bound search to completion (or until a limit is hit).
    ///
    /// Chen & Yu expand every ready node on every processor (no Section 3.2
    /// pruning — the techniques postdate the algorithm), and, unlike the
    /// paper's A*, have no external upper bound: branch-and-bound elimination
    /// only uses incumbents discovered by the search itself, which is why the
    /// [`BoundPolicy`] starts from an infinite incumbent length.  (The
    /// list-heuristic schedule is still the fallback result if a limit stops
    /// the run before any goal is found.)
    pub fn run(&self) -> SearchResult {
        let policy = BoundPolicy::new(
            |_problem: &SchedulingProblem,
             parent: &SearchState,
             delta: &crate::state::ChildDelta,
             stats: &mut SearchStats| {
                // The expensive underestimate is evaluated against the parent
                // plus the delta: the nodes the path enumeration visits are
                // all descendants of the node just scheduled, whose
                // scheduled-status is identical in parent and child.
                let remaining = self.path_bound(parent, delta.node, stats);
                delta.g.max(delta.finish + remaining)
            },
        );
        run_search(
            self.problem,
            policy,
            PruningConfig::none(),
            HeuristicKind::Zero,
            self.limits,
            self.store,
            self.seed_incumbent,
            self.warm_start.as_ref(),
        )
    }

    /// Exposes the bound computation for tests and the benches (value and
    /// enumeration cost for a single state).  The second element of the
    /// returned pair counts the path/assignment segments the evaluation
    /// enumerated (the "expensive cost function" measure of Section 4.2).
    pub fn evaluate_bound(&self, state: &SearchState, from: NodeId) -> (Cost, u64) {
        let mut stats = SearchStats::default();
        let b = self.path_bound(state, from, &mut stats);
        (b, stats.path_segments_enumerated)
    }

    /// Convenience used by benches: the processor the initial node would be
    /// placed on first (kept here so benches need not re-derive it).
    pub fn first_processor(&self) -> ProcId {
        ProcId(0)
    }
}

/// Exhaustively matches one complete execution path against the processor
/// graph: every assignment of the path's nodes to processors is enumerated
/// (odometer order) and the cheapest total communication along the path is
/// returned.  The all-co-located assignment is enumerated first, so even when
/// the per-evaluation `budget` cuts the enumeration short the returned
/// minimum is exact (zero) and the bound built from it stays admissible; the
/// rest of the enumeration is precisely the per-state evaluation expense the
/// paper's Section 4.2 attributes to Chen & Yu's algorithm.
fn exhaustive_path_matching(
    problem: &SchedulingProblem,
    path: &[NodeId],
    budget: &mut u64,
    stats: &mut SearchStats,
) -> Cost {
    let net = problem.network();
    let graph = problem.graph();
    let p = net.num_procs();
    if path.len() < 2 || p == 0 {
        return 0;
    }
    // Pre-fetch the edge weights along the path.
    let edge_weights: Vec<Cost> = path
        .windows(2)
        .map(|w| graph.edge_weight(w[0], w[1]).unwrap_or(0))
        .collect();
    let mut assignment = vec![0usize; path.len()];
    let mut best = Cost::MAX;
    loop {
        if *budget == 0 {
            break;
        }
        // Total communication of this processor assignment.
        let mut total = 0;
        for (i, &w) in edge_weights.iter().enumerate() {
            total += net.comm_cost(
                w,
                ProcId(assignment[i] as u32),
                ProcId(assignment[i + 1] as u32),
            );
            stats.path_segments_enumerated += 1;
            *budget = budget.saturating_sub(1);
        }
        best = best.min(total);
        // Advance the odometer.
        let mut pos = 0;
        loop {
            assignment[pos] += 1;
            if assignment[pos] < p {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
            if pos == path.len() {
                return if best == Cost::MAX { 0 } else { best };
            }
        }
    }
    if best == Cost::MAX {
        0
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::AStarScheduler;
    use crate::stats::SearchOutcome;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn chen_yu_finds_the_optimum_on_the_example() {
        let prob = example_problem();
        let r = ChenYuScheduler::new(&prob).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length, 14);
        r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
    }

    #[test]
    fn chen_yu_matches_astar_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for ccr in [0.1, 1.0, 10.0] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 9, ccr, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let a = AStarScheduler::new(&prob).run();
            let c = ChenYuScheduler::new(&prob).run();
            assert!(a.is_optimal() && c.is_optimal());
            assert_eq!(a.schedule_length, c.schedule_length, "ccr={ccr}");
        }
    }

    #[test]
    fn chen_yu_pays_for_path_enumeration() {
        let prob = example_problem();
        let cy = ChenYuScheduler::new(&prob).run();
        let astar = AStarScheduler::new(&prob).run();
        assert!(cy.stats.path_segments_enumerated > 0);
        assert_eq!(astar.stats.path_segments_enumerated, 0);
    }

    #[test]
    fn chen_yu_generates_at_least_as_many_states_as_pruned_astar() {
        let prob = example_problem();
        let cy = ChenYuScheduler::new(&prob).run();
        let astar = AStarScheduler::new(&prob).with_pruning(PruningConfig::all()).run();
        assert!(
            cy.stats.generated >= astar.stats.generated,
            "chen-yu {} vs a* {}",
            cy.stats.generated,
            astar.stats.generated
        );
    }

    #[test]
    fn bound_is_admissible_on_the_root_expansion() {
        // After scheduling n1 on PE0, the remaining time is at least 10 (the
        // static level of its heaviest successor) and the optimal schedule is
        // 14, so FT(n1) + bound must stay <= 14.
        let prob = example_problem();
        let scheduler = ChenYuScheduler::new(&prob);
        let s1 = SearchState::initial(&prob).schedule_node(
            &prob,
            NodeId(0),
            ProcId(0),
            HeuristicKind::Zero,
        );
        let (bound, work) = scheduler.evaluate_bound(&s1, NodeId(0));
        assert!(bound >= 10, "path enumeration must see the longest remaining chain");
        assert!(2 + bound <= 14, "bound must stay admissible");
        assert!(work > 0);
    }

    #[test]
    fn limits_are_honoured() {
        let prob = example_problem();
        let r = ChenYuScheduler::new(&prob).with_limits(SearchLimits::expansions(2)).run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);
        r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
        assert_eq!(ChenYuScheduler::new(&prob).first_processor(), ProcId(0));
    }
}

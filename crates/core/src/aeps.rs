//! The approximate Aε* scheduling algorithm (Section 3.4).
//!
//! Following Pearl & Kim's semi-admissible search, the algorithm keeps a
//! FOCAL subset of the OPEN list containing every state whose cost is within
//! a factor `(1 + ε)` of the smallest cost in OPEN, and always expands a
//! state from FOCAL — preferring the one with the smallest `h`, i.e. the one
//! closest to a complete schedule.  The first goal state expanded is
//! guaranteed to be within `(1 + ε)` of the optimal schedule length
//! (Theorem 2), while the search typically expands far fewer states than A*.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::problem::SchedulingProblem;
use crate::state::{SearchState, StateSignature};
use crate::stats::{SearchOutcome, SearchResult, SearchStats};

/// Approximate Aε* scheduler with a bounded deviation from the optimum.
#[derive(Debug, Clone)]
pub struct AEpsScheduler<'a> {
    problem: &'a SchedulingProblem,
    epsilon: f64,
    pruning: PruningConfig,
    heuristic: HeuristicKind,
    limits: SearchLimits,
}

impl<'a> AEpsScheduler<'a> {
    /// A scheduler with approximation factor `epsilon` (the paper evaluates
    /// ε = 0.2 and ε = 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(problem: &'a SchedulingProblem, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be a non-negative number");
        AEpsScheduler {
            problem,
            epsilon,
            pruning: PruningConfig::all(),
            heuristic: HeuristicKind::PaperStaticLevel,
            limits: SearchLimits::unlimited(),
        }
    }

    /// The approximation factor ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Selects which pruning techniques to use.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the admissible heuristic.
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Applies resource limits to the run.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Largest cost admitted into FOCAL when the smallest OPEN cost is `fmin`.
    fn focal_threshold(&self, fmin: Cost) -> Cost {
        ((fmin as f64) * (1.0 + self.epsilon)).floor() as Cost
    }

    /// Runs the search.  The returned schedule's length is at most
    /// `(1 + ε) ·` the optimal schedule length whenever the outcome is
    /// [`SearchOutcome::Optimal`] (which here means "completed within the
    /// configured bound").
    pub fn run(&self) -> SearchResult {
        let start_time = Instant::now();
        let mut stats = SearchStats::default();

        // Heap entries: (reversed ordering key, arena index).
        type FKey = (Reverse<(Cost, u64)>, usize);
        type HKey = (Reverse<(Cost, Cost, u64)>, usize);
        let mut arena: Vec<SearchState> = Vec::new();
        // Two views of OPEN with lazy deletion: by f (for fmin / fallback) and
        // by (h, f) (for the FOCAL selection rule).
        let mut open_f: BinaryHeap<FKey> = BinaryHeap::new();
        let mut open_h: BinaryHeap<HKey> = BinaryHeap::new();
        let mut in_open: Vec<bool> = Vec::new();
        let mut seen: HashMap<StateSignature, ()> = HashMap::new();
        let mut counter: u64 = 0;

        let mut incumbent: Schedule = self.problem.upper_bound_schedule().clone();
        let mut incumbent_len: Cost = incumbent.makespan();

        let initial = SearchState::initial(self.problem);
        arena.push(initial);
        in_open.push(true);
        open_f.push((Reverse((0, counter)), 0));
        open_h.push((Reverse((0, 0, counter)), 0));
        stats.generated += 1;

        let outcome = loop {
            // Clean stale entries from the f-ordered heap and read fmin.
            let fmin = loop {
                match open_f.peek() {
                    None => break None,
                    Some(&(Reverse((f, _)), idx)) if in_open[idx] => break Some(f),
                    Some(_) => {
                        open_f.pop();
                    }
                }
            };
            let Some(fmin) = fmin else { break SearchOutcome::Exhausted };
            let threshold = self.focal_threshold(fmin);

            // Prefer the smallest-h state within FOCAL; fall back to the
            // smallest-f state (which is trivially in FOCAL).
            let mut chosen: Option<usize> = None;
            while let Some(&(Reverse((_h, f, _c)), idx)) = open_h.peek() {
                if !in_open[idx] {
                    open_h.pop();
                    continue;
                }
                if f <= threshold {
                    chosen = Some(idx);
                    open_h.pop();
                }
                break;
            }
            let idx = match chosen {
                Some(idx) => idx,
                None => {
                    let (_, idx) = open_f.pop().expect("fmin was just observed");
                    idx
                }
            };
            in_open[idx] = false;
            stats.max_open_size = stats.max_open_size.max(open_f.len());

            if arena[idx].is_goal(self.problem) {
                incumbent = arena[idx].to_schedule(self.problem);
                break SearchOutcome::Optimal;
            }

            if let Some(max_exp) = self.limits.max_expansions {
                if stats.expanded >= max_exp {
                    break SearchOutcome::LimitReached;
                }
            }
            if let Some(max_gen) = self.limits.max_generated {
                if stats.generated >= max_gen {
                    break SearchOutcome::LimitReached;
                }
            }
            if let Some(ms) = self.limits.max_millis {
                if start_time.elapsed().as_millis() as u64 >= ms {
                    break SearchOutcome::LimitReached;
                }
            }
            if let Some(target) = self.limits.target_cost {
                if incumbent_len <= target {
                    break SearchOutcome::TargetReached;
                }
            }

            stats.expanded += 1;
            let candidates =
                arena[idx].expansion_candidates(self.problem, &self.pruning, &mut stats);
            for (node, proc) in candidates {
                let child = arena[idx].schedule_node(self.problem, node, proc, self.heuristic);
                stats.heuristic_evaluations += 1;
                let cf = child.f();
                if self.pruning.upper_bound_pruning && cf > incumbent_len {
                    stats.pruned_upper_bound += 1;
                    continue;
                }
                let signature = child.signature();
                if seen.contains_key(&signature) {
                    stats.duplicates += 1;
                    continue;
                }
                seen.insert(signature, ());
                if child.is_goal(self.problem) && child.g() < incumbent_len {
                    incumbent_len = child.g();
                    incumbent = child.to_schedule(self.problem);
                }
                counter += 1;
                let idx_new = arena.len();
                open_f.push((Reverse((cf, counter)), idx_new));
                open_h.push((Reverse((child.h(), cf, counter)), idx_new));
                arena.push(child);
                in_open.push(true);
                stats.generated += 1;
            }
        };

        SearchResult {
            schedule_length: incumbent.makespan(),
            schedule: Some(incumbent),
            outcome,
            stats,
            elapsed: start_time.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::AStarScheduler;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn epsilon_zero_is_exact() {
        let prob = example_problem();
        let r = AEpsScheduler::new(&prob, 0.0).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length, 14);
    }

    #[test]
    fn result_is_within_bound_for_paper_epsilons() {
        let mut rng = StdRng::seed_from_u64(21);
        for ccr in [0.1, 1.0, 10.0] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 10, ccr, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let optimal = AStarScheduler::new(&prob).run();
            assert!(optimal.is_optimal());
            for eps in [0.2, 0.5] {
                let approx = AEpsScheduler::new(&prob, eps).run();
                assert!(approx.is_optimal());
                let bound = (optimal.schedule_length as f64 * (1.0 + eps)).floor() as Cost;
                assert!(
                    approx.schedule_length <= bound,
                    "ccr={ccr} eps={eps}: {} > {}",
                    approx.schedule_length,
                    bound
                );
                approx.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
            }
        }
    }

    #[test]
    fn larger_epsilon_expands_no_more_states() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = generate_random_dag(
            &RandomDagConfig { nodes: 12, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
        let tight = AEpsScheduler::new(&prob, 0.0).run();
        let loose = AEpsScheduler::new(&prob, 0.5).run();
        assert!(loose.stats.expanded <= tight.stats.expanded);
    }

    #[test]
    fn focal_threshold_rounds_down() {
        let prob = example_problem();
        let s = AEpsScheduler::new(&prob, 0.2);
        assert_eq!(s.focal_threshold(10), 12);
        assert_eq!(s.focal_threshold(14), 16); // 16.8 -> 16
        assert_eq!(s.epsilon(), 0.2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let prob = example_problem();
        let _ = AEpsScheduler::new(&prob, -0.1);
    }

    #[test]
    fn limits_are_honoured() {
        let prob = example_problem();
        let r = AEpsScheduler::new(&prob, 0.2).with_limits(SearchLimits::expansions(1)).run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);
        r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
    }

    #[test]
    fn pruning_config_and_heuristic_are_composable() {
        let prob = example_problem();
        let r = AEpsScheduler::new(&prob, 0.2)
            .with_pruning(PruningConfig::none())
            .with_heuristic(HeuristicKind::TightStaticLevel)
            .run();
        assert!(r.is_optimal());
        assert!(r.schedule_length <= (14.0 * 1.2) as Cost);
    }
}

//! The approximate Aε* scheduling algorithm (Section 3.4).
//!
//! Following Pearl & Kim's semi-admissible search, the algorithm keeps a
//! FOCAL subset of the OPEN list containing every state whose cost is within
//! a factor `(1 + ε)` of the smallest cost in OPEN, and always expands a
//! state from FOCAL — preferring the one with the smallest `h`, i.e. the one
//! closest to a complete schedule.  The first goal state expanded is
//! guaranteed to be within `(1 + ε)` of the optimal schedule length
//! (Theorem 2), while the search typically expands far fewer states than A*.

use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::engine::{focal_threshold, run_search, ArenaConfig, FocalPolicy, StoreKind};
use crate::problem::SchedulingProblem;
use crate::stats::SearchResult;

/// Approximate Aε* scheduler with a bounded deviation from the optimum: a
/// thin configuration over the unified [`engine`](crate::engine) with the
/// FOCAL selection policy.
#[derive(Debug, Clone)]
pub struct AEpsScheduler<'a> {
    problem: &'a SchedulingProblem,
    epsilon: f64,
    pruning: PruningConfig,
    heuristic: HeuristicKind,
    limits: SearchLimits,
    store: ArenaConfig,
    seed_incumbent: bool,
    warm_start: Option<Schedule>,
}

impl<'a> AEpsScheduler<'a> {
    /// A scheduler with approximation factor `epsilon` (the paper evaluates
    /// ε = 0.2 and ε = 0.5).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(problem: &'a SchedulingProblem, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be a non-negative number");
        AEpsScheduler {
            problem,
            epsilon,
            pruning: PruningConfig::all(),
            heuristic: HeuristicKind::PaperStaticLevel,
            limits: SearchLimits::unlimited(),
            store: ArenaConfig::default(),
            seed_incumbent: false,
            warm_start: None,
        }
    }

    /// The approximation factor ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Selects which pruning techniques to use.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the admissible heuristic.
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Applies resource limits to the run.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the state-store layout (delta arena by default).
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store.kind = store;
        self
    }

    /// Enables or disables refcounted arena reclamation (on by default).
    pub fn with_arena_gc(mut self, gc: bool) -> Self {
        self.store.gc = gc;
        self
    }

    /// Sets the materialisation path-cache capacity (0 disables it).
    pub fn with_path_cache(mut self, entries: u32) -> Self {
        self.store.path_cache = entries;
        self
    }

    /// Treats the list-heuristic schedule as an attained incumbent (strict
    /// upper-bound pruning; see [`run_search`]).  Off by default.
    pub fn with_seeded_incumbent(mut self, seed: bool) -> Self {
        self.seed_incumbent = seed;
        self
    }

    /// Hands the search a complete schedule attained elsewhere as a candidate
    /// starting incumbent (adopted only when strictly better; must be
    /// feasible for this problem).
    pub fn with_warm_start(mut self, warm: Option<Schedule>) -> Self {
        self.warm_start = warm;
        self
    }

    /// Largest cost admitted into FOCAL when the smallest OPEN cost is `fmin`.
    pub fn focal_threshold(&self, fmin: Cost) -> Cost {
        focal_threshold(self.epsilon, fmin)
    }

    /// Runs the search.  The returned schedule's length is at most
    /// `(1 + ε) ·` the optimal schedule length whenever the outcome is
    /// [`SearchOutcome::Optimal`](crate::stats::SearchOutcome::Optimal)
    /// (which here means "completed within the configured bound").
    pub fn run(&self) -> SearchResult {
        run_search(
            self.problem,
            FocalPolicy::new(self.epsilon, self.pruning.upper_bound_pruning),
            self.pruning,
            self.heuristic,
            self.limits,
            self.store,
            self.seed_incumbent,
            self.warm_start.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::AStarScheduler;
    use crate::stats::SearchOutcome;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn epsilon_zero_is_exact() {
        let prob = example_problem();
        let r = AEpsScheduler::new(&prob, 0.0).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length, 14);
    }

    #[test]
    fn result_is_within_bound_for_paper_epsilons() {
        let mut rng = StdRng::seed_from_u64(21);
        for ccr in [0.1, 1.0, 10.0] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 10, ccr, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let optimal = AStarScheduler::new(&prob).run();
            assert!(optimal.is_optimal());
            for eps in [0.2, 0.5] {
                let approx = AEpsScheduler::new(&prob, eps).run();
                assert!(approx.is_optimal());
                let bound = (optimal.schedule_length as f64 * (1.0 + eps)).floor() as Cost;
                assert!(
                    approx.schedule_length <= bound,
                    "ccr={ccr} eps={eps}: {} > {}",
                    approx.schedule_length,
                    bound
                );
                approx.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
            }
        }
    }

    #[test]
    fn larger_epsilon_expands_no_more_states() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = generate_random_dag(
            &RandomDagConfig { nodes: 12, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
        let tight = AEpsScheduler::new(&prob, 0.0).run();
        let loose = AEpsScheduler::new(&prob, 0.5).run();
        assert!(loose.stats.expanded <= tight.stats.expanded);
    }

    #[test]
    fn focal_threshold_rounds_down() {
        let prob = example_problem();
        let s = AEpsScheduler::new(&prob, 0.2);
        assert_eq!(s.focal_threshold(10), 12);
        assert_eq!(s.focal_threshold(14), 16); // 16.8 -> 16
        assert_eq!(s.epsilon(), 0.2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_epsilon_rejected() {
        let prob = example_problem();
        let _ = AEpsScheduler::new(&prob, -0.1);
    }

    #[test]
    fn limits_are_honoured() {
        let prob = example_problem();
        let r = AEpsScheduler::new(&prob, 0.2).with_limits(SearchLimits::expansions(1)).run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);
        r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
    }

    #[test]
    fn pruning_config_and_heuristic_are_composable() {
        let prob = example_problem();
        let r = AEpsScheduler::new(&prob, 0.2)
            .with_pruning(PruningConfig::none())
            .with_heuristic(HeuristicKind::TightStaticLevel)
            .run();
        assert!(r.is_optimal());
        assert!(r.schedule_length <= (14.0 * 1.2) as Cost);
    }
}

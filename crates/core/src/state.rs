//! Search-state representation and the expansion operator (Section 3.1).
//!
//! A state is a *partial schedule*: a subset of the DAG's nodes assigned to
//! processors with concrete start/finish times.  The initial state is the
//! empty schedule, the expansion operator assigns one ready node to one
//! processor (appending after the processor's last task), and a goal state is
//! a complete schedule.

use std::cmp::Reverse;

use optsched_procnet::ProcId;
use optsched_schedule::Schedule;
use optsched_taskgraph::{Cost, NodeId};

use crate::bitset::BitSet;
use crate::config::{HeuristicKind, PruningConfig};
use crate::problem::SchedulingProblem;
use crate::stats::SearchStats;

/// Marker for "not assigned to any processor yet".
const UNASSIGNED: u16 = u16::MAX;

/// Exact identity of a partial schedule, used for duplicate detection.
///
/// Two states with the same signature assign the same nodes to the same
/// processors with the same start times, hence have identical `g`, `h` and
/// future expansions; only one needs to be kept.
///
/// The representation packs, for every node, the pair `(processor, start
/// time)` into one 64-bit word (`u64::MAX` marks an unscheduled node), so a
/// signature is a single allocation and hashes quickly even for large graphs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateSignature(Box<[u64]>);

impl StateSignature {
    /// Packs one `(processor, start time)` assignment into a signature word.
    #[inline]
    fn pack(proc: u64, start: Cost) -> u64 {
        debug_assert!(start < (1 << 48), "start time exceeds the packed range");
        (proc << 48) | start
    }

    /// The signature of the child obtained from this (parent) signature by
    /// additionally scheduling `node` on `proc` at `start`.
    ///
    /// Equivalent to materialising the child and calling
    /// [`SearchState::signature`], at the cost of one word-slice clone.
    pub fn with_assignment(&self, node: NodeId, proc: ProcId, start: Cost) -> StateSignature {
        let mut words = self.0.clone();
        debug_assert_eq!(words[node.index()], u64::MAX, "node already scheduled in the parent");
        words[node.index()] = StateSignature::pack(proc.index() as u64, start);
        StateSignature(words)
    }
}

/// The delta record of one expansion step: everything that distinguishes a
/// child state from its parent, in a fixed-size value.
///
/// Produced by [`SearchState::peek_child`] *without* materialising the child,
/// so the search engine can evaluate, bound-prune and duplicate-check a
/// generated state before paying for a single allocation.  Applying the delta
/// to the parent with [`SearchState::apply_delta`] reproduces exactly the
/// state [`SearchState::schedule_node`] would have built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildDelta {
    /// The ready node being scheduled.
    pub node: NodeId,
    /// The processor it is assigned to.
    pub proc: ProcId,
    /// Its start time (earliest start on `proc`).
    pub start: Cost,
    /// Its finish time.
    pub finish: Cost,
    /// The child's partial schedule length `g`.
    pub g: Cost,
    /// The child's heuristic estimate `h`.
    pub h: Cost,
}

impl ChildDelta {
    /// `f = g + h` of the child this delta describes.
    #[inline]
    pub fn f(&self) -> Cost {
        self.g + self.h
    }
}

/// A partial schedule together with its cost `f = g + h`.
#[derive(Debug, Clone)]
pub struct SearchState {
    scheduled: BitSet,
    /// Processor of each node (`UNASSIGNED` when unscheduled).
    proc_of: Box<[u16]>,
    /// Start time of each scheduled node.
    start: Box<[Cost]>,
    /// Finish time of each scheduled node.
    finish: Box<[Cost]>,
    /// Ready time of each processor (finish of its last task).
    proc_ready: Box<[Cost]>,
    /// Number of unscheduled predecessors of each node.
    missing_preds: Box<[u16]>,
    /// Number of scheduled nodes.
    num_scheduled: u16,
    /// Node with the largest finish time (`n_max` in the paper), if any.
    max_finish_node: Option<NodeId>,
    /// Partial schedule length `g(s)`.
    g: Cost,
    /// Heuristic estimate `h(s)` of the remaining schedule length.
    h: Cost,
}

impl SearchState {
    /// The initial (empty) state with `f = 0`.
    pub fn initial(problem: &SchedulingProblem) -> SearchState {
        let v = problem.num_nodes();
        let p = problem.num_procs();
        let graph = problem.graph();
        let missing: Vec<u16> =
            graph.node_ids().map(|n| graph.in_degree(n) as u16).collect();
        SearchState {
            scheduled: BitSet::new(v),
            proc_of: vec![UNASSIGNED; v].into_boxed_slice(),
            start: vec![0; v].into_boxed_slice(),
            finish: vec![0; v].into_boxed_slice(),
            proc_ready: vec![0; p].into_boxed_slice(),
            missing_preds: missing.into_boxed_slice(),
            num_scheduled: 0,
            max_finish_node: None,
            g: 0,
            h: 0,
        }
    }

    /// `g(s)`: the length of the partial schedule (max finish time).
    #[inline]
    pub fn g(&self) -> Cost {
        self.g
    }

    /// `h(s)`: the admissible estimate of the remaining schedule length.
    #[inline]
    pub fn h(&self) -> Cost {
        self.h
    }

    /// `f(s) = g(s) + h(s)`.
    #[inline]
    pub fn f(&self) -> Cost {
        self.g + self.h
    }

    /// Number of nodes scheduled so far.
    #[inline]
    pub fn depth(&self) -> u16 {
        self.num_scheduled
    }

    /// True when every node is scheduled (goal state).
    pub fn is_goal(&self, problem: &SchedulingProblem) -> bool {
        self.num_scheduled as usize == problem.num_nodes()
    }

    /// The node with the largest finish time, if any node is scheduled.
    pub fn max_finish_node(&self) -> Option<NodeId> {
        self.max_finish_node
    }

    /// True if `n` is scheduled in this state.
    #[inline]
    pub fn is_scheduled(&self, n: NodeId) -> bool {
        self.scheduled.contains(n.index())
    }

    /// Processor of `n`, if scheduled.
    pub fn proc_of(&self, n: NodeId) -> Option<ProcId> {
        let p = self.proc_of[n.index()];
        (p != UNASSIGNED).then(|| ProcId(u32::from(p)))
    }

    /// Finish time of `n`, if scheduled.
    pub fn finish_time(&self, n: NodeId) -> Option<Cost> {
        self.is_scheduled(n).then(|| self.finish[n.index()])
    }

    /// Ready time `RT_i` of processor `p` (Definition 1).
    #[inline]
    pub fn proc_ready_time(&self, p: ProcId) -> Cost {
        self.proc_ready[p.index()]
    }

    /// True if no task has been placed on `p` yet.
    pub fn proc_is_empty(&self, p: ProcId) -> bool {
        let pi = p.index() as u16;
        !self.proc_of.contains(&pi)
    }

    /// The ready nodes: unscheduled nodes whose predecessors are all scheduled.
    pub fn ready_nodes(&self, problem: &SchedulingProblem) -> Vec<NodeId> {
        problem
            .graph()
            .node_ids()
            .filter(|&n| !self.is_scheduled(n) && self.missing_preds[n.index()] == 0)
            .collect()
    }

    /// Earliest start time of ready node `n` on processor `p` (append-only),
    /// honouring the processor ready time and the arrival of every parent
    /// message.
    pub fn earliest_start(&self, problem: &SchedulingProblem, n: NodeId, p: ProcId) -> Cost {
        let net = problem.network();
        let mut est = self.proc_ready[p.index()];
        for &(parent, comm) in problem.graph().predecessors(n) {
            debug_assert!(self.is_scheduled(parent), "expanding a non-ready node");
            let parent_proc = ProcId(u32::from(self.proc_of[parent.index()]));
            let arrival = self.finish[parent.index()] + net.comm_cost(comm, parent_proc, p);
            est = est.max(arrival);
        }
        est
    }

    /// Creates the successor state obtained by scheduling ready node `n` on
    /// processor `p` at its earliest start time.
    pub fn schedule_node(
        &self,
        problem: &SchedulingProblem,
        n: NodeId,
        p: ProcId,
        heuristic: HeuristicKind,
    ) -> SearchState {
        let delta = self.peek_child(problem, n, p, heuristic);
        self.apply_delta(problem, &delta)
    }

    /// Evaluates the expansion "schedule ready node `n` on processor `p`"
    /// *without materialising the child state*: the returned [`ChildDelta`]
    /// carries the child's placement, `g` and `h`, computed directly against
    /// this (parent) state.
    ///
    /// This is the allocation-free half of the expansion operator; pass the
    /// delta to [`SearchState::apply_delta`] to build the full child, which is
    /// only necessary for states that survive pruning and duplicate detection
    /// and are actually selected for expansion.
    pub fn peek_child(
        &self,
        problem: &SchedulingProblem,
        n: NodeId,
        p: ProcId,
        heuristic: HeuristicKind,
    ) -> ChildDelta {
        let est = self.earliest_start(problem, n, p);
        let dur = problem.network().exec_time(problem.graph().weight(n), p);
        let finish = est + dur;
        let (g, max_finish_node) =
            if finish >= self.g { (finish, Some(n)) } else { (self.g, self.max_finish_node) };
        let h = self.peek_h(problem, heuristic, n, finish, g, max_finish_node);
        ChildDelta { node: n, proc: p, start: est, finish, g, h }
    }

    /// Evaluates the heuristic of the child obtained by scheduling `n` (with
    /// finish time `n_finish`), against this parent state.  `g` and
    /// `max_finish_node` are the child's values.
    fn peek_h(
        &self,
        problem: &SchedulingProblem,
        heuristic: HeuristicKind,
        n: NodeId,
        n_finish: Cost,
        g: Cost,
        max_finish_node: Option<NodeId>,
    ) -> Cost {
        let graph = problem.graph();
        let levels = problem.levels();
        // Scheduled-set and finish times of the *child*: the parent's, plus `n`.
        let scheduled = |m: NodeId| m == n || self.is_scheduled(m);
        let finish_of = |m: NodeId| if m == n { n_finish } else { self.finish[m.index()] };
        match heuristic {
            HeuristicKind::Zero => 0,
            HeuristicKind::PaperStaticLevel => {
                let Some(nmax) = max_finish_node else { return 0 };
                graph
                    .successors(nmax)
                    .iter()
                    .filter(|&&(c, _)| !scheduled(c))
                    .map(|&(c, _)| levels.static_level(c))
                    .max()
                    .unwrap_or(0)
            }
            HeuristicKind::TightStaticLevel => {
                let mut bound = g;
                for m in graph.node_ids().filter(|&m| scheduled(m)) {
                    let tail = graph
                        .successors(m)
                        .iter()
                        .filter(|&&(c, _)| !scheduled(c))
                        .map(|&(c, _)| levels.static_level(c))
                        .max()
                        .unwrap_or(0);
                    bound = bound.max(finish_of(m) + tail);
                }
                // Unscheduled entry-like nodes (all of whose predecessors are
                // unscheduled too) still need at least their static level.
                for m in graph.node_ids().filter(|&m| !scheduled(m)) {
                    if graph.predecessors(m).iter().all(|&(q, _)| !scheduled(q)) {
                        bound = bound.max(levels.static_level(m));
                    }
                }
                bound - g
            }
        }
    }

    /// Materialises the child described by `delta`: clones this state and
    /// applies the delta in place.
    pub fn apply_delta(&self, problem: &SchedulingProblem, delta: &ChildDelta) -> SearchState {
        let mut next = self.clone();
        next.apply_delta_in_place(problem, delta);
        next
    }

    /// Applies `delta` to this state in place (the replay step of the
    /// delta-backed state arena).  `self` must be the delta's parent state.
    pub fn apply_delta_in_place(&mut self, problem: &SchedulingProblem, delta: &ChildDelta) {
        let n = delta.node;
        let p = delta.proc;
        debug_assert!(!self.is_scheduled(n), "delta re-schedules an already scheduled node");
        self.scheduled.insert(n.index());
        self.proc_of[n.index()] = p.index() as u16;
        self.start[n.index()] = delta.start;
        self.finish[n.index()] = delta.finish;
        self.proc_ready[p.index()] = delta.finish;
        self.num_scheduled += 1;
        for &(child, _) in problem.graph().successors(n) {
            self.missing_preds[child.index()] -= 1;
        }
        if delta.finish >= self.g {
            self.max_finish_node = Some(n);
        }
        self.g = delta.g;
        self.h = delta.h;
    }

    /// Overwrites this state with the contents of `other` without allocating
    /// (all slices keep their boxes; both states must belong to the same
    /// problem instance, i.e. have identical slice lengths).
    pub fn copy_from(&mut self, other: &SearchState) {
        self.scheduled.copy_from(&other.scheduled);
        self.proc_of.copy_from_slice(&other.proc_of);
        self.start.copy_from_slice(&other.start);
        self.finish.copy_from_slice(&other.finish);
        self.proc_ready.copy_from_slice(&other.proc_ready);
        self.missing_preds.copy_from_slice(&other.missing_preds);
        self.num_scheduled = other.num_scheduled;
        self.max_finish_node = other.max_finish_node;
        self.g = other.g;
        self.h = other.h;
    }

    /// Decomposes this state into a chain of [`ChildDelta`]s that, replayed
    /// in order onto the problem's *initial* state, rebuilds a state equal to
    /// `self` in every observable field (signature, `g`, `h`, depth,
    /// `max_finish_node`, processor ready times, ready set).
    ///
    /// This is the receive-side half of the parallel scheduler's
    /// materialise-on-send protocol: a state arriving from another PPE is a
    /// full `SearchState`, but a delta arena can re-root it as this chain and
    /// keep holding only fixed-size records.  The chain is *not* the sender's
    /// generation history — it replays the assignments in ascending finish
    /// order (a valid topological order, since a successor can only start at
    /// or after its predecessor's finish), with the true `max_finish_node`
    /// deliberately placed last among equal-finish assignments so the replay
    /// reproduces it exactly.  Intermediate `h` values are not reconstructed
    /// (they are never observed — only the final slot of a chain is
    /// materialised); the final delta carries this state's true `h`.
    pub fn to_delta_chain(&self) -> Vec<ChildDelta> {
        let mut assignments: Vec<NodeId> = (0..self.proc_of.len())
            .filter(|&i| self.scheduled.contains(i))
            .map(|i| NodeId(i as u32))
            .collect();
        assignments
            .sort_by_key(|&n| (self.finish[n.index()], Some(n) == self.max_finish_node, n));
        let last = assignments.len().checked_sub(1);
        assignments
            .iter()
            .enumerate()
            .map(|(i, &n)| ChildDelta {
                node: n,
                proc: ProcId(u32::from(self.proc_of[n.index()])),
                start: self.start[n.index()],
                finish: self.finish[n.index()],
                // In ascending finish order the running schedule length is
                // exactly the finish of the assignment just applied.
                g: self.finish[n.index()],
                h: if Some(i) == last { self.h } else { 0 },
            })
            .collect()
    }

    /// The exact signature of this partial schedule (for duplicate detection).
    pub fn signature(&self) -> StateSignature {
        let words: Vec<u64> = (0..self.proc_of.len())
            .map(|i| {
                if self.scheduled.contains(i) {
                    StateSignature::pack(u64::from(self.proc_of[i]), self.start[i])
                } else {
                    u64::MAX
                }
            })
            .collect();
        StateSignature(words.into_boxed_slice())
    }

    /// Enumerates the `(ready node, processor)` pairs the expansion operator
    /// should try, applying the node-equivalence, processor-isomorphism and
    /// priority-ordering rules according to `config`.
    pub fn expansion_candidates(
        &self,
        problem: &SchedulingProblem,
        config: &PruningConfig,
        stats: &mut SearchStats,
    ) -> Vec<(NodeId, ProcId)> {
        let mut ready = self.ready_nodes(problem);
        if config.priority_ordering {
            ready.sort_by_key(|&n| (Reverse(problem.priority(n)), n));
        }

        // Node equivalence: among ready nodes of the same equivalence class,
        // keep only the smallest id (Definition 3 guarantees the discarded
        // orderings lead to schedules of identical length).
        if config.node_equivalence {
            let mut kept: Vec<NodeId> = Vec::with_capacity(ready.len());
            for &n in &ready {
                let rep = problem.equivalence_representative(n);
                let duplicate = kept.iter().any(|&m| problem.equivalence_representative(m) == rep);
                if duplicate {
                    stats.pruned_node_equivalence += 1;
                } else {
                    kept.push(n);
                }
            }
            ready = kept;
        }

        // Processor isomorphism: among *empty*, mutually interchangeable
        // processors keep only the smallest id (Definition 2).
        let mut procs: Vec<ProcId> = Vec::with_capacity(problem.num_procs());
        if config.processor_isomorphism {
            let mut kept_empty_reps: Vec<ProcId> = Vec::new();
            for p in problem.network().proc_ids() {
                if self.proc_is_empty(p) && self.proc_ready[p.index()] == 0 {
                    let rep = problem.interchange_representative(p);
                    if kept_empty_reps.contains(&rep) {
                        stats.pruned_processor_isomorphism += 1;
                        continue;
                    }
                    kept_empty_reps.push(rep);
                }
                procs.push(p);
            }
        } else {
            procs.extend(problem.network().proc_ids());
        }

        let mut out = Vec::with_capacity(ready.len() * procs.len());
        for &n in &ready {
            for &p in &procs {
                out.push((n, p));
            }
        }
        out
    }

    /// Converts a goal state (or any partial state) into a [`Schedule`].
    pub fn to_schedule(&self, problem: &SchedulingProblem) -> Schedule {
        let mut s = Schedule::new(problem.num_nodes(), problem.num_procs());
        for n in problem.graph().node_ids() {
            if self.is_scheduled(n) {
                s.assign(
                    n,
                    ProcId(u32::from(self.proc_of[n.index()])),
                    self.start[n.index()],
                    self.finish[n.index()],
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn initial_state_matches_paper() {
        let prob = example_problem();
        let s = SearchState::initial(&prob);
        assert_eq!(s.f(), 0, "the paper sets f(initial) = 0");
        assert_eq!(s.depth(), 0);
        assert!(!s.is_goal(&prob));
        assert_eq!(s.ready_nodes(&prob), vec![NodeId(0)]);
        assert!(s.proc_is_empty(ProcId(0)));
    }

    /// The root expansion of Figure 3: scheduling n1 to PE0 gives f = 2 + 10.
    #[test]
    fn fig3_root_state_cost() {
        let prob = example_problem();
        let s0 = SearchState::initial(&prob);
        let s1 = s0.schedule_node(&prob, NodeId(0), ProcId(0), HeuristicKind::PaperStaticLevel);
        assert_eq!(s1.g(), 2);
        assert_eq!(s1.h(), 10);
        assert_eq!(s1.f(), 12);
        assert_eq!(s1.max_finish_node(), Some(NodeId(0)));
        assert_eq!(s1.proc_of(NodeId(0)), Some(ProcId(0)));
        assert_eq!(s1.finish_time(NodeId(0)), Some(2));
    }

    /// Level-2 states of Figure 3: n2→PE0 f=5+7, n2→PE1 f=6+7,
    /// n4→PE0 f=6+2, n4→PE1 f=8+2.
    #[test]
    fn fig3_second_level_costs() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let s1 = SearchState::initial(&prob).schedule_node(&prob, NodeId(0), ProcId(0), h);

        let n2_pe0 = s1.schedule_node(&prob, NodeId(1), ProcId(0), h);
        assert_eq!((n2_pe0.g(), n2_pe0.h()), (5, 7));

        let n2_pe1 = s1.schedule_node(&prob, NodeId(1), ProcId(1), h);
        assert_eq!((n2_pe1.g(), n2_pe1.h()), (6, 7));

        let n4_pe0 = s1.schedule_node(&prob, NodeId(3), ProcId(0), h);
        assert_eq!((n4_pe0.g(), n4_pe0.h()), (6, 2));

        let n4_pe1 = s1.schedule_node(&prob, NodeId(3), ProcId(1), h);
        assert_eq!((n4_pe1.g(), n4_pe1.h()), (8, 2));
    }

    #[test]
    fn ready_set_evolves_with_scheduling() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let s1 = SearchState::initial(&prob).schedule_node(&prob, NodeId(0), ProcId(0), h);
        assert_eq!(s1.ready_nodes(&prob), vec![NodeId(1), NodeId(2), NodeId(3)]);
        let s2 = s1.schedule_node(&prob, NodeId(1), ProcId(0), h);
        let s3 = s2.schedule_node(&prob, NodeId(2), ProcId(1), h);
        // n5 becomes ready only after both n2 and n3 are scheduled.
        assert!(s3.ready_nodes(&prob).contains(&NodeId(4)));
        assert!(!s2.ready_nodes(&prob).contains(&NodeId(4)));
    }

    #[test]
    fn expansion_candidates_with_all_pruning_at_root() {
        let prob = example_problem();
        let s0 = SearchState::initial(&prob);
        let mut stats = SearchStats::default();
        let cands = s0.expansion_candidates(&prob, &PruningConfig::all(), &mut stats);
        // Only n1 is ready and all three empty ring PEs are interchangeable:
        // exactly one state is generated, as in Figure 3.
        assert_eq!(cands, vec![(NodeId(0), ProcId(0))]);
        assert_eq!(stats.pruned_processor_isomorphism, 2);
    }

    #[test]
    fn expansion_candidates_without_pruning_at_root() {
        let prob = example_problem();
        let s0 = SearchState::initial(&prob);
        let mut stats = SearchStats::default();
        let cands = s0.expansion_candidates(&prob, &PruningConfig::none(), &mut stats);
        assert_eq!(cands.len(), 3); // n1 × {PE0, PE1, PE2}
        assert_eq!(stats.total_pruned(), 0);
    }

    /// Figure 3, second expansion: with pruning, only n2 and n4 are tried
    /// (n3 is equivalent to n2) on PE0 and PE1 (PE1/PE2 interchangeable),
    /// giving exactly four candidate states.
    #[test]
    fn fig3_second_expansion_candidates() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let s1 = SearchState::initial(&prob).schedule_node(&prob, NodeId(0), ProcId(0), h);
        let mut stats = SearchStats::default();
        let cands = s1.expansion_candidates(&prob, &PruningConfig::all(), &mut stats);
        assert_eq!(cands.len(), 4);
        let nodes: std::collections::BTreeSet<NodeId> = cands.iter().map(|&(n, _)| n).collect();
        assert_eq!(nodes.into_iter().collect::<Vec<_>>(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(stats.pruned_node_equivalence, 1); // n3 dropped
        assert!(stats.pruned_processor_isomorphism >= 1); // PE2 dropped
        // Priority ordering puts n2 (b+t = 19) before n4 (b+t = 14).
        assert_eq!(cands[0].0, NodeId(1));
    }

    #[test]
    fn goal_state_converts_to_valid_schedule() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut s = SearchState::initial(&prob);
        // Schedule everything on PE0 in topological id order.
        for n in prob.graph().node_ids() {
            s = s.schedule_node(&prob, n, ProcId(0), h);
        }
        assert!(s.is_goal(&prob));
        assert_eq!(s.h(), 0, "goal state has no remaining work");
        let schedule = s.to_schedule(&prob);
        schedule.validate(prob.graph(), prob.network()).unwrap();
        assert_eq!(schedule.makespan(), s.g());
        assert_eq!(schedule.makespan(), prob.graph().total_computation());
    }

    #[test]
    fn identical_partial_schedules_share_a_signature() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let s1 = SearchState::initial(&prob).schedule_node(&prob, NodeId(0), ProcId(0), h);
        // Schedule n2 then n4 on different PEs, and n4 then n2: same partial schedule.
        let a = s1
            .schedule_node(&prob, NodeId(1), ProcId(0), h)
            .schedule_node(&prob, NodeId(3), ProcId(1), h);
        let b = s1
            .schedule_node(&prob, NodeId(3), ProcId(1), h)
            .schedule_node(&prob, NodeId(1), ProcId(0), h);
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.f(), b.f());
        // A genuinely different placement has a different signature.
        let c = s1
            .schedule_node(&prob, NodeId(1), ProcId(1), h)
            .schedule_node(&prob, NodeId(3), ProcId(1), h);
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn tight_heuristic_dominates_paper_heuristic() {
        let prob = example_problem();
        let s1 = SearchState::initial(&prob).schedule_node(
            &prob,
            NodeId(0),
            ProcId(0),
            HeuristicKind::PaperStaticLevel,
        );
        let paper_h = s1.h();
        let tight =
            SearchState::initial(&prob).schedule_node(&prob, NodeId(0), ProcId(0), HeuristicKind::TightStaticLevel);
        assert!(tight.h() >= paper_h);
        let zero =
            SearchState::initial(&prob).schedule_node(&prob, NodeId(0), ProcId(0), HeuristicKind::Zero);
        assert_eq!(zero.h(), 0);
    }

    /// `peek_child` + `apply_delta` must agree with the materialised child on
    /// every observable (the expansion operator is now defined through them).
    #[test]
    fn peek_child_matches_materialised_child() {
        let prob = example_problem();
        for h in [HeuristicKind::PaperStaticLevel, HeuristicKind::TightStaticLevel, HeuristicKind::Zero] {
            let mut state = SearchState::initial(&prob);
            // Walk a fixed trace, checking every step.
            for (n, p) in [(0u32, 0u32), (1, 1), (3, 0), (2, 2), (4, 1)] {
                let (n, p) = (NodeId(n), ProcId(p));
                let delta = state.peek_child(&prob, n, p, h);
                let child = state.schedule_node(&prob, n, p, h);
                assert_eq!(delta.g, child.g(), "{h:?}");
                assert_eq!(delta.h, child.h(), "{h:?}");
                assert_eq!(delta.f(), child.f(), "{h:?}");
                assert_eq!(Some(delta.finish), child.finish_time(n));
                assert_eq!(child.signature(), state.signature().with_assignment(n, p, delta.start));
                let applied = state.apply_delta(&prob, &delta);
                assert_eq!(applied.signature(), child.signature());
                assert_eq!((applied.g(), applied.h()), (child.g(), child.h()));
                assert_eq!(applied.max_finish_node(), child.max_finish_node());
                state = child;
            }
        }
    }

    #[test]
    fn apply_delta_in_place_replays_a_trace() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let trace = [(0u32, 0u32), (1, 0), (2, 1), (3, 2), (4, 1), (5, 0)];
        // Eager chain of full states.
        let mut eager = vec![SearchState::initial(&prob)];
        let mut deltas = Vec::new();
        for &(n, p) in &trace {
            let last = eager.last().unwrap();
            deltas.push(last.peek_child(&prob, NodeId(n), ProcId(p), h));
            eager.push(last.schedule_node(&prob, NodeId(n), ProcId(p), h));
        }
        // Replay onto a reusable scratch state (the arena's materialisation path).
        let mut scratch = SearchState::initial(&prob);
        scratch.copy_from(&eager[0]);
        for (i, d) in deltas.iter().enumerate() {
            scratch.apply_delta_in_place(&prob, d);
            let want = &eager[i + 1];
            assert_eq!(scratch.signature(), want.signature());
            assert_eq!((scratch.g(), scratch.h(), scratch.depth()), (want.g(), want.h(), want.depth()));
            assert_eq!(scratch.ready_nodes(&prob), want.ready_nodes(&prob));
        }
        assert!(scratch.is_goal(&prob));
    }

    /// `to_delta_chain` + replay must reproduce every observable field of the
    /// decomposed state, whatever order the original schedule was built in —
    /// including equal-finish ties, where `max_finish_node` must survive.
    #[test]
    fn delta_chain_replay_reproduces_the_state() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        // Several generation orders, including partial and complete states.
        let traces: &[&[(u32, u32)]] = &[
            &[(0, 0)],
            &[(0, 0), (1, 1), (3, 0)],
            &[(0, 0), (3, 2), (1, 0), (2, 1)],
            &[(0, 0), (1, 0), (2, 1), (3, 2), (4, 1), (5, 0)],
            &[(0, 1), (2, 1), (1, 2), (3, 1), (4, 2), (5, 2)],
        ];
        for trace in traces {
            let mut state = SearchState::initial(&prob);
            for &(n, p) in *trace {
                state = state.schedule_node(&prob, NodeId(n), ProcId(p), h);
            }
            let chain = state.to_delta_chain();
            assert_eq!(chain.len(), trace.len());
            let mut replayed = SearchState::initial(&prob);
            for d in &chain {
                replayed.apply_delta_in_place(&prob, d);
            }
            assert_eq!(replayed.signature(), state.signature(), "{trace:?}");
            assert_eq!((replayed.g(), replayed.h()), (state.g(), state.h()), "{trace:?}");
            assert_eq!(replayed.depth(), state.depth(), "{trace:?}");
            assert_eq!(replayed.max_finish_node(), state.max_finish_node(), "{trace:?}");
            assert_eq!(replayed.ready_nodes(&prob), state.ready_nodes(&prob), "{trace:?}");
            for p in prob.network().proc_ids() {
                assert_eq!(replayed.proc_ready_time(p), state.proc_ready_time(p), "{trace:?}");
            }
            // The replayed state expands identically: same child deltas.
            for n in state.ready_nodes(&prob) {
                for p in prob.network().proc_ids() {
                    assert_eq!(
                        replayed.peek_child(&prob, n, p, h),
                        state.peek_child(&prob, n, p, h),
                        "{trace:?}"
                    );
                }
            }
        }
        assert!(SearchState::initial(&prob).to_delta_chain().is_empty());
    }

    #[test]
    fn copy_from_resets_a_dirty_state_without_alloc() {
        let prob = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let root = SearchState::initial(&prob);
        let mut dirty = root.schedule_node(&prob, NodeId(0), ProcId(1), h);
        dirty.copy_from(&root);
        assert_eq!(dirty.signature(), root.signature());
        assert_eq!(dirty.depth(), 0);
        assert_eq!(dirty.proc_ready_time(ProcId(1)), 0);
        assert_eq!(dirty.ready_nodes(&prob), root.ready_nodes(&prob));
    }

    #[test]
    fn heterogeneous_execution_time_in_expansion() {
        let prob = SchedulingProblem::new(
            paper_example_dag(),
            ProcNetwork::fully_connected(2).with_cycle_times(&[1, 2]),
        );
        let h = HeuristicKind::PaperStaticLevel;
        let s0 = SearchState::initial(&prob);
        let fast = s0.schedule_node(&prob, NodeId(0), ProcId(0), h);
        let slow = s0.schedule_node(&prob, NodeId(0), ProcId(1), h);
        assert_eq!(fast.finish_time(NodeId(0)), Some(2));
        assert_eq!(slow.finish_time(NodeId(0)), Some(4));
    }
}

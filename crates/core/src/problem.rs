//! The [`SchedulingProblem`]: a task graph, a processor network and the
//! precomputed attributes shared by every search algorithm.

use optsched_listsched::upper_bound_schedule;
use optsched_procnet::{ProcId, ProcNetwork};
use optsched_schedule::Schedule;
use optsched_taskgraph::{Cost, GraphLevels, NodeId, TaskGraph};

/// An instance of the static scheduling problem of Section 2: schedule every
/// node of `graph` onto `network` so that the schedule length is minimal and
/// all precedence constraints are met.
///
/// The struct also carries everything the searches precompute once per
/// instance: the level attributes, the node-equivalence representatives
/// (Definition 3), the interchangeability classes of the processors
/// (Definition 2) and the upper-bound schedule of the list heuristic.
#[derive(Debug, Clone)]
pub struct SchedulingProblem {
    graph: TaskGraph,
    network: ProcNetwork,
    levels: GraphLevels,
    /// For every node, the smallest node id it is equivalent to (itself if none).
    equivalence_rep: Vec<NodeId>,
    /// For every processor, the smallest processor id it is interchangeable with.
    interchange_rep: Vec<ProcId>,
    /// The list-heuristic schedule used as the upper bound `U`.
    upper_bound_schedule: Schedule,
}

impl SchedulingProblem {
    /// Builds a problem instance and performs all per-instance precomputation.
    pub fn new(graph: TaskGraph, network: ProcNetwork) -> SchedulingProblem {
        let levels = GraphLevels::compute(&graph);

        let mut equivalence_rep: Vec<NodeId> = graph.node_ids().collect();
        for class in graph.equivalence_classes() {
            let rep = class[0];
            for &n in &class {
                equivalence_rep[n.index()] = rep;
            }
        }

        let mut interchange_rep: Vec<ProcId> = network.proc_ids().collect();
        for class in network.interchangeability_classes() {
            let rep = class[0];
            for &p in &class {
                interchange_rep[p.index()] = rep;
            }
        }

        let ub = upper_bound_schedule(&graph, &network);
        SchedulingProblem {
            graph,
            network,
            levels,
            equivalence_rep,
            interchange_rep,
            upper_bound_schedule: ub,
        }
    }

    /// The task graph.
    #[inline]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The target processor network.
    #[inline]
    pub fn network(&self) -> &ProcNetwork {
        &self.network
    }

    /// The precomputed level attributes.
    #[inline]
    pub fn levels(&self) -> &GraphLevels {
        &self.levels
    }

    /// Number of task nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of target processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.network.num_procs()
    }

    /// The priority used to order ready nodes: b-level + t-level.
    #[inline]
    pub fn priority(&self, n: NodeId) -> Cost {
        self.levels.b_plus_t(n)
    }

    /// The smallest node id equivalent to `n` under Definition 3.
    #[inline]
    pub fn equivalence_representative(&self, n: NodeId) -> NodeId {
        self.equivalence_rep[n.index()]
    }

    /// The smallest processor id interchangeable with `p` under Definition 2(i).
    #[inline]
    pub fn interchange_representative(&self, p: ProcId) -> ProcId {
        self.interchange_rep[p.index()]
    }

    /// The schedule produced by the linear-time upper-bound heuristic.
    pub fn upper_bound_schedule(&self) -> &Schedule {
        &self.upper_bound_schedule
    }

    /// The upper bound `U` on the optimal schedule length.
    pub fn upper_bound(&self) -> Cost {
        self.upper_bound_schedule.makespan()
    }

    /// A simple lower bound on the optimal schedule length (the static
    /// critical path); used for sanity checks and progress reporting.
    pub fn lower_bound(&self) -> Cost {
        self.graph.schedule_length_lower_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    #[test]
    fn precomputations_on_the_example() {
        let p = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        assert_eq!(p.num_nodes(), 6);
        assert_eq!(p.num_procs(), 3);
        // n2 and n3 are equivalent; n3's representative is n2.
        assert_eq!(p.equivalence_representative(NodeId(2)), NodeId(1));
        assert_eq!(p.equivalence_representative(NodeId(1)), NodeId(1));
        assert_eq!(p.equivalence_representative(NodeId(0)), NodeId(0));
        // All three ring PEs are interchangeable.
        for pe in p.network().proc_ids() {
            assert_eq!(p.interchange_representative(pe), ProcId(0));
        }
        // Bounds bracket the optimum (14).
        assert!(p.lower_bound() <= 14);
        assert!(p.upper_bound() >= 14);
        assert_eq!(p.priority(NodeId(0)), 19);
        assert_eq!(p.priority(NodeId(3)), 14);
    }

    #[test]
    fn upper_bound_schedule_is_valid() {
        let p = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        p.upper_bound_schedule().validate(p.graph(), p.network()).unwrap();
        assert_eq!(p.upper_bound(), p.upper_bound_schedule().makespan());
    }

    #[test]
    fn star_network_representatives() {
        let p = SchedulingProblem::new(paper_example_dag(), ProcNetwork::star(4));
        assert_eq!(p.interchange_representative(ProcId(0)), ProcId(0));
        assert_eq!(p.interchange_representative(ProcId(2)), ProcId(1));
        assert_eq!(p.interchange_representative(ProcId(3)), ProcId(1));
    }
}

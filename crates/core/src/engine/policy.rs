//! Frontier policies: the per-algorithm part of the unified search engine.
//!
//! The [`run_search`](crate::engine::run_search) loop owns everything the
//! four serial scheduler families share — OPEN/CLOSED bookkeeping, duplicate
//! detection, limit enforcement, incumbent tracking, statistics.  What makes
//! A\*, Aε\*, Chen & Yu branch-and-bound and exhaustive enumeration different
//! algorithms is captured by the [`FrontierPolicy`] trait: how a generated
//! child is *evaluated* (and bound-pruned), and in which *order* frontier
//! states are selected for expansion.  Each policy below is a few dozen
//! lines; adding a new scheduler family means adding one more.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use optsched_taskgraph::Cost;

use crate::engine::arena::StateId;
use crate::problem::SchedulingProblem;
use crate::state::{ChildDelta, SearchState};
use crate::stats::SearchStats;

/// One OPEN-list entry: a stored state plus the costs the policies order by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenEntry {
    /// Arena id of the state.
    pub id: StateId,
    /// `f = g + h` of the state.
    pub f: Cost,
    /// `h` of the state.
    pub h: Cost,
    /// The policy's ordering value ([`FrontierPolicy::evaluate`]'s result):
    /// `f` for the A\* family, the path-matching bound for Chen & Yu, `g`
    /// for the exhaustive enumeration.
    pub value: Cost,
    /// Insertion sequence number (FIFO/LIFO tie-breaking).
    pub seq: u64,
}

/// The pluggable algorithm-specific half of the search engine.
pub trait FrontierPolicy {
    /// Evaluates a freshly generated child (described by `delta`, against its
    /// materialised `parent`).  Returns the child's ordering value, or `None`
    /// to discard it as bound-pruned (counted as
    /// [`SearchStats::pruned_upper_bound`]).
    fn evaluate(
        &mut self,
        problem: &SchedulingProblem,
        parent: &SearchState,
        delta: &ChildDelta,
        incumbent_len: Cost,
        stats: &mut SearchStats,
    ) -> Option<Cost>;

    /// Inserts a state into the frontier.
    fn push(&mut self, entry: OpenEntry);

    /// Removes and returns the next state to expand.
    fn pop(&mut self) -> Option<OpenEntry>;

    /// Current frontier size (may include lazily deleted entries).
    fn open_len(&self) -> usize;

    /// True when the first goal state *popped* from the frontier is provably
    /// final (best-first order with an admissible evaluation).  When false,
    /// popped goals only update the incumbent and the search continues until
    /// the frontier is exhausted (exhaustive enumeration).
    fn goal_on_pop_is_final(&self) -> bool {
        true
    }

    /// Whether goals discovered at *generation* time update the incumbent
    /// immediately (tightening the bound for the rest of the expansion).
    fn track_goals_at_generation(&self) -> bool {
        true
    }

    /// The incumbent length the bound-pruning rule starts from.
    fn initial_incumbent_len(&self, problem: &SchedulingProblem) -> Cost {
        problem.upper_bound()
    }
}

/// A binary min-heap of [`OpenEntry`]s keyed by `K` (smallest key pops first).
#[derive(Debug)]
struct MinHeap<K: Ord> {
    heap: BinaryHeap<Keyed<K>>,
}

#[derive(Debug)]
struct Keyed<K: Ord> {
    key: Reverse<K>,
    entry: OpenEntry,
}

impl<K: Ord> PartialEq for Keyed<K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<K: Ord> Eq for Keyed<K> {}
impl<K: Ord> PartialOrd for Keyed<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord> Ord for Keyed<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<K: Ord> MinHeap<K> {
    fn new() -> MinHeap<K> {
        MinHeap { heap: BinaryHeap::new() }
    }

    fn push(&mut self, key: K, entry: OpenEntry) {
        self.heap.push(Keyed { key: Reverse(key), entry });
    }

    fn pop(&mut self) -> Option<OpenEntry> {
        self.heap.pop().map(|k| k.entry)
    }

    fn peek(&self) -> Option<&OpenEntry> {
        self.heap.peek().map(|k| &k.entry)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// A\* (Section 3.1): best-first on `(f, h, FIFO)`, with the upper-bound
/// pruning rule of Section 3.2 when enabled.
#[derive(Debug)]
pub struct AStarPolicy {
    open: MinHeap<(Cost, Cost, u64)>,
    prune_upper_bound: bool,
}

impl AStarPolicy {
    /// An A\* frontier; `prune_upper_bound` enables the incumbent bound rule.
    pub fn new(prune_upper_bound: bool) -> AStarPolicy {
        AStarPolicy { open: MinHeap::new(), prune_upper_bound }
    }
}

impl FrontierPolicy for AStarPolicy {
    fn evaluate(
        &mut self,
        _problem: &SchedulingProblem,
        _parent: &SearchState,
        delta: &ChildDelta,
        incumbent_len: Cost,
        _stats: &mut SearchStats,
    ) -> Option<Cost> {
        let f = delta.f();
        (!self.prune_upper_bound || f <= incumbent_len).then_some(f)
    }

    fn push(&mut self, entry: OpenEntry) {
        self.open.push((entry.value, entry.h, entry.seq), entry);
    }

    fn pop(&mut self) -> Option<OpenEntry> {
        self.open.pop()
    }

    fn open_len(&self) -> usize {
        self.open.len()
    }
}

/// Weighted A\* (the classic anytime/bounded-suboptimal variant): best-first
/// on `g + w · h` for a weight `w ≥ 1`, which inflates the heuristic to reach
/// goals sooner at the price of a `w`-bounded deviation from the optimum.
///
/// Everything *except* the ordering stays admissible: the upper-bound rule
/// still prunes on the uninflated `f = g + h`, so the weight never discards a
/// state a weight-1 search would keep — it only visits promising-looking
/// deep states earlier.  That makes the policy ideal under a wall-clock
/// deadline: an interrupted run's incumbent is much more likely to be a real
/// improvement over the list schedule.  At `w = 1` the ordering key
/// `(g + h, h, FIFO)` coincides with [`AStarPolicy`]'s and the search is
/// *bit-identical* to A\* (pinned by the conformance suite).
#[derive(Debug)]
pub struct WeightedAStarPolicy {
    open: MinHeap<(Cost, Cost, u64)>,
    weight: f64,
    prune_upper_bound: bool,
}

impl WeightedAStarPolicy {
    /// A weighted-A\* frontier with the given heuristic weight (`>= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is below 1 or not finite.
    pub fn new(weight: f64, prune_upper_bound: bool) -> WeightedAStarPolicy {
        assert!(weight.is_finite() && weight >= 1.0, "weight must be a finite number >= 1");
        WeightedAStarPolicy { open: MinHeap::new(), weight, prune_upper_bound }
    }

    /// The inflated ordering key `g + round(w · h)`.
    fn inflated(&self, g: Cost, h: Cost) -> Cost {
        g + (self.weight * h as f64).round() as Cost
    }
}

impl FrontierPolicy for WeightedAStarPolicy {
    fn evaluate(
        &mut self,
        _problem: &SchedulingProblem,
        _parent: &SearchState,
        delta: &ChildDelta,
        incumbent_len: Cost,
        _stats: &mut SearchStats,
    ) -> Option<Cost> {
        // Prune on the *uninflated* admissible f so the weight cannot cut an
        // optimal path; order by the inflated value.
        let f = delta.f();
        (!self.prune_upper_bound || f <= incumbent_len)
            .then(|| self.inflated(delta.g, delta.h))
    }

    fn push(&mut self, entry: OpenEntry) {
        self.open.push((entry.value, entry.h, entry.seq), entry);
    }

    fn pop(&mut self) -> Option<OpenEntry> {
        self.open.pop()
    }

    fn open_len(&self) -> usize {
        self.open.len()
    }
}

/// Largest cost admitted into FOCAL when the smallest OPEN cost is `fmin`.
pub fn focal_threshold(epsilon: f64, fmin: Cost) -> Cost {
    ((fmin as f64) * (1.0 + epsilon)).floor() as Cost
}

/// Sentinel for "no live OPEN entry under this id" in [`FocalPolicy`]'s
/// lazy-deletion table.
const NO_OPEN_SEQ: u64 = u64::MAX;

/// Aε\* (Section 3.4, Pearl & Kim): keeps two lazily synchronised orderings
/// of OPEN — by `f` (for `fmin` and the fallback) and by `(h, f)` — and
/// expands the smallest-`h` state whose `f` is within `(1 + ε) · fmin`
/// (FOCAL), falling back to the smallest-`f` state.
#[derive(Debug)]
pub struct FocalPolicy {
    epsilon: f64,
    prune_upper_bound: bool,
    open_f: MinHeap<(Cost, u64)>,
    open_h: MinHeap<(Cost, Cost, u64)>,
    /// Lazy-deletion marker: the `seq` of the live OPEN entry per state id
    /// ([`NO_OPEN_SEQ`] when the id is closed).  Keyed on `seq` rather than
    /// a boolean because the arena reuses reclaimed ids — a stale twin entry
    /// for a freed-and-reused id must not be mistaken for the new state.
    in_open: Vec<u64>,
}

impl FocalPolicy {
    /// An Aε\* frontier with approximation factor `epsilon`.
    pub fn new(epsilon: f64, prune_upper_bound: bool) -> FocalPolicy {
        FocalPolicy {
            epsilon,
            prune_upper_bound,
            open_f: MinHeap::new(),
            open_h: MinHeap::new(),
            in_open: Vec::new(),
        }
    }

    fn is_open(&self, entry: &OpenEntry) -> bool {
        self.in_open.get(entry.id as usize).copied() == Some(entry.seq)
    }

    fn mark(&mut self, id: StateId, seq: u64) {
        let i = id as usize;
        if i >= self.in_open.len() {
            self.in_open.resize(i + 1, NO_OPEN_SEQ);
        }
        self.in_open[i] = seq;
    }
}

impl FrontierPolicy for FocalPolicy {
    fn evaluate(
        &mut self,
        _problem: &SchedulingProblem,
        _parent: &SearchState,
        delta: &ChildDelta,
        incumbent_len: Cost,
        _stats: &mut SearchStats,
    ) -> Option<Cost> {
        let f = delta.f();
        (!self.prune_upper_bound || f <= incumbent_len).then_some(f)
    }

    fn push(&mut self, entry: OpenEntry) {
        self.mark(entry.id, entry.seq);
        self.open_f.push((entry.f, entry.seq), entry);
        self.open_h.push((entry.h, entry.f, entry.seq), entry);
    }

    fn pop(&mut self) -> Option<OpenEntry> {
        // Clean stale entries from the f-ordered heap and read fmin.
        let fmin = loop {
            match self.open_f.peek() {
                None => return None,
                Some(e) if self.is_open(e) => break e.f,
                Some(_) => {
                    self.open_f.pop();
                }
            }
        };
        let threshold = focal_threshold(self.epsilon, fmin);

        // Prefer the smallest-h state within FOCAL; fall back to the
        // smallest-f state (which is trivially in FOCAL).
        let mut chosen: Option<OpenEntry> = None;
        while let Some(e) = self.open_h.peek() {
            if !self.is_open(e) {
                self.open_h.pop();
                continue;
            }
            if e.f <= threshold {
                chosen = self.open_h.pop();
            }
            break;
        }
        let entry = match chosen {
            Some(e) => e,
            None => self.open_f.pop().expect("fmin was just observed"),
        };
        self.mark(entry.id, NO_OPEN_SEQ);
        Some(entry)
    }

    fn open_len(&self) -> usize {
        self.open_f.len()
    }
}

/// Branch-and-bound with an expensive underestimate (Chen & Yu): best-first
/// on the bound computed by the supplied evaluator — for the paper's
/// baseline, explicit execution-path enumeration matched against the
/// processor graph.  Elimination is against incumbents found by the search
/// itself (no external upper bound), hence the infinite initial incumbent.
#[derive(Debug)]
pub struct BoundPolicy<F> {
    open: MinHeap<(Cost, u64)>,
    bound: F,
}

impl<F> BoundPolicy<F>
where
    F: FnMut(&SchedulingProblem, &SearchState, &ChildDelta, &mut SearchStats) -> Cost,
{
    /// A branch-and-bound frontier ordered by `bound`'s result.
    pub fn new(bound: F) -> BoundPolicy<F> {
        BoundPolicy { open: MinHeap::new(), bound }
    }
}

impl<F> FrontierPolicy for BoundPolicy<F>
where
    F: FnMut(&SchedulingProblem, &SearchState, &ChildDelta, &mut SearchStats) -> Cost,
{
    fn evaluate(
        &mut self,
        problem: &SchedulingProblem,
        parent: &SearchState,
        delta: &ChildDelta,
        incumbent_len: Cost,
        stats: &mut SearchStats,
    ) -> Option<Cost> {
        let bound = (self.bound)(problem, parent, delta, stats);
        (bound <= incumbent_len).then_some(bound)
    }

    fn push(&mut self, entry: OpenEntry) {
        self.open.push((entry.value, entry.seq), entry);
    }

    fn pop(&mut self) -> Option<OpenEntry> {
        self.open.pop()
    }

    fn open_len(&self) -> usize {
        self.open.len()
    }

    fn initial_incumbent_len(&self, _problem: &SchedulingProblem) -> Cost {
        Cost::MAX
    }
}

/// Exhaustive depth-first enumeration: LIFO order, prune only against the
/// best complete schedule found so far (exact because `g` never decreases
/// along a path).  Goals never terminate the search — exhausting the
/// frontier is the optimality proof.
#[derive(Debug, Default)]
pub struct DfsPolicy {
    stack: Vec<OpenEntry>,
}

impl DfsPolicy {
    /// An empty depth-first frontier.
    pub fn new() -> DfsPolicy {
        DfsPolicy::default()
    }
}

impl FrontierPolicy for DfsPolicy {
    fn evaluate(
        &mut self,
        problem: &SchedulingProblem,
        parent: &SearchState,
        delta: &ChildDelta,
        incumbent_len: Cost,
        _stats: &mut SearchStats,
    ) -> Option<Cost> {
        let is_goal = usize::from(parent.depth()) + 1 == problem.num_nodes();
        if delta.g > incumbent_len || (is_goal && delta.g >= incumbent_len) {
            return None;
        }
        Some(delta.g)
    }

    fn push(&mut self, entry: OpenEntry) {
        self.stack.push(entry);
    }

    fn pop(&mut self) -> Option<OpenEntry> {
        self.stack.pop()
    }

    fn open_len(&self) -> usize {
        self.stack.len()
    }

    fn goal_on_pop_is_final(&self) -> bool {
        false
    }

    fn track_goals_at_generation(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: StateId, f: Cost, h: Cost, seq: u64) -> OpenEntry {
        OpenEntry { id, f, h, value: f, seq }
    }

    #[test]
    fn astar_policy_orders_by_f_then_h_then_fifo() {
        let mut p = AStarPolicy::new(true);
        p.push(entry(0, 5, 3, 0));
        p.push(entry(1, 4, 9, 1));
        p.push(entry(2, 4, 2, 2));
        p.push(entry(3, 4, 2, 3));
        assert_eq!(p.open_len(), 4);
        let order: Vec<StateId> = std::iter::from_fn(|| p.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn weighted_policy_at_one_orders_like_astar() {
        let mut w = WeightedAStarPolicy::new(1.0, true);
        let mut a = AStarPolicy::new(true);
        for e in [entry(0, 5, 3, 0), entry(1, 4, 9, 1), entry(2, 4, 2, 2)] {
            w.push(e);
            a.push(e);
        }
        let worder: Vec<StateId> = std::iter::from_fn(|| w.pop()).map(|e| e.id).collect();
        let aorder: Vec<StateId> = std::iter::from_fn(|| a.pop()).map(|e| e.id).collect();
        assert_eq!(worder, aorder);
    }

    #[test]
    fn weighted_policy_inflates_only_the_ordering() {
        let mut p = WeightedAStarPolicy::new(2.0, true);
        assert_eq!(p.inflated(4, 3), 10);
        // value = g + 2h: a deep state (small h) overtakes a shallow one with
        // equal f.
        p.push(OpenEntry { id: 0, f: 10, h: 8, value: 2 + 16, seq: 0 });
        p.push(OpenEntry { id: 1, f: 10, h: 1, value: 9 + 2, seq: 1 });
        assert_eq!(p.pop().unwrap().id, 1);
        assert_eq!(p.pop().unwrap().id, 0);
    }

    #[test]
    #[should_panic(expected = "weight must be")]
    fn weighted_policy_rejects_weights_below_one() {
        let _ = WeightedAStarPolicy::new(0.5, true);
    }

    #[test]
    fn focal_threshold_rounds_down() {
        assert_eq!(focal_threshold(0.2, 10), 12);
        assert_eq!(focal_threshold(0.2, 14), 16); // 16.8 -> 16
        assert_eq!(focal_threshold(0.0, 7), 7);
    }

    #[test]
    fn focal_policy_prefers_small_h_within_the_bound() {
        let mut p = FocalPolicy::new(0.5, true);
        p.push(entry(0, 10, 9, 0)); // fmin, large h
        p.push(entry(1, 14, 1, 1)); // inside FOCAL (14 <= 15), smallest h
        p.push(entry(2, 16, 5, 2)); // outside FOCAL
        assert_eq!(p.pop().unwrap().id, 1);
        // Now the h-ordered top is entry 2 (h = 5) but its f is above
        // floor(10 * 1.5) = 15: the policy only inspects the top of the
        // h-ordered heap, so it falls back to the smallest-f state (id 0).
        assert_eq!(p.pop().unwrap().id, 0);
        assert_eq!(p.pop().unwrap().id, 2);
        assert!(p.pop().is_none());
    }

    #[test]
    fn focal_policy_at_zero_epsilon_is_astar_like_on_f() {
        let mut p = FocalPolicy::new(0.0, true);
        p.push(entry(0, 5, 5, 0));
        p.push(entry(1, 5, 1, 1));
        p.push(entry(2, 7, 0, 2));
        // FOCAL = { f == 5 }: the h-ordered top is id 2 (h = 0) but f = 7 > 5,
        // so the fallback pops the smallest-f entry (id 0, FIFO before 1).
        assert_eq!(p.pop().unwrap().id, 0);
        assert_eq!(p.pop().unwrap().id, 1);
        assert_eq!(p.pop().unwrap().id, 2);
    }

    #[test]
    fn dfs_policy_is_lifo_and_goals_do_not_finalise() {
        let mut p = DfsPolicy::new();
        p.push(entry(0, 1, 0, 0));
        p.push(entry(1, 2, 0, 1));
        assert!(!p.goal_on_pop_is_final());
        assert!(!p.track_goals_at_generation());
        assert_eq!(p.pop().unwrap().id, 1);
        assert_eq!(p.pop().unwrap().id, 0);
    }
}

//! The unified best-first search engine.
//!
//! Every scheduler family in this workspace — serial A\*, Aε\*, the Chen & Yu
//! branch-and-bound baseline, exhaustive enumeration, and each PPE of the
//! parallel scheduler — is one state-space search over partial schedules.
//! This module implements that search **once**:
//!
//! * [`run_search`] is the single OPEN/CLOSED run loop: frontier selection,
//!   duplicate detection, [`SearchLimits`] enforcement, incumbent /
//!   upper-bound handling and [`SearchStats`] accounting.  What
//!   differentiates the algorithms — child evaluation, bound pruning and
//!   expansion order — lives behind the [`FrontierPolicy`] trait
//!   ([`policy`]): `AStarScheduler`, `AEpsScheduler`, `ChenYuScheduler` and
//!   `ExhaustiveScheduler` are thin configurations over it.
//! * [`StateArena`] ([`arena`]) stores generated states as parent-id +
//!   [`ChildDelta`](crate::state::ChildDelta) records and materialises a full
//!   [`SearchState`] only when a state is selected for expansion, replacing
//!   the clone-per-generation layout (still available as
//!   [`StoreKind::EagerClone`] for the before/after measurement).  The arena
//!   is not tied to [`run_search`]: the parallel scheduler's PPE workers each
//!   own one, using [`StateArena::materialise_owned`] to materialise states
//!   on *send* (load sharing / best-state election) and [`StateArena::adopt`]
//!   to re-root received full states as delta chains on the receiving side.
//! * [`expand_state`] is the shared per-child admission pipeline
//!   (evaluate → bound-prune → duplicate-check), parameterised by the
//!   [`DuplicateFilter`] hook; the parallel scheduler's PPE workers drive the
//!   same pipeline with their sharded global CLOSED table behind the hook.

pub mod arena;
pub mod policy;

use std::cell::Cell;
use std::collections::HashSet;
use std::time::Instant;

use optsched_obs as obs;
use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::problem::SchedulingProblem;
use crate::state::{ChildDelta, SearchState, StateSignature};
use crate::stats::{SearchOutcome, SearchResult, SearchStats};

pub use arena::{ArenaConfig, StateArena, StateId, StoreKind};
pub use policy::{
    focal_threshold, AStarPolicy, BoundPolicy, DfsPolicy, FocalPolicy, FrontierPolicy, OpenEntry,
    WeightedAStarPolicy,
};

/// The engine's duplicate-detection hook.
///
/// The serial engine uses [`SignatureSet`]; the parallel scheduler plugs its
/// sharded global CLOSED table (or the paper's per-PPE private sets) in
/// behind this trait, preserving its claim-ownership semantics.
pub trait DuplicateFilter {
    /// Decides whether the state identified by `sig` (with path cost `g`)
    /// is new.  Returns `false` — after updating the duplicate counters in
    /// `stats` — when an identical partial schedule was already seen.
    fn admit(&mut self, sig: StateSignature, g: Cost, stats: &mut SearchStats) -> bool;
}

/// The serial CLOSED ∪ OPEN seen-set: a plain hash set of state signatures.
#[derive(Debug, Default)]
pub struct SignatureSet {
    seen: HashSet<StateSignature>,
}

impl SignatureSet {
    /// An empty set.
    pub fn new() -> SignatureSet {
        SignatureSet::default()
    }

    /// Number of distinct signatures seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if no signature has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl DuplicateFilter for SignatureSet {
    fn admit(&mut self, sig: StateSignature, _g: Cost, stats: &mut SearchStats) -> bool {
        if self.seen.insert(sig) {
            true
        } else {
            stats.duplicates += 1;
            false
        }
    }
}

/// The instance-wide inputs of an expansion step, shared by every child the
/// step generates.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionContext<'a> {
    /// The problem being solved.
    pub problem: &'a SchedulingProblem,
    /// The Section 3.2 pruning techniques in force.
    pub pruning: &'a PruningConfig,
    /// The admissible heuristic evaluated for every child.
    pub heuristic: HeuristicKind,
}

/// The shared per-child admission pipeline: enumerates the expansion
/// candidates of `state`, evaluates each child allocation-free via
/// [`SearchState::peek_child`], applies `evaluate`'s bound pruning (a `None`
/// is counted as [`SearchStats::pruned_upper_bound`]), rejects duplicates
/// through the [`DuplicateFilter`] hook, and hands every surviving child to
/// `admit`.
///
/// Both the serial [`run_search`] loop and the parallel scheduler's PPE
/// workers generate children exclusively through this function.
pub fn expand_state<D: DuplicateFilter>(
    ctx: ExpansionContext<'_>,
    state: &SearchState,
    dup: &mut D,
    stats: &mut SearchStats,
    mut evaluate: impl FnMut(&SearchState, &ChildDelta, &mut SearchStats) -> Option<Cost>,
    mut admit: impl FnMut(&SearchState, ChildDelta, Cost, &mut SearchStats),
) {
    let candidates = state.expansion_candidates(ctx.problem, ctx.pruning, stats);
    if candidates.is_empty() {
        return;
    }
    let parent_sig = state.signature();
    for (node, proc) in candidates {
        let delta = state.peek_child(ctx.problem, node, proc, ctx.heuristic);
        stats.heuristic_evaluations += 1;
        let Some(value) = evaluate(state, &delta, stats) else {
            stats.pruned_upper_bound += 1;
            continue;
        };
        let sig = parent_sig.with_assignment(delta.node, delta.proc, delta.start);
        if !dup.admit(sig, delta.g, stats) {
            continue;
        }
        admit(state, delta, value, stats);
    }
}

/// Expansions between wall-clock reads when enforcing
/// [`SearchLimits::max_millis`].  Reading the clock is a syscall; paying it
/// on every expansion measurably slows deadline runs whose per-expansion
/// work is cheap.  A cadence of 1024 expansions costs single-digit
/// milliseconds of overshoot at worst — noise against any budget that is
/// itself larger than [`TIME_CHECK_ALWAYS_BELOW_MS`].
const TIME_CHECK_CADENCE: u64 = 1024;

/// Budgets at or below this many milliseconds check the clock on *every*
/// expansion: one cadence stretch could overshoot such a budget by a
/// meaningful fraction (a 0 ms deadline must still stop on the first
/// expansion, the anytime contract the service relies on).
const TIME_CHECK_ALWAYS_BELOW_MS: u64 = 16;

/// Runs a complete search over `problem` under the given frontier policy.
///
/// This is the only OPEN/CLOSED run loop in the workspace's serial
/// schedulers: the state with the policy's best value is removed from the
/// frontier; a goal either proves optimality or updates the incumbent
/// (depending on the policy); otherwise the state is expanded through
/// [`expand_state`] and the surviving children are stored in the
/// [`StateArena`] and pushed back to the policy.
///
/// With `seed_incumbent` the list-heuristic schedule is treated as an
/// *attained* incumbent from the first expansion on: the length the policy's
/// bound pruning starts from is capped at [`SchedulingProblem::upper_bound`]
/// (the big win for branch-and-bound, whose own initial bound is infinite),
/// and the bound handed to [`FrontierPolicy::evaluate`] is tightened by one
/// so children that cannot *strictly* improve on a schedule the search
/// already holds are discarded.  Exhausting the frontier then *is* the
/// optimality proof for the incumbent (the evaluation is admissible and only
/// provably non-improving states were pruned), so such a run reports
/// [`SearchOutcome::Optimal`] instead of `Exhausted`.  The tightened bound
/// requires the policy to treat the passed incumbent length as an inclusive
/// upper bound (`value > bound` ⇒ prune), which holds for every best-first
/// policy here but *not* for [`DfsPolicy`]'s special goal handling — the
/// exhaustive enumerator therefore never sets this flag (it effectively
/// seeds already).  Off by default: with `false` the behaviour is
/// bit-identical to the pre-knob engine.
///
/// `warm_start` optionally hands the search a complete schedule attained by
/// an earlier run (a cache near-match, a raced anytime leg).  It is adopted
/// as the starting incumbent only when it beats the incumbent the search
/// would otherwise start from, so `None` — and any warm schedule that is no
/// better — leaves the run bit-identical to the unwarmed one.  The caller
/// must guarantee the schedule is feasible **for this problem**; the engine
/// trusts it the same way it trusts the list schedule.
#[allow(clippy::too_many_arguments)]
pub fn run_search<P: FrontierPolicy>(
    problem: &SchedulingProblem,
    mut policy: P,
    pruning: PruningConfig,
    heuristic: HeuristicKind,
    limits: SearchLimits,
    store: ArenaConfig,
    seed_incumbent: bool,
    warm_start: Option<&Schedule>,
) -> SearchResult {
    let start_time = Instant::now();
    // Observability: one timeline track per run, a span covering the whole
    // search, instants on every incumbent improvement and on the existing
    // 1/1024 expansion cadence.  All of it is behind `obs::enabled()` — the
    // disabled cost per site is a single relaxed atomic load.
    let obs_track = if obs::enabled() { obs::next_track() } else { 0 };
    let _obs_span = obs::span("run_search", obs_track);
    let mut stats = SearchStats::default();
    let mut arena = StateArena::new(problem, store);
    let mut dup = SignatureSet::new();
    let mut seq: u64 = 0;

    // Incumbent: best complete schedule known so far.  The schedule starts
    // as the list-heuristic schedule so a limit-bounded run always returns a
    // feasible result; the *length* the bound pruning starts from is the
    // policy's choice (the list upper bound for the A* family, infinite for
    // branch-and-bound elimination without an external bound) unless the
    // seeded mode caps it at the list upper bound, which that schedule
    // attains.
    let mut incumbent: Schedule = problem.upper_bound_schedule().clone();
    let mut initial_len = if seed_incumbent {
        policy.initial_incumbent_len(problem).min(problem.upper_bound())
    } else {
        policy.initial_incumbent_len(problem)
    };
    if let Some(warm) = warm_start {
        let warm_len = warm.makespan();
        if warm_len < initial_len {
            incumbent = warm.clone();
            initial_len = warm_len;
        }
    }
    let incumbent_len = Cell::new(initial_len);
    // The bound handed to the policy: inclusive of the incumbent length
    // normally, strictly below it when the incumbent is known to be attained.
    let prune_bound =
        |len: Cost| if seed_incumbent { len.saturating_sub(1) } else { len };

    let goal_is_final = policy.goal_on_pop_is_final();
    let track_goals = policy.track_goals_at_generation();
    let goal_depth = problem.num_nodes() as u16;

    let root_id = arena.insert_root(SearchState::initial(problem));
    policy.push(OpenEntry { id: root_id, f: 0, h: 0, value: 0, seq });
    stats.generated += 1;

    let mut kept: Vec<(ChildDelta, Cost)> = Vec::new();
    let outcome = loop {
        let Some(entry) = policy.pop() else {
            break SearchOutcome::Exhausted;
        };
        stats.max_open_size = stats.max_open_size.max(policy.open_len() + 1);

        kept.clear();
        {
            let state = arena.materialise(entry.id);

            // Goal test at expansion time: under a best-first policy the
            // first goal removed from OPEN is optimal; under an enumerating
            // policy it only updates the incumbent (and, with `kept` empty,
            // falls through to the handle release below).
            if state.is_goal(problem) {
                if goal_is_final {
                    incumbent = state.to_schedule(problem);
                    obs::instant("incumbent", obs_track, "makespan", state.g());
                    break SearchOutcome::Optimal;
                }
                if state.g() < incumbent_len.get() {
                    incumbent_len.set(state.g());
                    incumbent = state.to_schedule(problem);
                    obs::instant("incumbent", obs_track, "makespan", state.g());
                }
            } else {
                // Limits.
                if let Some(max_exp) = limits.max_expansions {
                    if stats.expanded >= max_exp {
                        break SearchOutcome::LimitReached;
                    }
                }
                if let Some(max_gen) = limits.max_generated {
                    if stats.generated >= max_gen {
                        break SearchOutcome::LimitReached;
                    }
                }
                if let Some(ms) = limits.max_millis {
                    // The clock is read on a cadence, not per expansion: the
                    // first pop (expanded == 0) always checks, so a 0 ms
                    // budget still stops before any work, and tiny budgets
                    // keep the per-expansion check.
                    let check_now = ms <= TIME_CHECK_ALWAYS_BELOW_MS
                        || stats.expanded % TIME_CHECK_CADENCE == 0;
                    if check_now && start_time.elapsed().as_millis() as u64 >= ms {
                        break SearchOutcome::LimitReached;
                    }
                }
                if let Some(target) = limits.target_cost {
                    if incumbent_len.get() <= target {
                        break SearchOutcome::TargetReached;
                    }
                }

                stats.expanded += 1;
                if obs::enabled() && stats.expanded % TIME_CHECK_CADENCE == 0 {
                    obs::instant("expansion_rate", obs_track, "expanded", stats.expanded);
                }
                expand_state(
                    ExpansionContext { problem, pruning: &pruning, heuristic },
                    state,
                    &mut dup,
                    &mut stats,
                    |parent, delta, stats| {
                        policy.evaluate(
                            problem,
                            parent,
                            delta,
                            prune_bound(incumbent_len.get()),
                            stats,
                        )
                    },
                    |parent, delta, value, _stats| {
                        // Track incumbents discovered at generation time so the
                        // bound tightens within this expansion and a
                        // limit-bounded run still returns its best schedule.
                        if track_goals
                            && parent.depth() + 1 == goal_depth
                            && delta.g < incumbent_len.get()
                        {
                            incumbent_len.set(delta.g);
                            incumbent = parent.apply_delta(problem, &delta).to_schedule(problem);
                            obs::instant("incumbent", obs_track, "makespan", delta.g);
                        }
                        kept.push((delta, value));
                    },
                );
            }
        }

        for &(delta, value) in &kept {
            seq += 1;
            let id = arena.insert_child(entry.id, &delta);
            policy.push(OpenEntry { id, f: delta.f(), h: delta.h, value, seq });
            stats.generated += 1;
        }
        // The popped state is dead to the frontier: its kept children (if
        // any) hold it alive through their parent links; pruned-out or
        // childless states are reclaimed here, cascading up their dead
        // chains.
        arena.release(entry.id);
    };

    // A seeded search that exhausted its frontier has *proved* that nothing
    // strictly better than the incumbent exists: report the proof.
    let outcome = if seed_incumbent && outcome == SearchOutcome::Exhausted {
        SearchOutcome::Optimal
    } else {
        outcome
    };

    stats.peak_live_states = arena.peak_live_full() as u64;
    stats.peak_live_records = arena.peak_live_records() as u64;
    stats.reclaimed_records = arena.reclaimed_records();
    stats.materialisations = arena.materialisations();
    stats.path_cache_hits = arena.path_cache_hits();
    stats.path_cache_ancestor_hits = arena.path_cache_ancestor_hits();
    stats.replayed_deltas = arena.replayed_deltas();
    stats.replayed_deltas_saved = arena.replayed_deltas_saved();
    SearchResult {
        schedule_length: incumbent.makespan(),
        schedule: Some(incumbent),
        outcome,
        stats,
        elapsed: start_time.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn signature_set_counts_duplicates() {
        let problem = example_problem();
        let mut stats = SearchStats::default();
        let mut set = SignatureSet::new();
        assert!(set.is_empty());
        let sig = SearchState::initial(&problem).signature();
        assert!(set.admit(sig.clone(), 0, &mut stats));
        assert!(!set.admit(sig, 0, &mut stats));
        assert_eq!(set.len(), 1);
        assert_eq!(stats.duplicates, 1);
    }

    /// Both store layouts drive the identical search: same optimum, same
    /// counters; only the peak number of live full states differs.
    #[test]
    fn store_layouts_produce_identical_searches() {
        let problem = example_problem();
        let run = |store: StoreKind| {
            run_search(
                &problem,
                AStarPolicy::new(true),
                PruningConfig::all(),
                HeuristicKind::PaperStaticLevel,
                SearchLimits::unlimited(),
                store.into(),
                false,
                None,
            )
        };
        let eager = run(StoreKind::EagerClone);
        let arena = run(StoreKind::DeltaArena);
        assert_eq!(eager.schedule_length, 14);
        assert_eq!(arena.schedule_length, 14);
        assert_eq!(eager.stats.expanded, arena.stats.expanded);
        assert_eq!(eager.stats.generated, arena.stats.generated);
        assert_eq!(eager.stats.duplicates, arena.stats.duplicates);
        assert!(
            arena.stats.peak_live_states < eager.stats.peak_live_states,
            "arena {} vs eager {}",
            arena.stats.peak_live_states,
            eager.stats.peak_live_states
        );
    }

    #[test]
    fn dfs_policy_enumerates_to_the_optimum() {
        let problem = example_problem();
        let r = run_search(
            &problem,
            DfsPolicy::new(),
            PruningConfig::none(),
            HeuristicKind::Zero,
            SearchLimits::unlimited(),
            ArenaConfig::default(),
            false,
            None,
        );
        assert_eq!(r.outcome, SearchOutcome::Exhausted);
        assert_eq!(r.schedule_length, 14);
    }

    /// Reclamation and the path-cache are pure storage knobs: switching them
    /// off must not move a single counter of the search itself, while the
    /// default (on) run visibly reclaims records and bounds the live set.
    #[test]
    fn gc_and_path_cache_knobs_never_change_the_search() {
        let problem = example_problem();
        let run = |cfg: ArenaConfig| {
            run_search(
                &problem,
                AStarPolicy::new(true),
                PruningConfig::all(),
                HeuristicKind::PaperStaticLevel,
                SearchLimits::unlimited(),
                cfg,
                false,
                None,
            )
        };
        let on = run(ArenaConfig::default());
        let off = run(ArenaConfig::default().with_gc(false).with_path_cache(0));
        assert_eq!(on.schedule_length, off.schedule_length);
        assert_eq!(
            (on.stats.expanded, on.stats.generated, on.stats.duplicates),
            (off.stats.expanded, off.stats.generated, off.stats.duplicates),
            "storage lifecycle knobs leaked into search behaviour"
        );
        assert!(on.stats.reclaimed_records > 0, "default run reclaims dead chains");
        assert_eq!(off.stats.reclaimed_records, 0, "gc off is append-only");
        assert!(
            on.stats.peak_live_records <= off.stats.peak_live_records,
            "reclamation must not grow the live set: {} vs {}",
            on.stats.peak_live_records,
            off.stats.peak_live_records
        );
        assert!(
            on.stats.peak_live_records < on.stats.generated,
            "live records stay below the total ever generated"
        );
        assert_eq!(off.stats.path_cache_hits, 0, "cache disabled");
        assert!(
            on.stats.replayed_deltas <= off.stats.replayed_deltas,
            "the path-cache must not lengthen replays"
        );
    }

    /// The seeded mode prunes against the attained list incumbent (strictly)
    /// yet stays exact, and reports `Optimal` even when the proof comes from
    /// frontier exhaustion rather than a popped goal.
    #[test]
    fn seeded_incumbent_stays_exact_and_never_expands_more() {
        let problem = example_problem();
        let run = |seed| {
            run_search(
                &problem,
                AStarPolicy::new(true),
                PruningConfig::all(),
                HeuristicKind::PaperStaticLevel,
                SearchLimits::unlimited(),
                ArenaConfig::default(),
                seed,
                None,
            )
        };
        let plain = run(false);
        let seeded = run(true);
        assert_eq!(plain.schedule_length, 14);
        assert_eq!(seeded.schedule_length, 14);
        assert_eq!(seeded.outcome, SearchOutcome::Optimal);
        assert!(
            seeded.stats.expanded <= plain.stats.expanded,
            "seeded {} vs plain {}",
            seeded.stats.expanded,
            plain.stats.expanded
        );
        seeded
            .expect_schedule()
            .validate(problem.graph(), problem.network())
            .unwrap();
    }

    /// A warm-start schedule only ever tightens the starting incumbent: a
    /// warmed run stays exact and expands no more states than the plain
    /// seeded run, while a warm schedule no better than the list incumbent
    /// (and `None`) leaves the run unchanged.
    #[test]
    fn warm_start_only_ever_tightens_the_incumbent() {
        let problem = example_problem();
        let run = |warm: Option<&Schedule>| {
            run_search(
                &problem,
                AStarPolicy::new(true),
                PruningConfig::all(),
                HeuristicKind::PaperStaticLevel,
                SearchLimits::unlimited(),
                ArenaConfig::default(),
                true,
                warm,
            )
        };
        let plain = run(None);
        assert_eq!(plain.schedule_length, 14);
        let optimal = plain.expect_schedule().clone();
        let warmed = run(Some(&optimal));
        assert_eq!(warmed.schedule_length, 14);
        assert_eq!(warmed.outcome, SearchOutcome::Optimal);
        assert!(
            warmed.stats.expanded <= plain.stats.expanded,
            "warmed {} vs plain {}",
            warmed.stats.expanded,
            plain.stats.expanded
        );
        let list = problem.upper_bound_schedule().clone();
        let ignored = run(Some(&list));
        assert_eq!(ignored.stats.expanded, plain.stats.expanded);
        assert_eq!(ignored.schedule_length, plain.schedule_length);
    }
}

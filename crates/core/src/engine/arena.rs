//! Arena-backed storage of generated search states, with a refcounted
//! lifecycle.
//!
//! The pre-engine schedulers kept every generated state as a fully
//! materialised [`SearchState`] — six boxed slices per state, cloned on every
//! generation, held live for the whole run.  The [`StateArena`] replaces that
//! with parent-pointer + [`ChildDelta`] records: a generated state costs one
//! fixed-size record, and the full `SearchState` is rebuilt only when the
//! state is actually selected for expansion, by replaying the delta chain
//! onto a single reusable scratch state (no allocation on the replay path).
//!
//! Two further mechanisms keep the arena O(live frontier) in both memory and
//! replay time:
//!
//! * **Refcounted reclamation.**  Every record carries a reference count: one
//!   for the caller's handle (the OPEN entry), plus one per child record
//!   pointing at it.  [`StateArena::release`] drops the caller handle once a
//!   state has been expanded (or pruned, or shipped to another PPE); when a
//!   count reaches zero the slot is freed into a free list for id reuse and
//!   the decrement cascades up the delta chain, so a dead subtree is
//!   reclaimed as soon as its last frontier descendant dies.  The initial
//!   root (slot 0) is pinned and never freed.  Reclamation can be switched
//!   off ([`ArenaConfig::gc`]) to restore the append-only layout; either way
//!   the search behaviour is bit-identical — only the memory profile changes.
//! * **Materialisation path-cache.**  Replaying from the root makes a single
//!   materialisation O(depth).  The arena keeps the last K materialised
//!   states whose replay was long enough to be worth caching
//!   ([`ArenaConfig::path_cache`]); a later materialisation walks its parent
//!   chain only until it meets the scratch state, a cached ancestor or a full
//!   snapshot, whichever is nearest.
//!
//! The eager clone-per-generation layout is retained as
//! [`StoreKind::EagerClone`] so the `ablation_serial` experiment binary can
//! measure the before/after of the arena on identical search behaviour —
//! both stores produce bit-identical search results; only the memory/time
//! profile differs.  (Under the eager layout `release` frees the dead full
//! clone directly; there is no chain to cascade along.)

use crate::problem::SchedulingProblem;
use crate::state::{ChildDelta, SearchState};

/// Identifier of a state held by a [`StateArena`].
///
/// Ids of reclaimed states are reused from a free list, so an id is only
/// meaningful while the caller holds its handle (i.e. before
/// [`StateArena::release`]).  Expansion order never depends on ids — the
/// engine's FIFO tie-breaking uses the explicit `seq` counter instead.
pub type StateId = u32;

/// Sentinel id used internally to mark invalidated scratch/cache entries.
/// Never allocated: the arena panics on id overflow long before.
const INVALID_ID: StateId = StateId::MAX;

/// A replay must be at least this many deltas long before the materialised
/// state is promoted into the path-cache (short replays are cheaper than the
/// full-state copy a promotion costs).
const PROMOTE_REPLAY_THRESHOLD: usize = 4;

/// A replay at least this long additionally promotes its *midpoint* ancestor
/// into the path-cache, so a later jump into any part of the subtree finds a
/// nearby cached ancestor instead of only the tip.  Twice the tip threshold:
/// each half of the chain must be long enough to be worth a cache slot.
const MID_PROMOTE_REPLAY_THRESHOLD: usize = 2 * PROMOTE_REPLAY_THRESHOLD;

/// Automatic compaction cadence: after this many reclaimed records since the
/// last compaction the arena checks whether the trailing run of free slots is
/// worth truncating (a "generation" of reclaims).  Explicit
/// [`StateArena::compact`] calls are not throttled.
const COMPACT_RECLAIM_INTERVAL: u64 = 8192;

/// How the arena stores generated states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Every admitted child is materialised immediately (one full clone per
    /// generation) — the pre-engine layout, kept for the before/after
    /// measurement in `results/BENCH_serial.json`.
    EagerClone,
    /// Children are stored as parent-id + delta records and materialised
    /// lazily on expansion by replaying the chain onto a scratch state.
    #[default]
    DeltaArena,
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreKind::EagerClone => write!(f, "eager"),
            StoreKind::DeltaArena => write!(f, "arena"),
        }
    }
}

impl std::str::FromStr for StoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "eager" | "clone" => Ok(StoreKind::EagerClone),
            "arena" | "delta" => Ok(StoreKind::DeltaArena),
            other => Err(format!("unknown state store `{other}` (expected eager|arena)")),
        }
    }
}

/// Storage-layer configuration: the layout plus the lifecycle knobs.
///
/// All three knobs are behaviour-preserving — they change memory and replay
/// cost, never the search trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaConfig {
    /// The storage layout.
    pub kind: StoreKind,
    /// Reclaim dead records via refcounted release (`true` by default).
    /// `false` restores the append-only arena: `release` becomes a no-op and
    /// nothing is ever freed.
    pub gc: bool,
    /// Number of materialised ancestors kept in the path-cache (`0` disables
    /// the cache; the single scratch state is kept regardless).
    pub path_cache: u32,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig { kind: StoreKind::default(), gc: true, path_cache: 8 }
    }
}

impl From<StoreKind> for ArenaConfig {
    fn from(kind: StoreKind) -> Self {
        ArenaConfig { kind, ..ArenaConfig::default() }
    }
}

impl ArenaConfig {
    /// The default configuration with the given layout.
    pub fn with_kind(mut self, kind: StoreKind) -> Self {
        self.kind = kind;
        self
    }

    /// Enables or disables refcounted reclamation.
    pub fn with_gc(mut self, gc: bool) -> Self {
        self.gc = gc;
        self
    }

    /// Sets the path-cache capacity (0 disables).
    pub fn with_path_cache(mut self, entries: u32) -> Self {
        self.path_cache = entries;
        self
    }
}

/// One stored state: a full snapshot, a delta against its parent, or a freed
/// slot awaiting reuse.
#[derive(Debug, Clone)]
enum Slot {
    Full(SearchState),
    Delta { parent: StateId, delta: ChildDelta },
    Free,
}

/// Store of every *live* state of a search run (see the module docs for the
/// reclamation and path-cache mechanics).
#[derive(Debug)]
pub struct StateArena<'p> {
    problem: &'p SchedulingProblem,
    config: ArenaConfig,
    slots: Vec<Slot>,
    /// Reference count per slot: the caller's handle plus one per child
    /// record.  Slot 0 (the initial root) carries one extra pin.
    refs: Vec<u32>,
    /// Reclaimed slot ids available for reuse.
    free: Vec<StateId>,
    /// Reusable scratch state holding the most recently materialised delta
    /// slot (`None` until the first delta materialisation).  Re-materialising
    /// a descendant of the scratch state replays only the new deltas.
    scratch: Option<(StateId, SearchState)>,
    /// The path-cache: up to `config.path_cache` recently materialised
    /// states, replaced round-robin.  Entries whose state was reclaimed are
    /// marked with [`INVALID_ID`] (the allocation is kept for reuse).
    cache: Vec<(StateId, SearchState)>,
    cache_cursor: usize,
    /// Reusable buffer for the delta chain collected during materialisation:
    /// each element is the id of the state the delta produces, so intermediate
    /// ancestors can be promoted into the path-cache mid-replay.
    chain: Vec<(StateId, ChildDelta)>,
    live_full: usize,
    peak_live_full: usize,
    live_records: usize,
    peak_live_records: usize,
    reclaimed_records: u64,
    /// Reclaim count at the last automatic compaction check.
    last_compact_reclaims: u64,
    materialisations: u64,
    path_cache_hits: u64,
    path_cache_ancestor_hits: u64,
    replayed_deltas: u64,
    replayed_deltas_saved: u64,
}

impl<'p> StateArena<'p> {
    /// An empty arena for `problem` with the given configuration.
    pub fn new(problem: &'p SchedulingProblem, config: ArenaConfig) -> StateArena<'p> {
        StateArena {
            problem,
            config,
            slots: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
            scratch: None,
            cache: Vec::new(),
            cache_cursor: 0,
            chain: Vec::new(),
            live_full: 0,
            peak_live_full: 0,
            live_records: 0,
            peak_live_records: 0,
            reclaimed_records: 0,
            last_compact_reclaims: 0,
            materialisations: 0,
            path_cache_hits: 0,
            path_cache_ancestor_hits: 0,
            replayed_deltas: 0,
            replayed_deltas_saved: 0,
        }
    }

    /// The storage layout in use.
    pub fn kind(&self) -> StoreKind {
        self.config.kind
    }

    /// The full storage configuration in use.
    pub fn config(&self) -> ArenaConfig {
        self.config
    }

    /// Number of slots ever allocated (live records plus free slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no state has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Largest number of fully materialised states held at any point: every
    /// live state in the eager layout, only roots plus the scratch state in
    /// the delta layout.  This is the allocation proxy reported by
    /// `results/BENCH_serial.json`.  (The path-cache's up to K extra full
    /// states are a fixed overhead, not counted here.)
    pub fn peak_live_full(&self) -> usize {
        self.peak_live_full
    }

    /// Number of records (roots + deltas, both layouts) currently live.
    pub fn live_records(&self) -> usize {
        self.live_records
    }

    /// Largest number of simultaneously live records observed.
    pub fn peak_live_records(&self) -> usize {
        self.peak_live_records
    }

    /// Total records reclaimed by [`StateArena::release`] cascades.
    pub fn reclaimed_records(&self) -> u64 {
        self.reclaimed_records
    }

    /// Delta-chain materialisations performed (full-slot fast-path reads are
    /// not counted — nothing is replayed for them).
    pub fn materialisations(&self) -> u64 {
        self.materialisations
    }

    /// Materialisations whose parent-chain walk ended at a path-cache entry
    /// (scratch-state reuse is not counted — it predates the cache).
    pub fn path_cache_hits(&self) -> u64 {
        self.path_cache_hits
    }

    /// The subset of [`StateArena::path_cache_hits`] where the cached entry
    /// was a strict *ancestor* of the requested state (not an exact-id hit):
    /// the replay-from-nearest-ancestor win.
    pub fn path_cache_ancestor_hits(&self) -> u64 {
        self.path_cache_ancestor_hits
    }

    /// Total deltas replayed across all materialisations — the arena's
    /// CPU-overhead proxy that the path-cache exists to shrink.
    pub fn replayed_deltas(&self) -> u64 {
        self.replayed_deltas
    }

    /// Total deltas *not* replayed because a walk ended at the scratch state
    /// or a cached (ancestor) entry instead of descending to a full snapshot:
    /// the depth of the reused base, summed over those materialisations.
    pub fn replayed_deltas_saved(&self) -> u64 {
        self.replayed_deltas_saved
    }

    /// Slot capacity currently allocated by the record vector (compaction
    /// exists to shrink this back towards the live count after a drain).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn note_live_full(&mut self, added: usize) {
        self.live_full += added;
        let scratch = usize::from(self.scratch.is_some());
        self.peak_live_full = self.peak_live_full.max(self.live_full + scratch);
    }

    /// Allocates a slot (reusing a freed one if available) with one caller
    /// handle on its refcount.
    fn alloc(&mut self, slot: Slot) -> StateId {
        self.live_records += 1;
        self.peak_live_records = self.peak_live_records.max(self.live_records);
        if let Some(id) = self.free.pop() {
            debug_assert!(matches!(self.slots[id as usize], Slot::Free), "free list corrupt");
            self.slots[id as usize] = slot;
            self.refs[id as usize] = 1;
            id
        } else {
            let id = StateId::try_from(self.slots.len()).expect("state arena overflowed StateId");
            assert_ne!(id, INVALID_ID, "state arena overflowed StateId");
            self.slots.push(slot);
            self.refs.push(1);
            id
        }
    }

    /// Stores a full state with no parent (the initial state; in the eager
    /// parallel store, also states received from another PPE).  The first
    /// root (slot 0) is pinned: it anchors every delta chain and is never
    /// reclaimed.
    pub fn insert_root(&mut self, state: SearchState) -> StateId {
        let id = self.alloc(Slot::Full(state));
        if id == 0 {
            self.refs[0] += 1; // pin: delta chains always bottom out here
        }
        self.note_live_full(1);
        id
    }

    /// Stores the child of `parent` described by `delta`.  The parent must be
    /// live (the caller holds its handle while expanding it).
    pub fn insert_child(&mut self, parent: StateId, delta: &ChildDelta) -> StateId {
        match self.config.kind {
            StoreKind::EagerClone => {
                let Slot::Full(parent_state) = &self.slots[parent as usize] else {
                    unreachable!("eager arenas store only full states");
                };
                let child = parent_state.apply_delta(self.problem, delta);
                let id = self.alloc(Slot::Full(child));
                self.note_live_full(1);
                id
            }
            StoreKind::DeltaArena => {
                let id = self.alloc(Slot::Delta { parent, delta: *delta });
                self.refs[parent as usize] += 1;
                id
            }
        }
    }

    /// Drops the caller's handle on `id`.  When reclamation is enabled and no
    /// child record keeps the state alive, its slot is freed for reuse and
    /// the release cascades up the delta chain, reclaiming every ancestor
    /// that just lost its last reference.  A no-op with `gc: false`.
    ///
    /// After releasing an id the caller must not use it again: the slot may
    /// be reused by the next insertion.
    pub fn release(&mut self, id: StateId) {
        if !self.config.gc {
            return;
        }
        let mut cursor = id;
        loop {
            let r = &mut self.refs[cursor as usize];
            debug_assert!(*r > 0, "release of a dead slot {cursor}");
            *r -= 1;
            if *r > 0 {
                break;
            }
            let slot = std::mem::replace(&mut self.slots[cursor as usize], Slot::Free);
            self.live_records -= 1;
            self.reclaimed_records += 1;
            // A reused id must never alias the scratch state or a cached
            // ancestor of the *old* incarnation: invalidate both.
            if let Some((sid, _)) = &mut self.scratch {
                if *sid == cursor {
                    *sid = INVALID_ID;
                }
            }
            for (cid, _) in &mut self.cache {
                if *cid == cursor {
                    *cid = INVALID_ID;
                }
            }
            self.free.push(cursor);
            match slot {
                Slot::Full(_) => {
                    self.live_full -= 1;
                    break;
                }
                Slot::Delta { parent, .. } => cursor = parent,
                Slot::Free => unreachable!("double free of slot {cursor}"),
            }
        }
        // Generation-scoped compaction: every COMPACT_RECLAIM_INTERVAL
        // reclaims, truncate the record vector if a substantial trailing run
        // of slots has been freed, so a drained arena gives capacity back
        // instead of only recycling ids.
        if self.reclaimed_records - self.last_compact_reclaims >= COMPACT_RECLAIM_INTERVAL {
            self.last_compact_reclaims = self.reclaimed_records;
            let len = self.slots.len();
            let tail = len - self.live_len();
            if tail * 4 >= len {
                self.compact();
            }
        }
    }

    /// One past the highest non-free slot index (the length the record
    /// vector can truncate to without touching a live record).
    fn live_len(&self) -> usize {
        self.slots.iter().rposition(|s| !matches!(s, Slot::Free)).map_or(0, |i| i + 1)
    }

    /// Compacts the record vector: truncates the trailing run of freed slots,
    /// drops their ids from the free list and releases the spare capacity of
    /// the slot/refcount/free vectors back to the allocator.  Live ids are
    /// never moved — only `Free` slots past the last live record are cut — so
    /// every outstanding handle (and the scratch/path-cache ids, which are
    /// invalidated eagerly on release) survives compaction unchanged.
    ///
    /// Runs automatically every [`COMPACT_RECLAIM_INTERVAL`] reclaims when
    /// the trailing free run is at least a quarter of the vector; callers
    /// with a natural generation boundary (e.g. a service worker between
    /// requests) can invoke it directly.
    pub fn compact(&mut self) {
        let new_len = self.live_len();
        if new_len < self.slots.len() {
            self.slots.truncate(new_len);
            self.refs.truncate(new_len);
            self.free.retain(|&id| (id as usize) < new_len);
        }
        self.slots.shrink_to_fit();
        self.refs.shrink_to_fit();
        self.free.shrink_to_fit();
    }

    /// Adopts a full state produced *outside* this arena (in the parallel
    /// scheduler: a state received from another PPE, or the initial
    /// distribution) and returns its id.
    ///
    /// The eager layout moves it in as one more retained full state — the
    /// clone-per-generation baseline.  The delta layout instead *re-roots*
    /// the state: it is decomposed with [`SearchState::to_delta_chain`] and
    /// stored as a chain of delta records hanging off slot 0, so adopting
    /// never adds a live full state.  A delta arena therefore keeps the
    /// problem's **initial** (empty) state in slot 0 — adopting into an
    /// empty delta arena seeds it automatically, and adopting into one whose
    /// slot 0 is anything else (only possible by inserting a non-initial
    /// root first) panics rather than replay chains onto the wrong base.
    ///
    /// # Panics
    ///
    /// Panics if this is a non-empty delta arena whose slot 0 is not the
    /// initial state.
    pub fn adopt(&mut self, state: SearchState) -> StateId {
        match self.config.kind {
            StoreKind::EagerClone => self.insert_root(state),
            StoreKind::DeltaArena => {
                let chain = state.to_delta_chain();
                self.adopt_chain(&chain)
            }
        }
    }

    /// Adopts a full state as a *snapshot root*: one `Slot::Full` record that
    /// later children hang their deltas off and that `materialise` replays
    /// from directly — the receive-side of the parallel scheduler's snapshot
    /// transfers.  Unlike [`StateArena::adopt`], a delta arena stores the
    /// state as-is instead of decomposing it, so adopting (and later
    /// releasing) a depth-`d` transfer costs one record instead of `d`
    /// records plus a refcount cascade.  An empty delta arena is still seeded
    /// with the pinned initial root first, preserving the slot-0 invariant
    /// that chain adoption relies on; a depth-0 state *is* the initial state
    /// and takes the chain path (no duplicate root record).
    pub fn adopt_snapshot(&mut self, state: SearchState) -> StateId {
        match self.config.kind {
            StoreKind::EagerClone => self.insert_root(state),
            StoreKind::DeltaArena => {
                if state.depth() == 0 {
                    return self.adopt(state);
                }
                if self.slots.is_empty() {
                    self.insert_root(SearchState::initial(self.problem));
                }
                let id = self.alloc(Slot::Full(state));
                self.note_live_full(1);
                id
            }
        }
    }

    /// Depth of the record `id` in deltas from the initial state, walked over
    /// parent links without materialising anything: the hop count to the
    /// nearest full snapshot plus that snapshot's own depth.  The sender-side
    /// cost model for choosing between chain and snapshot transfers.
    pub fn record_depth(&self, id: StateId) -> usize {
        let mut hops = 0usize;
        let mut cursor = id;
        loop {
            match &self.slots[cursor as usize] {
                Slot::Full(s) => return hops + s.depth() as usize,
                Slot::Delta { parent, .. } => {
                    hops += 1;
                    cursor = *parent;
                }
                Slot::Free => unreachable!("record_depth through a freed slot"),
            }
        }
    }

    /// Adopts a state expressed as a delta chain against the initial state
    /// (the wire format of the parallel scheduler's chain-shipping
    /// transfers; see [`SearchState::to_delta_chain`]).  The delta layout
    /// stores the records directly — the state is never materialised on
    /// adoption; the eager layout replays the chain into one full clone.
    ///
    /// Intermediate chain records keep no caller handle (only the child link
    /// holds them), so releasing the returned id reclaims the whole adopted
    /// chain once reclamation is on.  An empty chain denotes the initial
    /// state itself and returns the pinned root.
    ///
    /// # Panics
    ///
    /// As [`StateArena::adopt`]: a non-empty delta arena must be rooted at
    /// the initial state.
    pub fn adopt_chain(&mut self, chain: &[ChildDelta]) -> StateId {
        match self.config.kind {
            StoreKind::EagerClone => {
                let mut state = SearchState::initial(self.problem);
                for delta in chain {
                    state.apply_delta_in_place(self.problem, delta);
                }
                self.insert_root(state)
            }
            StoreKind::DeltaArena => {
                if self.slots.is_empty() {
                    self.insert_root(SearchState::initial(self.problem));
                }
                assert!(
                    matches!(&self.slots[0], Slot::Full(s) if s.depth() == 0),
                    "delta arenas re-root adopted states at the initial state in slot 0"
                );
                let mut id: StateId = 0;
                for delta in chain {
                    let child = self.insert_child(id, delta);
                    if id != 0 {
                        // The child's parent link now keeps the intermediate
                        // alive; drop our construction handle so the chain
                        // can be reclaimed from its tip.
                        self.release(id);
                    }
                    id = child;
                }
                id
            }
        }
    }

    /// Decomposes the live state `id` into the delta chain that rebuilds it
    /// from the initial state — the send-side of the parallel scheduler's
    /// chain-shipping transfers.  Walks parent links only; nothing is
    /// materialised or copied beyond the fixed-size records.
    ///
    /// Only meaningful for delta arenas rooted at the initial state: the walk
    /// bottoms out either at slot 0 or at an adopted snapshot root, whose own
    /// decomposition is spliced in so the chain always replays from the
    /// receiver's initial state.  Eager arenas ship full states instead.
    pub fn extract_chain(&self, id: StateId) -> Vec<ChildDelta> {
        debug_assert_eq!(self.config.kind, StoreKind::DeltaArena, "chains are a delta-store form");
        let mut chain = Vec::new();
        let mut cursor = id;
        loop {
            match &self.slots[cursor as usize] {
                Slot::Full(s) => {
                    // A snapshot root sits `s.depth()` deltas above the
                    // initial state; splice its decomposition in (reversed —
                    // the chain is tip-first until the final reverse).
                    if s.depth() > 0 {
                        chain.extend(s.to_delta_chain().into_iter().rev());
                    }
                    break;
                }
                Slot::Delta { parent, delta } => {
                    chain.push(*delta);
                    cursor = *parent;
                }
                Slot::Free => unreachable!("extract_chain through a freed slot"),
            }
        }
        chain.reverse();
        chain
    }

    /// Materialises the state identified by `id` and returns an owned clone —
    /// the eager send-path of the parallel scheduler, where a state leaving
    /// for another PPE must outlive this arena's scratch state.
    pub fn materialise_owned(&mut self, id: StateId) -> SearchState {
        self.materialise(id).clone()
    }

    /// Returns the full state identified by `id`, rebuilding it from its
    /// delta chain if necessary.  The returned reference borrows the arena
    /// (it may point into the internal scratch state), so collect whatever
    /// the expansion keeps before inserting new children.
    pub fn materialise(&mut self, id: StateId) -> &SearchState {
        // Fast path: the slot already holds a full state.
        if matches!(self.slots[id as usize], Slot::Full(_)) {
            let Slot::Full(state) = &self.slots[id as usize] else { unreachable!() };
            return state;
        }
        self.materialisations += 1;

        // Collect the delta chain from `id` up to the nearest replay base:
        // the scratch state, a path-cache entry (exact id *or* any cached
        // ancestor), or a full snapshot.
        enum Base {
            Scratch,
            Cached(usize),
            Slot(StateId),
        }
        let mut chain = std::mem::take(&mut self.chain);
        chain.clear();
        let scratch_id = self.scratch.as_ref().map(|&(sid, _)| sid);
        let mut cursor = id;
        let base = loop {
            if Some(cursor) == scratch_id {
                break Base::Scratch; // replay directly onto the scratch state
            }
            if let Some(i) = self.cache.iter().position(|&(cid, _)| cid == cursor) {
                self.path_cache_hits += 1;
                if cursor != id {
                    self.path_cache_ancestor_hits += 1;
                }
                break Base::Cached(i);
            }
            match &self.slots[cursor as usize] {
                Slot::Full(_) => break Base::Slot(cursor),
                Slot::Delta { parent, delta } => {
                    chain.push((cursor, *delta));
                    cursor = *parent;
                }
                Slot::Free => unreachable!("materialise through a freed slot"),
            }
        };
        self.replayed_deltas += chain.len() as u64;
        let reused_base = matches!(base, Base::Scratch | Base::Cached(_));

        // Seat the base in the scratch state (unless it already is there),
        // taking the scratch out of `self` so the mid-replay promotion below
        // can borrow the cache.
        let mut scratch = match (&base, self.scratch.take()) {
            (Base::Scratch, Some((_, s))) => s,
            (_, existing) => {
                let base_state: &SearchState = match base {
                    Base::Scratch => unreachable!("scratch base without a scratch state"),
                    Base::Cached(i) => &self.cache[i].1,
                    Base::Slot(base_id) => {
                        let Slot::Full(s) = &self.slots[base_id as usize] else { unreachable!() };
                        s
                    }
                };
                match existing {
                    Some((_, mut s)) => {
                        s.copy_from(base_state);
                        s
                    }
                    None => {
                        let cloned = base_state.clone();
                        self.peak_live_full = self.peak_live_full.max(self.live_full + 1);
                        cloned
                    }
                }
            }
        };
        if reused_base {
            // Every delta below the reused base would have been replayed by a
            // walk to the full snapshot: the ancestor-replay win.
            self.replayed_deltas_saved += scratch.depth() as u64;
        }

        // Replay the suffix; a long enough replay also promotes its midpoint
        // ancestor so later jumps anywhere into this subtree start nearby.
        let replay_len = chain.len();
        let mid_idx = (replay_len >= MID_PROMOTE_REPLAY_THRESHOLD && self.config.path_cache > 0)
            .then_some(replay_len / 2);
        for i in (0..replay_len).rev() {
            let (delta_id, delta) = chain[i];
            scratch.apply_delta_in_place(self.problem, &delta);
            if mid_idx == Some(i) {
                self.cache_insert(delta_id, &scratch);
            }
        }
        self.chain = chain;

        // Promote long replays into the path-cache so a later jump back into
        // this subtree starts from here instead of the root.
        if replay_len >= PROMOTE_REPLAY_THRESHOLD && self.config.path_cache > 0 {
            self.cache_insert(id, &scratch);
        }
        self.scratch = Some((id, scratch));
        &self.scratch.as_ref().expect("scratch seated above").1
    }

    /// Inserts (or refreshes, round-robin) a path-cache entry.  An id already
    /// cached is left in place — its entry holds the identical state.
    fn cache_insert(&mut self, id: StateId, state: &SearchState) {
        if self.cache.iter().any(|&(cid, _)| cid == id) {
            return;
        }
        if self.cache.len() < self.config.path_cache as usize {
            self.cache.push((id, state.clone()));
        } else {
            let cursor = self.cache_cursor;
            let (cid, slot_state) = &mut self.cache[cursor];
            *cid = id;
            slot_state.copy_from(state);
            self.cache_cursor = (cursor + 1) % self.cache.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeuristicKind;
    use optsched_procnet::{ProcId, ProcNetwork};
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    fn arena(problem: &SchedulingProblem, kind: StoreKind) -> StateArena<'_> {
        StateArena::new(problem, ArenaConfig::from(kind))
    }

    #[test]
    fn store_kind_parses_and_displays() {
        assert_eq!("eager".parse::<StoreKind>().unwrap(), StoreKind::EagerClone);
        assert_eq!("arena".parse::<StoreKind>().unwrap(), StoreKind::DeltaArena);
        assert_eq!("DELTA".parse::<StoreKind>().unwrap(), StoreKind::DeltaArena);
        assert!("bogus".parse::<StoreKind>().is_err());
        assert_eq!(StoreKind::EagerClone.to_string(), "eager");
        assert_eq!(StoreKind::DeltaArena.to_string(), "arena");
        assert_eq!(StoreKind::default(), StoreKind::DeltaArena);
        let cfg = ArenaConfig::default();
        assert!(cfg.gc, "reclamation is on by default");
        assert_eq!(cfg.kind, StoreKind::DeltaArena);
        assert_eq!(ArenaConfig::from(StoreKind::EagerClone).kind, StoreKind::EagerClone);
        let knobbed = ArenaConfig::default()
            .with_kind(StoreKind::EagerClone)
            .with_gc(false)
            .with_path_cache(0);
        assert_eq!(knobbed, ArenaConfig { kind: StoreKind::EagerClone, gc: false, path_cache: 0 });
    }

    /// The ISSUE's arena acceptance test: on a random expansion trace, every
    /// state materialised from the delta arena equals the eagerly cloned
    /// state, including after out-of-order materialisation (scratch misses).
    #[test]
    fn materialised_states_equal_eager_clones_on_a_random_trace() {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 9, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;

        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let root = SearchState::initial(&problem);
        let mut eager: Vec<SearchState> = vec![root.clone()];
        let mut parents: Vec<StateId> = vec![arena.insert_root(root)];

        // Random walk: repeatedly pick a random stored state, expand a random
        // (ready node, processor) pair, store the child in both forms.
        for _ in 0..200 {
            let pick = rng.gen_range(0..eager.len());
            let parent = eager[pick].clone();
            let ready = parent.ready_nodes(&problem);
            if ready.is_empty() {
                continue;
            }
            let node = ready[rng.gen_range(0..ready.len())];
            let proc = ProcId(rng.gen_range(0..problem.num_procs()) as u32);
            let delta = parent.peek_child(&problem, node, proc, h);
            let id = arena.insert_child(parents[pick], &delta);
            eager.push(parent.schedule_node(&problem, node, proc, h));
            parents.push(id);
        }

        // Materialise in a shuffled order so the scratch state repeatedly
        // starts over from the root (or a cached ancestor).
        let mut order: Vec<usize> = (0..eager.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in &order {
            let materialised = arena.materialise(parents[i]);
            let want = &eager[i];
            assert_eq!(materialised.signature(), want.signature());
            assert_eq!(materialised.g(), want.g());
            assert_eq!(materialised.h(), want.h());
            assert_eq!(materialised.depth(), want.depth());
            assert_eq!(materialised.max_finish_node(), want.max_finish_node());
            assert_eq!(materialised.ready_nodes(&problem), want.ready_nodes(&problem));
            for p in problem.network().proc_ids() {
                assert_eq!(materialised.proc_ready_time(p), want.proc_ready_time(p));
            }
        }
        assert!(arena.materialisations() > 0);
        assert!(arena.replayed_deltas() > 0);
    }

    /// The scratch fast path: materialising a child of the most recently
    /// materialised state replays exactly one delta.
    #[test]
    fn descendant_materialisation_reuses_the_scratch_state() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let root = SearchState::initial(&problem);
        let d1 = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);
        let root_id = arena.insert_root(root.clone());
        let c1 = arena.insert_child(root_id, &d1);
        let s1 = arena.materialise(c1).clone();
        let d2 = s1.peek_child(&problem, optsched_taskgraph::NodeId(1), ProcId(1), h);
        let c2 = arena.insert_child(c1, &d2);
        // c2 is a child of the scratch (c1): replayed in place.
        let before = arena.replayed_deltas();
        let s2 = arena.materialise(c2);
        assert_eq!(s2.depth(), 2);
        assert_eq!(s2.signature(), s1.apply_delta(&problem, &d2).signature());
        assert_eq!(arena.replayed_deltas(), before + 1, "exactly one delta replayed");
        // Jumping back to the root still works (scratch rebuilt from the full slot).
        assert_eq!(arena.materialise(root_id).depth(), 0);
        assert_eq!(arena.materialise(c2).depth(), 2);
    }

    /// Releasing the last handle on a leaf reclaims the whole dead chain up
    /// to (but excluding) ancestors that still have live descendants, and the
    /// freed slots are reused by later insertions.
    #[test]
    fn release_cascades_up_dead_chains_and_reuses_slots() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let root = SearchState::initial(&problem);
        let d1 = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);
        let root_id = arena.insert_root(root);
        let c1 = arena.insert_child(root_id, &d1);
        let s1 = arena.materialise(c1).clone();
        let d2 = s1.peek_child(&problem, optsched_taskgraph::NodeId(1), ProcId(1), h);
        let c2 = arena.insert_child(c1, &d2);
        let d2b = s1.peek_child(&problem, optsched_taskgraph::NodeId(1), ProcId(0), h);
        let c3 = arena.insert_child(c1, &d2b);
        assert_eq!(arena.live_records(), 4);

        // c1 has been expanded: dropping its handle must NOT free it while
        // its children c2/c3 are alive.
        arena.release(c1);
        assert_eq!(arena.live_records(), 4);
        assert_eq!(arena.reclaimed_records(), 0);

        // Killing c2 frees only c2 (c3 still pins c1).
        arena.release(c2);
        assert_eq!(arena.live_records(), 3);
        assert_eq!(arena.reclaimed_records(), 1);

        // Killing c3 cascades: c3 and the now-orphaned c1 are both freed.
        arena.release(c3);
        assert_eq!(arena.live_records(), 1, "only the pinned root survives");
        assert_eq!(arena.reclaimed_records(), 3);

        // The pinned root never dies, even when its handle is dropped.
        arena.release(root_id);
        assert_eq!(arena.live_records(), 1);
        assert_eq!(arena.materialise(root_id).depth(), 0);

        // Freed ids are reused and materialise correctly (no stale scratch
        // or cache aliasing from the old incarnation).
        let e1 = arena.insert_child(root_id, &d1);
        let e2 = arena.insert_child(e1, &d2);
        assert!(arena.len() <= 4, "slots are reused, not appended: len {}", arena.len());
        let s2 = arena.materialise(e2);
        assert_eq!(s2.signature(), s1.apply_delta(&problem, &d2).signature());
        assert_eq!(arena.peak_live_records(), 4);
    }

    /// With reclamation off the arena is append-only: `release` is a no-op
    /// and nothing is ever reclaimed (the PR 5 baseline layout).
    #[test]
    fn gc_off_restores_the_append_only_arena() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena =
            StateArena::new(&problem, ArenaConfig::from(StoreKind::DeltaArena).with_gc(false));
        let root = SearchState::initial(&problem);
        let d1 = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);
        let root_id = arena.insert_root(root);
        let c1 = arena.insert_child(root_id, &d1);
        arena.release(c1);
        assert_eq!(arena.live_records(), 2);
        assert_eq!(arena.reclaimed_records(), 0);
        assert_eq!(arena.materialise(c1).depth(), 1, "the record is still there");
    }

    /// Eager slots are reclaimed directly (no chain): releasing an expanded
    /// clone frees its full state immediately.
    #[test]
    fn eager_release_frees_full_clones() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = arena(&problem, StoreKind::EagerClone);
        let root = SearchState::initial(&problem);
        let d1 = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);
        let root_id = arena.insert_root(root);
        let c1 = arena.insert_child(root_id, &d1);
        let d2 = arena.materialise(c1).peek_child(&problem, optsched_taskgraph::NodeId(1), ProcId(1), h);
        let c2 = arena.insert_child(c1, &d2);
        arena.release(c1);
        assert_eq!(arena.live_records(), 2);
        assert_eq!(arena.reclaimed_records(), 1);
        // The freed clone's slot is reused by the next insertion.
        let c3 = arena.insert_child(c2, &root_id_delta(&arena, &problem, c2, h));
        assert_eq!(c3, c1, "eager slots are reused too");
        assert_eq!(arena.peak_live_full(), 3);
    }

    fn root_id_delta(
        arena: &StateArena<'_>,
        problem: &SchedulingProblem,
        parent: StateId,
        h: HeuristicKind,
    ) -> ChildDelta {
        let Slot::Full(s) = &arena.slots[parent as usize] else { panic!("not full") };
        let n = s.ready_nodes(problem)[0];
        s.peek_child(problem, n, ProcId(0), h)
    }

    /// A long replay promotes the materialised state into the path-cache;
    /// jumping away and back then walks only to the cached ancestor instead
    /// of the root.
    #[test]
    fn path_cache_shortens_replays_after_jumps() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let mut state = SearchState::initial(&problem);
        let mut id = arena.insert_root(state.clone());
        // A chain of depth 5 (>= promotion threshold).
        let mut ids = Vec::new();
        for _ in 0..5 {
            let n = state.ready_nodes(&problem)[0];
            let d = state.peek_child(&problem, n, ProcId(0), h);
            id = arena.insert_child(id, &d);
            state.apply_delta_in_place(&problem, &d);
            ids.push(id);
        }
        // Materialise the tip: replay of 5, promoted into the cache.
        assert_eq!(arena.materialise(id).depth(), 5);
        assert_eq!(arena.replayed_deltas(), 5);
        assert_eq!(arena.path_cache_hits(), 0);
        // Jump to a sibling branch (overwrites the scratch position)...
        let root_state = SearchState::initial(&problem);
        let sib_delta =
            root_state.peek_child(&problem, root_state.ready_nodes(&problem)[0], ProcId(1), h);
        let sib = arena.insert_child(0, &sib_delta);
        assert_eq!(arena.materialise(sib).depth(), 1);
        // ...then extend the tip: the walk stops at the cached tip, not root.
        let n = state.ready_nodes(&problem)[0];
        let d = state.peek_child(&problem, n, ProcId(1), h);
        let child = arena.insert_child(id, &d);
        let before = arena.replayed_deltas();
        let saved_before = arena.replayed_deltas_saved();
        assert_eq!(arena.materialise(child).depth(), 6);
        assert_eq!(arena.path_cache_hits(), 1, "the cached ancestor was found");
        assert_eq!(arena.path_cache_ancestor_hits(), 1, "a strict ancestor, not an exact id");
        assert_eq!(arena.replayed_deltas(), before + 1, "only the new delta was replayed");
        assert_eq!(
            arena.replayed_deltas_saved(),
            saved_before + 5,
            "the cached base's five deltas were not replayed"
        );

        // With the cache disabled the same jump replays from the root.
        let mut no_cache =
            StateArena::new(&problem, ArenaConfig::from(StoreKind::DeltaArena).with_path_cache(0));
        let mut s = SearchState::initial(&problem);
        let mut nid = no_cache.insert_root(s.clone());
        for _ in 0..5 {
            let n = s.ready_nodes(&problem)[0];
            let d = s.peek_child(&problem, n, ProcId(0), h);
            nid = no_cache.insert_child(nid, &d);
            s.apply_delta_in_place(&problem, &d);
        }
        no_cache.materialise(nid);
        let nroot = SearchState::initial(&problem);
        let nsib_delta =
            nroot.peek_child(&problem, nroot.ready_nodes(&problem)[0], ProcId(1), h);
        let nsib = no_cache.insert_child(0, &nsib_delta);
        no_cache.materialise(nsib);
        let n = s.ready_nodes(&problem)[0];
        let d = s.peek_child(&problem, n, ProcId(1), h);
        let nchild = no_cache.insert_child(nid, &d);
        let before = no_cache.replayed_deltas();
        no_cache.materialise(nchild);
        assert_eq!(no_cache.path_cache_hits(), 0);
        assert_eq!(no_cache.replayed_deltas(), before + 6, "full replay from the root");
    }

    /// A replay long enough for midpoint promotion caches an intermediate
    /// ancestor: a later branch off the *middle* of the chain replays only
    /// from that ancestor instead of from the root or the far tip.
    #[test]
    fn midpoint_promotion_caches_an_interior_ancestor() {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let mut state = SearchState::initial(&problem);
        let mut id = arena.insert_root(state.clone());
        // A chain of depth 8 (>= midpoint promotion threshold); remember the
        // state at depth 4 so we can branch off it later.
        let mut mid_state = None;
        let mut mid_id = 0;
        for depth in 1..=8 {
            let n = state.ready_nodes(&problem)[0];
            let d = state.peek_child(&problem, n, ProcId(0), h);
            id = arena.insert_child(id, &d);
            state.apply_delta_in_place(&problem, &d);
            if depth == 4 {
                mid_state = Some(state.clone());
                mid_id = id;
            }
        }
        let mid_state = mid_state.unwrap();
        assert_eq!(arena.materialise(id).depth(), 8);
        assert_eq!(arena.replayed_deltas(), 8);

        // Branch off the midpoint: the walk must stop at the promoted
        // interior ancestor (depth 4), replaying one delta, not eight.
        let n = mid_state.ready_nodes(&problem)[0];
        let d = mid_state.peek_child(&problem, n, ProcId(1), h);
        let branch = arena.insert_child(mid_id, &d);
        let before = arena.replayed_deltas();
        assert_eq!(arena.materialise(branch).depth(), 5);
        assert_eq!(arena.replayed_deltas(), before + 1, "replayed from the midpoint entry");
        assert_eq!(arena.path_cache_ancestor_hits(), 1);
        assert_eq!(arena.replayed_deltas_saved(), 4, "the midpoint's four deltas were saved");
    }

    /// Compaction truncates the trailing run of freed slots and returns the
    /// spare capacity, while every live id survives untouched.
    #[test]
    fn compact_shrinks_capacity_and_preserves_live_ids() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let mut state = SearchState::initial(&problem);
        let mut id = arena.insert_root(state.clone());
        let keep = {
            let n = state.ready_nodes(&problem)[0];
            let d = state.peek_child(&problem, n, ProcId(1), h);
            arena.insert_child(id, &d)
        };
        let keep_sig = {
            let n = state.ready_nodes(&problem)[0];
            let d = state.peek_child(&problem, n, ProcId(1), h);
            state.apply_delta(&problem, &d).signature()
        };
        // Grow a long disposable chain past the kept child, then drain it.
        let mut ids = Vec::new();
        for _ in 0..6 {
            let n = state.ready_nodes(&problem)[0];
            let d = state.peek_child(&problem, n, ProcId(0), h);
            id = arena.insert_child(id, &d);
            state.apply_delta_in_place(&problem, &d);
            ids.push(id);
        }
        let grown = arena.len();
        assert_eq!(grown, 8);
        for dead in ids.iter().rev() {
            arena.release(*dead);
        }
        // The chain is gone but the slots (and their capacity) linger.
        assert_eq!(arena.live_records(), 2);
        assert_eq!(arena.len(), grown);

        arena.compact();
        assert_eq!(arena.len(), 2, "trailing free slots truncated");
        assert!(arena.capacity() < grown, "capacity given back: {}", arena.capacity());
        // The live child survives and still materialises correctly.
        assert_eq!(arena.materialise(keep).signature(), keep_sig);
        // New insertions extend the compacted vector cleanly.
        let tail = {
            let root_state = SearchState::initial(&problem);
            let n = root_state.ready_nodes(&problem)[0];
            let d = root_state.peek_child(&problem, n, ProcId(2), h);
            arena.insert_child(0, &d)
        };
        assert_eq!(arena.materialise(tail).depth(), 1);
    }

    /// The transfer-adoption path of the parallel scheduler: a full state
    /// adopted into a delta arena is re-rooted as a delta chain (no new live
    /// full state), materialises back to an identical state, and its
    /// descendants replay correctly.  An eager arena stores one more clone.
    #[test]
    fn adopting_a_full_state_re_roots_it_without_live_fulls() {
        let mut rng = StdRng::seed_from_u64(9);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 9, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;

        // Build a handful of "transferred" states by random walks.
        let mut transfers: Vec<SearchState> = Vec::new();
        for _ in 0..8 {
            let mut s = SearchState::initial(&problem);
            let depth = rng.gen_range(1..=6);
            for _ in 0..depth {
                let ready = s.ready_nodes(&problem);
                if ready.is_empty() {
                    break;
                }
                let n = ready[rng.gen_range(0..ready.len())];
                let p = ProcId(rng.gen_range(0..problem.num_procs()) as u32);
                s = s.schedule_node(&problem, n, p, h);
            }
            transfers.push(s);
        }

        let mut delta = arena(&problem, StoreKind::DeltaArena);
        let root = delta.insert_root(SearchState::initial(&problem));
        assert_eq!(root, 0);
        let ids: Vec<StateId> = transfers.iter().map(|s| delta.adopt(s.clone())).collect();
        // Re-rooting stores only delta records: still just the initial root
        // (plus at most one scratch state) live.
        assert!(delta.peak_live_full() <= 2, "peak {}", delta.peak_live_full());
        for (id, want) in ids.iter().zip(&transfers) {
            let got = delta.materialise_owned(*id);
            assert_eq!(got.signature(), want.signature());
            assert_eq!((got.g(), got.h(), got.depth()), (want.g(), want.h(), want.depth()));
            assert_eq!(got.max_finish_node(), want.max_finish_node());
            // A descendant of an adopted state replays through the chain.
            if let Some(&n) = want.ready_nodes(&problem).first() {
                let d = want.peek_child(&problem, n, ProcId(0), h);
                let child = delta.insert_child(*id, &d);
                assert_eq!(
                    delta.materialise(child).signature(),
                    want.apply_delta(&problem, &d).signature()
                );
            }
        }

        let mut eager = arena(&problem, StoreKind::EagerClone);
        eager.insert_root(SearchState::initial(&problem));
        let id = eager.adopt(transfers[0].clone());
        assert_eq!(eager.materialise(id).signature(), transfers[0].signature());
        assert_eq!(eager.peak_live_full(), 2, "eager adoption clones the state");
    }

    /// Chain shipping round-trip: `extract_chain` on the sender equals the
    /// state's own decomposition, `adopt_chain` on the receiver rebuilds the
    /// identical state, and releasing the adopted tip reclaims the whole
    /// chain (intermediates hold no extra handles).
    #[test]
    fn extract_and_adopt_chain_round_trip_and_reclaim() {
        let mut rng = StdRng::seed_from_u64(21);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 8, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;
        let mut state = SearchState::initial(&problem);
        for _ in 0..5 {
            let ready = state.ready_nodes(&problem);
            let n = ready[rng.gen_range(0..ready.len())];
            let p = ProcId(rng.gen_range(0..problem.num_procs()) as u32);
            state = state.schedule_node(&problem, n, p, h);
        }

        // Sender: the stored chain is extracted without materialising.
        let mut sender = arena(&problem, StoreKind::DeltaArena);
        sender.insert_root(SearchState::initial(&problem));
        let sid = sender.adopt(state.clone());
        let wire = sender.extract_chain(sid);
        assert_eq!(wire, state.to_delta_chain());
        sender.release(sid);
        assert_eq!(sender.live_records(), 1, "shipped chain reclaimed on the sender");

        // Receiver: the chain adopts into an identical state.
        let mut receiver = arena(&problem, StoreKind::DeltaArena);
        let rid = receiver.adopt_chain(&wire);
        let got = receiver.materialise_owned(rid);
        assert_eq!(got.signature(), state.signature());
        assert_eq!((got.g(), got.h(), got.depth()), (state.g(), state.h(), state.depth()));
        receiver.release(rid);
        assert_eq!(receiver.live_records(), 1, "adopted chain reclaimed on the receiver");

        // The empty chain is the initial state (the pinned root).
        assert_eq!(receiver.adopt_chain(&[]), 0);

        // An eager receiver replays the chain into one full clone.
        let mut eager = arena(&problem, StoreKind::EagerClone);
        let eid = eager.adopt_chain(&wire);
        assert_eq!(eager.materialise(eid).signature(), state.signature());
    }

    /// Snapshot adoption stores a deep transfer as ONE record, descendants
    /// replay from it, extraction splices its decomposition back into a
    /// root-anchored chain, and releasing it reclaims one record — no
    /// refcount cascade through a re-rooted chain.
    #[test]
    fn adopt_snapshot_costs_one_record_and_splices_on_extract() {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 8, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;
        let mut state = SearchState::initial(&problem);
        for _ in 0..6 {
            let ready = state.ready_nodes(&problem);
            let n = ready[rng.gen_range(0..ready.len())];
            let p = ProcId(rng.gen_range(0..problem.num_procs()) as u32);
            state = state.schedule_node(&problem, n, p, h);
        }

        let mut delta = arena(&problem, StoreKind::DeltaArena);
        let id = delta.adopt_snapshot(state.clone());
        assert_eq!(delta.live_records(), 2, "the pinned initial root plus one snapshot");
        assert_eq!(delta.record_depth(id), state.depth() as usize);
        assert_eq!(delta.materialise(id).signature(), state.signature());

        // A descendant replays from the snapshot, not the distant root.
        let ready = state.ready_nodes(&problem);
        let d = state.peek_child(&problem, ready[0], ProcId(0), h);
        let child = delta.insert_child(id, &d);
        assert_eq!(delta.record_depth(child), state.depth() as usize + 1);
        let replayed_before = delta.replayed_deltas();
        let child_sig = delta.materialise(child).signature();
        assert_eq!(delta.replayed_deltas() - replayed_before, 1, "one delta above the snapshot");

        // Extraction splices the snapshot's decomposition back in: a fresh
        // receiver rebuilds the identical state from its own initial root.
        let wire = delta.extract_chain(child);
        assert_eq!(wire.len(), state.depth() as usize + 1);
        let mut receiver = arena(&problem, StoreKind::DeltaArena);
        let rid = receiver.adopt_chain(&wire);
        assert_eq!(receiver.materialise(rid).signature(), child_sig);

        // Releasing the chain reclaims the snapshot with no cascade beyond it.
        delta.release(child);
        delta.release(id);
        assert_eq!(delta.live_records(), 1, "only the pinned root survives");

        // Depth-0 snapshots reuse the pinned root instead of duplicating it.
        let mut fresh = arena(&problem, StoreKind::DeltaArena);
        assert_eq!(fresh.adopt_snapshot(SearchState::initial(&problem)), 0);
        assert_eq!(fresh.live_records(), 1);
    }

    /// `adopt` is total on delta arenas: an empty one seeds its own initial
    /// root, and one mis-seeded with a non-initial root refuses to replay
    /// chains onto the wrong base instead of corrupting state.
    #[test]
    fn adopt_seeds_an_empty_delta_arena_with_the_initial_root() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let deep = SearchState::initial(&problem)
            .schedule_node(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h)
            .schedule_node(&problem, optsched_taskgraph::NodeId(1), ProcId(1), h);

        let mut arena = arena(&problem, StoreKind::DeltaArena);
        let id = arena.adopt(deep.clone());
        assert_eq!(arena.materialise(id).signature(), deep.signature());
        assert_eq!(arena.materialise(0).depth(), 0, "slot 0 is the seeded initial state");
    }

    #[test]
    #[should_panic(expected = "re-root adopted states at the initial state")]
    fn adopt_rejects_a_delta_arena_rooted_elsewhere() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let non_initial = SearchState::initial(&problem).schedule_node(
            &problem,
            optsched_taskgraph::NodeId(0),
            ProcId(0),
            h,
        );
        let mut arena = arena(&problem, StoreKind::DeltaArena);
        arena.insert_root(non_initial.clone());
        let _ = arena.adopt(non_initial);
    }

    #[test]
    fn peak_live_full_counts_stores_differently() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let root = SearchState::initial(&problem);
        let d = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);

        let mut eager = arena(&problem, StoreKind::EagerClone);
        let r = eager.insert_root(root.clone());
        let c = eager.insert_child(r, &d);
        let _ = eager.materialise(c);
        assert_eq!(eager.peak_live_full(), 2, "eager: every state is a full clone");
        assert_eq!(eager.len(), 2);

        let mut delta = arena(&problem, StoreKind::DeltaArena);
        let r = delta.insert_root(root);
        let c = delta.insert_child(r, &d);
        let _ = delta.materialise(c);
        assert_eq!(delta.peak_live_full(), 2, "delta: the root plus one scratch state");
        assert_eq!(delta.len(), 2);
        assert!(!delta.is_empty());
        assert_eq!(delta.kind(), StoreKind::DeltaArena);
        assert_eq!(delta.config().kind, StoreKind::DeltaArena);
    }
}

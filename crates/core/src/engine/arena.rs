//! Arena-backed storage of generated search states.
//!
//! The pre-engine schedulers kept every generated state as a fully
//! materialised [`SearchState`] — six boxed slices per state, cloned on every
//! generation, held live for the whole run.  The [`StateArena`] replaces that
//! with parent-pointer + [`ChildDelta`] records: a generated state costs one
//! fixed-size record, and the full `SearchState` is rebuilt only when the
//! state is actually selected for expansion, by replaying the delta chain
//! onto a single reusable scratch state (no allocation on the replay path).
//!
//! The eager clone-per-generation layout is retained as
//! [`StoreKind::EagerClone`] so the `ablation_serial` experiment binary can
//! measure the before/after of the arena on identical search behaviour —
//! both stores produce bit-identical search results; only the memory/time
//! profile differs.

use crate::problem::SchedulingProblem;
use crate::state::{ChildDelta, SearchState};

/// Identifier of a state held by a [`StateArena`].
///
/// Ids are dense and allocated in insertion order (the root is id 0), which
/// the search engine relies on for FIFO tie-breaking.
pub type StateId = u32;

/// How the arena stores generated states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreKind {
    /// Every admitted child is materialised immediately (one full clone per
    /// generation) and retained for the whole run — the pre-engine layout,
    /// kept for the before/after measurement in `results/BENCH_serial.json`.
    EagerClone,
    /// Children are stored as parent-id + delta records and materialised
    /// lazily on expansion by replaying the chain onto a scratch state.
    #[default]
    DeltaArena,
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreKind::EagerClone => write!(f, "eager"),
            StoreKind::DeltaArena => write!(f, "arena"),
        }
    }
}

impl std::str::FromStr for StoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "eager" | "clone" => Ok(StoreKind::EagerClone),
            "arena" | "delta" => Ok(StoreKind::DeltaArena),
            other => Err(format!("unknown state store `{other}` (expected eager|arena)")),
        }
    }
}

/// One stored state: a full snapshot, or a delta against its parent.
#[derive(Debug, Clone)]
enum Slot {
    Full(SearchState),
    Delta { parent: StateId, delta: ChildDelta },
}

/// Append-only store of every state a search run has generated.
#[derive(Debug)]
pub struct StateArena<'p> {
    problem: &'p SchedulingProblem,
    kind: StoreKind,
    slots: Vec<Slot>,
    /// Reusable scratch state holding the most recently materialised delta
    /// slot (`None` until the first delta materialisation).  Re-materialising
    /// a descendant of the scratch state replays only the new deltas.
    scratch: Option<(StateId, SearchState)>,
    /// Reusable buffer for the delta chain collected during materialisation.
    chain: Vec<ChildDelta>,
    live_full: usize,
    peak_live_full: usize,
}

impl<'p> StateArena<'p> {
    /// An empty arena for `problem` with the given storage layout.
    pub fn new(problem: &'p SchedulingProblem, kind: StoreKind) -> StateArena<'p> {
        StateArena {
            problem,
            kind,
            slots: Vec::new(),
            scratch: None,
            chain: Vec::new(),
            live_full: 0,
            peak_live_full: 0,
        }
    }

    /// The storage layout in use.
    pub fn kind(&self) -> StoreKind {
        self.kind
    }

    /// Number of states stored (roots + children, both layouts).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no state has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Largest number of fully materialised states held at any point: every
    /// state in the eager layout, only roots plus the scratch state in the
    /// delta layout.  This is the allocation proxy reported by
    /// `results/BENCH_serial.json`.
    pub fn peak_live_full(&self) -> usize {
        self.peak_live_full
    }

    fn note_live_full(&mut self, added: usize) {
        self.live_full += added;
        let scratch = usize::from(self.scratch.is_some());
        self.peak_live_full = self.peak_live_full.max(self.live_full + scratch);
    }

    /// Stores a full state with no parent (the initial state; in the parallel
    /// search, also states received from another PPE).
    pub fn insert_root(&mut self, state: SearchState) -> StateId {
        let id = self.next_id();
        self.slots.push(Slot::Full(state));
        self.note_live_full(1);
        id
    }

    /// Stores the child of `parent` described by `delta`.
    pub fn insert_child(&mut self, parent: StateId, delta: &ChildDelta) -> StateId {
        let id = self.next_id();
        match self.kind {
            StoreKind::EagerClone => {
                let Slot::Full(parent_state) = &self.slots[parent as usize] else {
                    unreachable!("eager arenas store only full states");
                };
                let child = parent_state.apply_delta(self.problem, delta);
                self.slots.push(Slot::Full(child));
                self.note_live_full(1);
            }
            StoreKind::DeltaArena => {
                self.slots.push(Slot::Delta { parent, delta: *delta });
            }
        }
        id
    }

    fn next_id(&self) -> StateId {
        StateId::try_from(self.slots.len()).expect("state arena overflowed StateId")
    }

    /// Adopts a full state produced *outside* this arena (in the parallel
    /// scheduler: a state received from another PPE, or the initial
    /// distribution) and returns its id.
    ///
    /// The eager layout moves it in as one more retained full state — the
    /// clone-per-generation baseline.  The delta layout instead *re-roots*
    /// the state: it is decomposed with [`SearchState::to_delta_chain`] and
    /// stored as a chain of delta records hanging off slot 0, so adopting
    /// never adds a live full state.  A delta arena therefore keeps the
    /// problem's **initial** (empty) state in slot 0 — adopting into an
    /// empty delta arena seeds it automatically, and adopting into one whose
    /// slot 0 is anything else (only possible by inserting a non-initial
    /// root first) panics rather than replay chains onto the wrong base.
    ///
    /// # Panics
    ///
    /// Panics if this is a non-empty delta arena whose slot 0 is not the
    /// initial state.
    pub fn adopt(&mut self, state: SearchState) -> StateId {
        match self.kind {
            StoreKind::EagerClone => self.insert_root(state),
            StoreKind::DeltaArena => {
                if self.slots.is_empty() {
                    self.insert_root(SearchState::initial(self.problem));
                }
                assert!(
                    matches!(&self.slots[0], Slot::Full(s) if s.depth() == 0),
                    "delta arenas re-root adopted states at the initial state in slot 0"
                );
                let mut id: StateId = 0;
                for delta in state.to_delta_chain() {
                    id = self.insert_child(id, &delta);
                }
                id
            }
        }
    }

    /// Materialises the state identified by `id` and returns an owned clone —
    /// the send-path of the parallel scheduler, where a state leaving for
    /// another PPE must outlive this arena's scratch state.
    pub fn materialise_owned(&mut self, id: StateId) -> SearchState {
        self.materialise(id).clone()
    }

    /// Returns the full state identified by `id`, rebuilding it from its
    /// delta chain if necessary.  The returned reference borrows the arena
    /// (it may point into the internal scratch state), so collect whatever
    /// the expansion keeps before inserting new children.
    pub fn materialise(&mut self, id: StateId) -> &SearchState {
        // Fast path: the slot already holds a full state.
        if matches!(self.slots[id as usize], Slot::Full(_)) {
            let Slot::Full(state) = &self.slots[id as usize] else { unreachable!() };
            return state;
        }

        // Collect the delta chain from `id` up to the nearest full snapshot,
        // or to the scratch state if it already holds an ancestor.
        let mut chain = std::mem::take(&mut self.chain);
        chain.clear();
        let scratch_id = self.scratch.as_ref().map(|&(sid, _)| sid);
        let mut cursor = id;
        let base: Option<StateId> = loop {
            if Some(cursor) == scratch_id {
                break None; // replay directly onto the scratch state
            }
            match &self.slots[cursor as usize] {
                Slot::Full(_) => break Some(cursor),
                Slot::Delta { parent, delta } => {
                    chain.push(*delta);
                    cursor = *parent;
                }
            }
        };

        if let Some(base_id) = base {
            let Slot::Full(base_state) = &self.slots[base_id as usize] else { unreachable!() };
            match &mut self.scratch {
                Some((sid, scratch)) => {
                    scratch.copy_from(base_state);
                    *sid = base_id;
                }
                None => {
                    self.scratch = Some((base_id, base_state.clone()));
                    let scratch = usize::from(self.scratch.is_some());
                    self.peak_live_full = self.peak_live_full.max(self.live_full + scratch);
                }
            }
        }
        let (sid, scratch) = self.scratch.as_mut().expect("scratch initialised above");
        for delta in chain.iter().rev() {
            scratch.apply_delta_in_place(self.problem, delta);
        }
        *sid = id;
        self.chain = chain;
        &self.scratch.as_ref().expect("scratch initialised above").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeuristicKind;
    use optsched_procnet::{ProcId, ProcNetwork};
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn store_kind_parses_and_displays() {
        assert_eq!("eager".parse::<StoreKind>().unwrap(), StoreKind::EagerClone);
        assert_eq!("arena".parse::<StoreKind>().unwrap(), StoreKind::DeltaArena);
        assert_eq!("DELTA".parse::<StoreKind>().unwrap(), StoreKind::DeltaArena);
        assert!("bogus".parse::<StoreKind>().is_err());
        assert_eq!(StoreKind::EagerClone.to_string(), "eager");
        assert_eq!(StoreKind::DeltaArena.to_string(), "arena");
        assert_eq!(StoreKind::default(), StoreKind::DeltaArena);
    }

    /// The ISSUE's arena acceptance test: on a random expansion trace, every
    /// state materialised from the delta arena equals the eagerly cloned
    /// state, including after out-of-order materialisation (scratch misses).
    #[test]
    fn materialised_states_equal_eager_clones_on_a_random_trace() {
        let mut rng = StdRng::seed_from_u64(7);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 9, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;

        let mut arena = StateArena::new(&problem, StoreKind::DeltaArena);
        let root = SearchState::initial(&problem);
        let mut eager: Vec<SearchState> = vec![root.clone()];
        let mut parents: Vec<StateId> = vec![arena.insert_root(root)];

        // Random walk: repeatedly pick a random stored state, expand a random
        // (ready node, processor) pair, store the child in both forms.
        for _ in 0..200 {
            let pick = rng.gen_range(0..eager.len());
            let parent = eager[pick].clone();
            let ready = parent.ready_nodes(&problem);
            if ready.is_empty() {
                continue;
            }
            let node = ready[rng.gen_range(0..ready.len())];
            let proc = ProcId(rng.gen_range(0..problem.num_procs()) as u32);
            let delta = parent.peek_child(&problem, node, proc, h);
            let id = arena.insert_child(parents[pick], &delta);
            eager.push(parent.schedule_node(&problem, node, proc, h));
            parents.push(id);
        }

        // Materialise in a shuffled order so the scratch state repeatedly
        // starts over from the root.
        let mut order: Vec<usize> = (0..eager.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in &order {
            let materialised = arena.materialise(parents[i]);
            let want = &eager[i];
            assert_eq!(materialised.signature(), want.signature());
            assert_eq!(materialised.g(), want.g());
            assert_eq!(materialised.h(), want.h());
            assert_eq!(materialised.depth(), want.depth());
            assert_eq!(materialised.max_finish_node(), want.max_finish_node());
            assert_eq!(materialised.ready_nodes(&problem), want.ready_nodes(&problem));
            for p in problem.network().proc_ids() {
                assert_eq!(materialised.proc_ready_time(p), want.proc_ready_time(p));
            }
        }
    }

    /// The scratch fast path: materialising a child of the most recently
    /// materialised state replays exactly one delta.
    #[test]
    fn descendant_materialisation_reuses_the_scratch_state() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = StateArena::new(&problem, StoreKind::DeltaArena);
        let root = SearchState::initial(&problem);
        let d1 = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);
        let root_id = arena.insert_root(root.clone());
        let c1 = arena.insert_child(root_id, &d1);
        let s1 = arena.materialise(c1).clone();
        let d2 = s1.peek_child(&problem, optsched_taskgraph::NodeId(1), ProcId(1), h);
        let c2 = arena.insert_child(c1, &d2);
        // c2 is a child of the scratch (c1): replayed in place.
        let s2 = arena.materialise(c2);
        assert_eq!(s2.depth(), 2);
        assert_eq!(s2.signature(), s1.apply_delta(&problem, &d2).signature());
        // Jumping back to the root still works (scratch rebuilt from the full slot).
        assert_eq!(arena.materialise(root_id).depth(), 0);
        assert_eq!(arena.materialise(c2).depth(), 2);
    }

    /// The transfer-adoption path of the parallel scheduler: a full state
    /// adopted into a delta arena is re-rooted as a delta chain (no new live
    /// full state), materialises back to an identical state, and its
    /// descendants replay correctly.  An eager arena stores one more clone.
    #[test]
    fn adopting_a_full_state_re_roots_it_without_live_fulls() {
        let mut rng = StdRng::seed_from_u64(9);
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 9, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        let h = HeuristicKind::PaperStaticLevel;

        // Build a handful of "transferred" states by random walks.
        let mut transfers: Vec<SearchState> = Vec::new();
        for _ in 0..8 {
            let mut s = SearchState::initial(&problem);
            let depth = rng.gen_range(1..=6);
            for _ in 0..depth {
                let ready = s.ready_nodes(&problem);
                if ready.is_empty() {
                    break;
                }
                let n = ready[rng.gen_range(0..ready.len())];
                let p = ProcId(rng.gen_range(0..problem.num_procs()) as u32);
                s = s.schedule_node(&problem, n, p, h);
            }
            transfers.push(s);
        }

        let mut delta = StateArena::new(&problem, StoreKind::DeltaArena);
        let root = delta.insert_root(SearchState::initial(&problem));
        assert_eq!(root, 0);
        let ids: Vec<StateId> = transfers.iter().map(|s| delta.adopt(s.clone())).collect();
        // Re-rooting stores only delta records: still just the initial root
        // (plus at most one scratch state) live.
        assert!(delta.peak_live_full() <= 2, "peak {}", delta.peak_live_full());
        for (id, want) in ids.iter().zip(&transfers) {
            let got = delta.materialise_owned(*id);
            assert_eq!(got.signature(), want.signature());
            assert_eq!((got.g(), got.h(), got.depth()), (want.g(), want.h(), want.depth()));
            assert_eq!(got.max_finish_node(), want.max_finish_node());
            // A descendant of an adopted state replays through the chain.
            if let Some(&n) = want.ready_nodes(&problem).first() {
                let d = want.peek_child(&problem, n, ProcId(0), h);
                let child = delta.insert_child(*id, &d);
                assert_eq!(
                    delta.materialise(child).signature(),
                    want.apply_delta(&problem, &d).signature()
                );
            }
        }

        let mut eager = StateArena::new(&problem, StoreKind::EagerClone);
        eager.insert_root(SearchState::initial(&problem));
        let id = eager.adopt(transfers[0].clone());
        assert_eq!(eager.materialise(id).signature(), transfers[0].signature());
        assert_eq!(eager.peak_live_full(), 2, "eager adoption clones the state");
    }

    /// `adopt` is total on delta arenas: an empty one seeds its own initial
    /// root, and one mis-seeded with a non-initial root refuses to replay
    /// chains onto the wrong base instead of corrupting state.
    #[test]
    fn adopt_seeds_an_empty_delta_arena_with_the_initial_root() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let deep = SearchState::initial(&problem)
            .schedule_node(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h)
            .schedule_node(&problem, optsched_taskgraph::NodeId(1), ProcId(1), h);

        let mut arena = StateArena::new(&problem, StoreKind::DeltaArena);
        let id = arena.adopt(deep.clone());
        assert_eq!(arena.materialise(id).signature(), deep.signature());
        assert_eq!(arena.materialise(0).depth(), 0, "slot 0 is the seeded initial state");
    }

    #[test]
    #[should_panic(expected = "re-root adopted states at the initial state")]
    fn adopt_rejects_a_delta_arena_rooted_elsewhere() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let non_initial = SearchState::initial(&problem).schedule_node(
            &problem,
            optsched_taskgraph::NodeId(0),
            ProcId(0),
            h,
        );
        let mut arena = StateArena::new(&problem, StoreKind::DeltaArena);
        arena.insert_root(non_initial.clone());
        let _ = arena.adopt(non_initial);
    }

    #[test]
    fn peak_live_full_counts_stores_differently() {
        let problem = example_problem();
        let h = HeuristicKind::PaperStaticLevel;
        let root = SearchState::initial(&problem);
        let d = root.peek_child(&problem, optsched_taskgraph::NodeId(0), ProcId(0), h);

        let mut eager = StateArena::new(&problem, StoreKind::EagerClone);
        let r = eager.insert_root(root.clone());
        let c = eager.insert_child(r, &d);
        let _ = eager.materialise(c);
        assert_eq!(eager.peak_live_full(), 2, "eager: every state is a full clone");
        assert_eq!(eager.len(), 2);

        let mut delta = StateArena::new(&problem, StoreKind::DeltaArena);
        let r = delta.insert_root(root);
        let c = delta.insert_child(r, &d);
        let _ = delta.materialise(c);
        assert_eq!(delta.peak_live_full(), 2, "delta: the root plus one scratch state");
        assert_eq!(delta.len(), 2);
        assert!(!delta.is_empty());
        assert_eq!(delta.kind(), StoreKind::DeltaArena);
    }
}

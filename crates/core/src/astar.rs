//! The serial A* scheduling algorithm (Section 3.1) with the state-space
//! pruning techniques of Section 3.2.
//!
//! The algorithm keeps an OPEN list of un-expanded states ordered by
//! `f = g + h` and a CLOSED set of already-seen partial schedules.  At every
//! iteration the state with the smallest `f` is removed; if it is a goal
//! state the schedule it represents is optimal (the cost function is
//! admissible, Theorem 1), otherwise the state is expanded by assigning every
//! ready node to every candidate processor.
//!
//! ```
//! use optsched_core::{AStarScheduler, SchedulingProblem};
//! use optsched_procnet::ProcNetwork;
//! use optsched_taskgraph::paper_example_dag;
//!
//! let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
//! let result = AStarScheduler::new(&problem).run();
//! assert!(result.is_optimal());
//! assert_eq!(result.schedule_length, 14);
//! ```

use optsched_schedule::Schedule;

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::engine::{run_search, AStarPolicy, ArenaConfig, StoreKind};
use crate::problem::SchedulingProblem;
use crate::stats::SearchResult;

/// Serial A* optimal scheduler: a thin configuration over the unified
/// [`engine`](crate::engine) with the best-first `(f, h, FIFO)` policy.
#[derive(Debug, Clone)]
pub struct AStarScheduler<'a> {
    problem: &'a SchedulingProblem,
    pruning: PruningConfig,
    heuristic: HeuristicKind,
    limits: SearchLimits,
    store: ArenaConfig,
    seed_incumbent: bool,
    warm_start: Option<Schedule>,
}

impl<'a> AStarScheduler<'a> {
    /// A scheduler with every pruning technique enabled and the paper's heuristic.
    pub fn new(problem: &'a SchedulingProblem) -> Self {
        AStarScheduler {
            problem,
            pruning: PruningConfig::all(),
            heuristic: HeuristicKind::PaperStaticLevel,
            limits: SearchLimits::unlimited(),
            store: ArenaConfig::default(),
            seed_incumbent: false,
            warm_start: None,
        }
    }

    /// Selects which pruning techniques to use.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the admissible heuristic.
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Applies resource limits to the run.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the state-store layout (delta arena by default; the eager
    /// clone-per-generation layout exists for before/after measurements).
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store.kind = store;
        self
    }

    /// Enables or disables refcounted arena reclamation (on by default; off
    /// restores the append-only arena for before/after measurements).
    pub fn with_arena_gc(mut self, gc: bool) -> Self {
        self.store.gc = gc;
        self
    }

    /// Sets the materialisation path-cache capacity (0 disables it).
    pub fn with_path_cache(mut self, entries: u32) -> Self {
        self.store.path_cache = entries;
        self
    }

    /// Treats the list-heuristic schedule as an *attained* incumbent, so the
    /// upper-bound rule prunes states that cannot strictly improve on it (see
    /// [`run_search`]).  Off by default: the classic behaviour keeps states
    /// whose `f` merely *equals* the upper bound.
    pub fn with_seeded_incumbent(mut self, seed: bool) -> Self {
        self.seed_incumbent = seed;
        self
    }

    /// Hands the search a complete schedule attained elsewhere (a cached
    /// near-match, an anytime leg of a race) as a candidate starting
    /// incumbent; adopted only when it beats the incumbent the run would
    /// otherwise start from.  The schedule must be feasible for this problem.
    pub fn with_warm_start(mut self, warm: Option<Schedule>) -> Self {
        self.warm_start = warm;
        self
    }

    /// The problem being solved.
    pub fn problem(&self) -> &SchedulingProblem {
        self.problem
    }

    /// Runs the search to completion (or until a limit is hit).
    pub fn run(&self) -> SearchResult {
        run_search(
            self.problem,
            AStarPolicy::new(self.pruning.upper_bound_pruning),
            self.pruning,
            self.heuristic,
            self.limits,
            self.store,
            self.seed_incumbent,
            self.warm_start.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_optimal;
    use crate::stats::SearchOutcome;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::Cost;
    use optsched_taskgraph::paper_example_dag;
    use optsched_workload::{fork_join, generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    /// Figure 4: the optimal schedule of the example DAG on the 3-PE ring has
    /// length 14.
    #[test]
    fn fig4_optimal_schedule_length_is_14() {
        let prob = example_problem();
        let result = AStarScheduler::new(&prob).run();
        assert!(result.is_optimal());
        assert_eq!(result.schedule_length, 14);
        let schedule = result.expect_schedule();
        schedule.validate(prob.graph(), prob.network()).unwrap();
        assert_eq!(schedule.makespan(), 14);
    }

    /// Figure 3: with all pruning techniques the example search stays tiny
    /// (the paper reports 26 generated / 9 expanded states versus an
    /// exhaustive tree of more than 3^6 = 729 states; the exact counts depend
    /// on tie-breaking among the many f = 14 states, so this test pins the
    /// order of magnitude rather than the precise figure).
    #[test]
    fn fig3_search_tree_is_small_with_pruning() {
        let prob = example_problem();
        let with = AStarScheduler::new(&prob).run();
        assert!(with.is_optimal());
        assert!(
            with.stats.generated <= 100,
            "expected a few dozen states, generated {}",
            with.stats.generated
        );
        assert!(with.stats.expanded <= 50, "expanded {}", with.stats.expanded);

        let without = AStarScheduler::new(&prob).with_pruning(PruningConfig::none()).run();
        assert!(without.is_optimal());
        assert_eq!(without.schedule_length, 14);
        assert!(
            without.stats.generated > with.stats.generated,
            "pruning must shrink the search: {} vs {}",
            without.stats.generated,
            with.stats.generated
        );
    }

    #[test]
    fn every_pruning_combination_stays_optimal_on_example() {
        let prob = example_problem();
        for mask in 0u8..16 {
            let cfg = PruningConfig {
                processor_isomorphism: mask & 1 != 0,
                node_equivalence: mask & 2 != 0,
                upper_bound_pruning: mask & 4 != 0,
                priority_ordering: mask & 8 != 0,
            };
            let r = AStarScheduler::new(&prob).with_pruning(cfg).run();
            assert!(r.is_optimal(), "{}", cfg.describe());
            assert_eq!(r.schedule_length, 14, "{}", cfg.describe());
            r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
        }
    }

    #[test]
    fn all_heuristics_agree_on_the_optimum() {
        let prob = example_problem();
        for h in [HeuristicKind::PaperStaticLevel, HeuristicKind::TightStaticLevel, HeuristicKind::Zero] {
            let r = AStarScheduler::new(&prob).with_heuristic(h).run();
            assert!(r.is_optimal());
            assert_eq!(r.schedule_length, 14, "{h:?}");
        }
    }

    #[test]
    fn tight_heuristic_expands_no_more_states() {
        let prob = example_problem();
        let paper = AStarScheduler::new(&prob).run();
        let tight =
            AStarScheduler::new(&prob).with_heuristic(HeuristicKind::TightStaticLevel).run();
        assert!(tight.stats.expanded <= paper.stats.expanded);
        let zero = AStarScheduler::new(&prob).with_heuristic(HeuristicKind::Zero).run();
        assert!(zero.stats.expanded >= paper.stats.expanded);
    }

    #[test]
    fn single_processor_gives_serial_length() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::fully_connected(1));
        let r = AStarScheduler::new(&prob).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length, prob.graph().total_computation());
    }

    #[test]
    fn more_processors_never_hurt() {
        let g = paper_example_dag();
        let mut prev = Cost::MAX;
        for p in 1..=4 {
            let prob = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(p));
            let r = AStarScheduler::new(&prob).run();
            assert!(r.is_optimal());
            assert!(r.schedule_length <= prev, "p={p}");
            prev = r.schedule_length;
        }
    }

    #[test]
    fn optimal_never_exceeds_heuristic_upper_bound() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 9, ccr: 1.0, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let r = AStarScheduler::new(&prob).run();
            assert!(r.is_optimal());
            assert!(r.schedule_length <= prob.upper_bound());
            assert!(r.schedule_length >= prob.lower_bound());
        }
    }

    #[test]
    fn matches_exhaustive_search_on_small_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for ccr in [0.1, 1.0, 10.0] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 7, ccr, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::ring(3));
            let astar = AStarScheduler::new(&prob).run();
            let brute = exhaustive_optimal(&prob);
            assert!(astar.is_optimal());
            assert_eq!(astar.schedule_length, brute, "ccr={ccr}");
        }
    }

    #[test]
    fn fork_join_on_enough_processors_is_perfectly_parallel() {
        let g = fork_join(3, 4, 0);
        let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
        let r = AStarScheduler::new(&prob).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length, 12); // fork + worker + join, no comm
    }

    #[test]
    fn expansion_limit_reports_limit_reached_with_incumbent() {
        let prob = example_problem();
        let r = AStarScheduler::new(&prob).with_limits(SearchLimits::expansions(1)).run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);
        // The incumbent is at worst the list-heuristic schedule, which is complete.
        let s = r.expect_schedule();
        s.validate(prob.graph(), prob.network()).unwrap();
        assert!(r.schedule_length >= 14);
        assert!(r.schedule_length <= prob.upper_bound());
    }

    #[test]
    fn generation_and_time_limits_are_honoured() {
        let prob = example_problem();
        let r = AStarScheduler::new(&prob)
            .with_limits(SearchLimits { max_generated: Some(2), ..Default::default() })
            .run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);

        let r2 = AStarScheduler::new(&prob)
            .with_limits(SearchLimits { max_millis: Some(0), ..Default::default() })
            .run();
        assert_eq!(r2.outcome, SearchOutcome::LimitReached);
    }

    #[test]
    fn target_cost_stops_early() {
        let prob = example_problem();
        // The list-heuristic incumbent already meets a loose target.
        let loose_target = prob.upper_bound();
        let r = AStarScheduler::new(&prob)
            .with_limits(SearchLimits { target_cost: Some(loose_target), ..Default::default() })
            .run();
        assert_eq!(r.outcome, SearchOutcome::TargetReached);
        assert!(r.schedule_length <= loose_target);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let prob = example_problem();
        let r = AStarScheduler::new(&prob).run();
        assert!(r.stats.generated >= r.stats.expanded);
        assert!(r.stats.max_open_size > 0);
        // Every heuristic evaluation corresponds to a generated child that was
        // then either kept, discarded by the upper bound, or a duplicate.
        assert_eq!(
            r.stats.heuristic_evaluations,
            (r.stats.generated - 1) + r.stats.pruned_upper_bound + r.stats.duplicates
        );
        assert!(r.elapsed.as_secs() < 10);
    }

    #[test]
    fn heterogeneous_processors_send_work_to_the_fast_one() {
        let g = fork_join(2, 4, 1);
        let net = ProcNetwork::fully_connected(2).with_cycle_times(&[1, 10]);
        let prob = SchedulingProblem::new(g, net);
        let r = AStarScheduler::new(&prob).run();
        assert!(r.is_optimal());
        // Serial on the fast processor: 4 tasks x 4 units = 16; using the slow
        // processor for a worker would cost 1 + 1 + 40 + ... far more.
        assert_eq!(r.schedule_length, 16);
    }
}

//! A small fixed-capacity bit set used to track which nodes of the DAG are
//! already scheduled in a search state.
//!
//! Task graphs in the paper have at most 32 nodes, but the search must not
//! impose that limit, so the set stores `ceil(n / 64)` words inline in a
//! boxed slice.  Equality and hashing are derived, which lets the bit set be
//! part of a state signature.

/// Fixed-capacity bit set over node indices `0..len`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Box<[u64]>,
    len: usize,
}

impl BitSet {
    /// An empty set able to hold `len` elements.
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64).max(1)].into_boxed_slice(), len }
    }

    /// Capacity of the set.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`; returns true if it was not present before.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range 0..{}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of range 0..{}", self.len);
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// True if `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if every element `0..capacity` is set.
    pub fn is_full(&self) -> bool {
        self.count() == self.len
    }

    /// Iterator over the set elements in increasing order.
    ///
    /// Scans word-by-word, peeling one set bit per step with
    /// `trailing_zeros`, so sparse sets cost O(words + popcount) rather than
    /// O(capacity) membership probes.  Bits above `len` are never set
    /// (`insert` range-checks), so no trailing mask is needed.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let words = &self.words;
        let mut word_idx = 0;
        let mut current = words.first().copied().unwrap_or(0);
        std::iter::from_fn(move || loop {
            if current != 0 {
                let bit = current.trailing_zeros() as usize;
                current &= current - 1;
                return Some(word_idx * 64 + bit);
            }
            word_idx += 1;
            current = *words.get(word_idx)?;
        })
    }

    /// Overwrites this set with the contents of `other` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "copy_from requires equal capacities");
        self.words.copy_from_slice(&other.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(64), "double insert reports false");
        assert_eq!(s.count(), 4);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.count(), 3);
        assert!(!s.is_empty());
        assert!(!s.is_full());
    }

    #[test]
    fn full_set() {
        let mut s = BitSet::new(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
        assert_eq!(s.iter().collect::<Vec<_>>(), (0..65).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_set_is_full_and_empty() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.capacity(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn equal_sets_hash_equal() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        for i in [1usize, 5, 69] {
            a.insert(i);
            b.insert(i);
        }
        assert_eq!(a, b);
        let hash = |s: &BitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        b.insert(2);
        assert_ne!(a, b);
    }

    #[test]
    fn copy_from_overwrites_in_place() {
        let mut a = BitSet::new(70);
        a.insert(3);
        a.insert(69);
        let mut b = BitSet::new(70);
        b.insert(5);
        b.copy_from(&a);
        assert_eq!(a, b);
        assert!(!b.contains(5));
    }

    #[test]
    #[should_panic(expected = "equal capacities")]
    fn copy_from_rejects_capacity_mismatch() {
        let mut a = BitSet::new(10);
        a.copy_from(&BitSet::new(11));
    }

    #[test]
    fn iter_order_is_increasing() {
        let mut s = BitSet::new(128);
        for i in [90usize, 3, 64, 127, 0] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 64, 90, 127]);
    }
}

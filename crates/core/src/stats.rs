//! Search statistics and results.

use std::time::Duration;

use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

/// Machine-independent counters collected during a search run.
///
/// The paper reports running times on the Intel Paragon; this reproduction
/// additionally reports states generated/expanded so the Table 1 comparison
/// can be made independent of the host machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States created and inserted into OPEN.
    pub generated: u64,
    /// States removed from OPEN and expanded.
    pub expanded: u64,
    /// Candidate (node, processor) pairs skipped by processor isomorphism.
    pub pruned_processor_isomorphism: u64,
    /// Ready nodes skipped by node equivalence.
    pub pruned_node_equivalence: u64,
    /// Generated states discarded because `f` exceeded the upper bound.
    pub pruned_upper_bound: u64,
    /// Generated states discarded because an identical partial schedule had
    /// already been seen (OPEN or CLOSED duplicate) by the same search agent
    /// (the serial search, or the PPE itself in the parallel search).
    pub duplicates: u64,
    /// Generated states discarded because a *different* PPE had already
    /// claimed the same partial schedule in the sharded global CLOSED table —
    /// i.e. redundant cross-PPE expansions avoided.  Always zero for the
    /// serial searches and for the parallel search in `Local` mode.
    pub duplicates_global: u64,
    /// Best-state election transfers this agent accepted *with claim
    /// ownership*: the sender popped its best OPEN state and shipped it, so
    /// the receiver keeps it without consulting duplicate detection — an
    /// accepted election transfer is never counted in [`duplicates`] or
    /// [`duplicates_global`].  Non-zero only for the parallel scheduler in
    /// `ShardedGlobal` mode (the `Local` mode keeps the paper's copy-based
    /// election, and serial searches have no elections at all).
    ///
    /// [`duplicates`]: SearchStats::duplicates
    /// [`duplicates_global`]: SearchStats::duplicates_global
    pub election_transfers: u64,
    /// Largest size of the OPEN list observed.
    pub max_open_size: usize,
    /// Largest number of fully materialised states the agent's *state store*
    /// held live at once — the allocation proxy of the store.  With the
    /// delta arena this is the root snapshot(s) plus one scratch state; with
    /// the eager clone-per-generation store it is every state ever stored.
    /// In the parallel scheduler this counts each PPE's arena; transfer
    /// clones parked in the inter-PPE channels (bounded by the `in_flight`
    /// gauge at any instant) are owned by no store and are *not* counted
    /// here.
    pub peak_live_states: u64,
    /// Largest number of simultaneously live arena records (roots + delta
    /// records) the agent's state store held — the O(live frontier) memory
    /// proxy of the refcounted arena.  With reclamation on this tracks the
    /// frontier; with it off it equals the total ever stored.
    pub peak_live_records: u64,
    /// Arena records reclaimed by refcounted release cascades (pruned,
    /// duplicate-dropped or shipped-away subtrees).  Zero with reclamation
    /// disabled.
    pub reclaimed_records: u64,
    /// Delta-chain materialisations performed by the arena (full-snapshot
    /// fast-path reads are free and not counted).
    pub materialisations: u64,
    /// Materialisations whose replay started from a path-cache entry instead
    /// of walking to a full snapshot (scratch-state reuse not counted).
    pub path_cache_hits: u64,
    /// The subset of [`path_cache_hits`](SearchStats::path_cache_hits) whose
    /// cached entry was a strict *ancestor* of the requested state rather
    /// than an exact-id hit — the replay-from-nearest-ancestor win.
    pub path_cache_ancestor_hits: u64,
    /// Total deltas replayed across all materialisations — the arena's CPU
    /// overhead that the scratch state and path-cache exist to shrink.
    pub replayed_deltas: u64,
    /// Total deltas *not* replayed because materialisation reused the scratch
    /// state or a cached ancestor as its base instead of walking to a full
    /// snapshot (the depth of the reused base, summed over those replays).
    pub replayed_deltas_saved: u64,
    /// Heuristic evaluations performed (one per generated state; the Chen &
    /// Yu baseline additionally counts its per-path evaluations here).
    pub heuristic_evaluations: u64,
    /// Total execution-path segments enumerated by the Chen & Yu bound
    /// (zero for the A* family); a proxy for the cost-function evaluation
    /// expense highlighted in Section 4.2.
    pub path_segments_enumerated: u64,
}

impl SearchStats {
    /// Sum of all states discarded by any pruning rule.
    pub fn total_pruned(&self) -> u64 {
        self.pruned_processor_isomorphism
            + self.pruned_node_equivalence
            + self.pruned_upper_bound
            + self.duplicates
            + self.duplicates_global
    }

    /// Accumulates `other` into `self`: additive counters are summed,
    /// high-water marks take the maximum.
    ///
    /// This is the single place that defines how per-PPE statistics aggregate.
    /// The exhaustive destructuring below makes adding a `SearchStats` field
    /// without deciding its aggregation a compile error, so the totals
    /// reported by the parallel scheduler can never silently drop a counter.
    pub fn merge(&mut self, other: &SearchStats) {
        let SearchStats {
            generated,
            expanded,
            pruned_processor_isomorphism,
            pruned_node_equivalence,
            pruned_upper_bound,
            duplicates,
            duplicates_global,
            election_transfers,
            max_open_size,
            peak_live_states,
            peak_live_records,
            reclaimed_records,
            materialisations,
            path_cache_hits,
            path_cache_ancestor_hits,
            replayed_deltas,
            replayed_deltas_saved,
            heuristic_evaluations,
            path_segments_enumerated,
        } = other;
        self.generated += generated;
        self.expanded += expanded;
        self.pruned_processor_isomorphism += pruned_processor_isomorphism;
        self.pruned_node_equivalence += pruned_node_equivalence;
        self.pruned_upper_bound += pruned_upper_bound;
        self.duplicates += duplicates;
        self.duplicates_global += duplicates_global;
        self.election_transfers += election_transfers;
        self.max_open_size = self.max_open_size.max(*max_open_size);
        self.peak_live_states = self.peak_live_states.max(*peak_live_states);
        self.peak_live_records = self.peak_live_records.max(*peak_live_records);
        self.reclaimed_records += reclaimed_records;
        self.materialisations += materialisations;
        self.path_cache_hits += path_cache_hits;
        self.path_cache_ancestor_hits += path_cache_ancestor_hits;
        self.replayed_deltas += replayed_deltas;
        self.replayed_deltas_saved += replayed_deltas_saved;
        self.heuristic_evaluations += heuristic_evaluations;
        self.path_segments_enumerated += path_segments_enumerated;
    }
}

/// Why a search run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A goal state with minimal `f` was expanded: the schedule is optimal
    /// (or, for Aε*, within the configured bound of optimal).
    Optimal,
    /// The search hit the configured target cost and returned the incumbent.
    TargetReached,
    /// The search ran out of the configured expansion/generation/time budget;
    /// the best incumbent (if any) is returned without an optimality claim.
    LimitReached,
    /// The search space was exhausted without finding a complete schedule
    /// (cannot happen for a connected processor network, kept for totality).
    Exhausted,
    /// The schedule was produced by a non-search heuristic (list scheduling):
    /// feasible, but with no optimality claim.  Used by the facade's
    /// scheduler registry.
    Heuristic,
}

/// Result of a search run: the schedule (if one was found), its length, the
/// guarantee that applies to it, and the collected statistics.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best complete schedule found, if any.
    pub schedule: Option<Schedule>,
    /// Schedule length of `schedule` (0 when none was found).
    pub schedule_length: Cost,
    /// Why the search stopped.
    pub outcome: SearchOutcome,
    /// Counters.
    pub stats: SearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl SearchResult {
    /// True if the result carries an optimality guarantee.
    pub fn is_optimal(&self) -> bool {
        self.outcome == SearchOutcome::Optimal
    }

    /// The schedule, panicking with a clear message if none was produced.
    pub fn expect_schedule(&self) -> &Schedule {
        self.schedule.as_ref().expect("search did not produce a schedule")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_pruned_sums_every_category() {
        let s = SearchStats {
            pruned_processor_isomorphism: 1,
            pruned_node_equivalence: 2,
            pruned_upper_bound: 3,
            duplicates: 4,
            duplicates_global: 5,
            ..Default::default()
        };
        assert_eq!(s.total_pruned(), 15);
    }

    /// Pins the aggregation rule of every single field.  The struct literals
    /// deliberately avoid `..Default::default()`: adding a field to
    /// `SearchStats` must break this test (and `merge` itself) until its
    /// aggregation is specified here.
    #[test]
    fn merge_covers_every_field() {
        let a = SearchStats {
            generated: 1,
            expanded: 2,
            pruned_processor_isomorphism: 3,
            pruned_node_equivalence: 4,
            pruned_upper_bound: 5,
            duplicates: 6,
            duplicates_global: 7,
            election_transfers: 12,
            max_open_size: 9,
            peak_live_states: 8,
            peak_live_records: 13,
            reclaimed_records: 14,
            materialisations: 15,
            path_cache_hits: 16,
            path_cache_ancestor_hits: 18,
            replayed_deltas: 17,
            replayed_deltas_saved: 19,
            heuristic_evaluations: 10,
            path_segments_enumerated: 11,
        };
        let b = SearchStats {
            generated: 100,
            expanded: 200,
            pruned_processor_isomorphism: 300,
            pruned_node_equivalence: 400,
            pruned_upper_bound: 500,
            duplicates: 600,
            duplicates_global: 700,
            election_transfers: 1200,
            max_open_size: 4,
            peak_live_states: 3,
            peak_live_records: 5,
            reclaimed_records: 1400,
            materialisations: 1500,
            path_cache_hits: 1600,
            path_cache_ancestor_hits: 1800,
            replayed_deltas: 1700,
            replayed_deltas_saved: 1900,
            heuristic_evaluations: 1000,
            path_segments_enumerated: 1100,
        };
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(
            merged,
            SearchStats {
                generated: 101,
                expanded: 202,
                pruned_processor_isomorphism: 303,
                pruned_node_equivalence: 404,
                pruned_upper_bound: 505,
                duplicates: 606,
                duplicates_global: 707,
                election_transfers: 1212,
                max_open_size: 9,      // high-water mark: max, not sum
                peak_live_states: 8,   // high-water mark: max, not sum
                peak_live_records: 13, // high-water mark: max, not sum
                reclaimed_records: 1414,
                materialisations: 1515,
                path_cache_hits: 1616,
                path_cache_ancestor_hits: 1818,
                replayed_deltas: 1717,
                replayed_deltas_saved: 1919,
                heuristic_evaluations: 1010,
                path_segments_enumerated: 1111,
            }
        );

        // Merging into a default is identity.
        let mut from_zero = SearchStats::default();
        from_zero.merge(&a);
        assert_eq!(from_zero, a);
    }

    #[test]
    fn result_accessors() {
        let r = SearchResult {
            schedule: None,
            schedule_length: 0,
            outcome: SearchOutcome::LimitReached,
            stats: SearchStats::default(),
            elapsed: Duration::from_millis(5),
        };
        assert!(!r.is_optimal());
    }

    #[test]
    #[should_panic(expected = "did not produce a schedule")]
    fn expect_schedule_panics_without_schedule() {
        let r = SearchResult {
            schedule: None,
            schedule_length: 0,
            outcome: SearchOutcome::Exhausted,
            stats: SearchStats::default(),
            elapsed: Duration::ZERO,
        };
        r.expect_schedule();
    }
}

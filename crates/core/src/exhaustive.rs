//! Brute-force optimal scheduling for very small instances.
//!
//! A plain depth-first enumeration of every `(ready node, processor)`
//! decision, with duplicate-state elimination and pruning only against the
//! best complete schedule found so far (which preserves exactness because
//! `g` never decreases along a path).  Exponential — intended primarily as
//! the ground truth for the unit and property tests of the search
//! algorithms.
//!
//! Since the move onto the unified [`engine`](crate::engine) the enumerator
//! is an ordinary scheduler: it honours [`SearchLimits`] (a bounded run
//! returns the best incumbent with
//! [`SearchOutcome::LimitReached`](crate::stats::SearchOutcome)) and reports
//! full [`SearchStats`](crate::stats::SearchStats).

use optsched_taskgraph::Cost;

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::engine::{run_search, ArenaConfig, DfsPolicy, StoreKind};
use crate::problem::SchedulingProblem;
use crate::stats::{SearchOutcome, SearchResult};

/// Exhaustive depth-first enumeration scheduler.
///
/// Use only for small instances (roughly `v <= 10` and `p <= 4`); the tests
/// of this workspace use it to certify the optimality of the A* results.
#[derive(Debug, Clone)]
pub struct ExhaustiveScheduler<'a> {
    problem: &'a SchedulingProblem,
    limits: SearchLimits,
    store: ArenaConfig,
}

impl<'a> ExhaustiveScheduler<'a> {
    /// Creates the enumerator.
    pub fn new(problem: &'a SchedulingProblem) -> Self {
        ExhaustiveScheduler { problem, limits: SearchLimits::unlimited(), store: ArenaConfig::default() }
    }

    /// Applies resource limits to the run (previously the enumerator ignored
    /// them; on the engine they come for free).
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the state-store layout (delta arena by default).
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store.kind = store;
        self
    }

    /// Enables or disables refcounted arena reclamation (on by default).
    pub fn with_arena_gc(mut self, gc: bool) -> Self {
        self.store.gc = gc;
        self
    }

    /// Sets the materialisation path-cache capacity (0 disables it).
    pub fn with_path_cache(mut self, entries: u32) -> Self {
        self.store.path_cache = entries;
        self
    }

    /// Runs the enumeration.  An exhausted frontier *is* the optimality
    /// proof, so a run that was not cut short reports
    /// [`SearchOutcome::Optimal`].
    pub fn run(&self) -> SearchResult {
        // Never seeded: `DfsPolicy`'s goal test treats the passed incumbent
        // length with its own strictness, and the engine pre-seeds the
        // incumbent *schedule* anyway, so the enumerator effectively starts
        // from the list upper bound already.
        let mut result = run_search(
            self.problem,
            DfsPolicy::new(),
            PruningConfig::none(),
            HeuristicKind::Zero,
            self.limits,
            self.store,
            false,
            None,
        );
        if result.outcome == SearchOutcome::Exhausted {
            result.outcome = SearchOutcome::Optimal;
        }
        result
    }
}

/// Returns the optimal schedule length of `problem` by exhaustive enumeration.
///
/// Convenience wrapper over [`ExhaustiveScheduler`] with no limits.
pub fn exhaustive_optimal(problem: &SchedulingProblem) -> Cost {
    ExhaustiveScheduler::new(problem).run().schedule_length
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, GraphBuilder};
    use optsched_workload::chain;

    #[test]
    fn exhaustive_finds_14_on_the_example() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        assert_eq!(exhaustive_optimal(&prob), 14);
    }

    #[test]
    fn chain_cannot_be_parallelised() {
        let prob = SchedulingProblem::new(chain(5, 3, 1), ProcNetwork::fully_connected(3));
        assert_eq!(exhaustive_optimal(&prob), 15);
    }

    #[test]
    fn independent_tasks_spread_over_processors() {
        // Two independent tasks joined by nothing but a common sink with zero cost.
        let mut b = GraphBuilder::new();
        let a = b.add_node(5);
        let c = b.add_node(5);
        let sink = b.add_node(1);
        b.add_edge(a, sink, 0).unwrap();
        b.add_edge(c, sink, 0).unwrap();
        let prob = SchedulingProblem::new(b.build().unwrap(), ProcNetwork::fully_connected(2));
        assert_eq!(exhaustive_optimal(&prob), 6);
    }

    #[test]
    fn single_processor_is_serial() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::fully_connected(1));
        assert_eq!(exhaustive_optimal(&prob), 19);
    }

    #[test]
    fn unbounded_run_proves_optimality_and_reports_stats() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        let r = ExhaustiveScheduler::new(&prob).run();
        assert!(r.is_optimal());
        assert_eq!(r.schedule_length, 14);
        r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
        assert!(r.stats.expanded > 0);
        // Every stored state is popped exactly once; only goal pops are not
        // expansions (on the paper example the list upper bound equals the
        // optimum, so no goal child survives the bound and the two are equal).
        assert!(r.stats.generated >= r.stats.expanded);
    }

    /// The satellite requirement of the engine refactor: the enumerator now
    /// honours `SearchLimits` instead of silently ignoring them.
    #[test]
    fn limits_are_honoured() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        let r = ExhaustiveScheduler::new(&prob).with_limits(SearchLimits::expansions(2)).run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);
        assert!(r.stats.expanded <= 2);
        // The incumbent falls back to the (feasible) list-heuristic schedule.
        let s = r.expect_schedule();
        s.validate(prob.graph(), prob.network()).unwrap();
        assert!(r.schedule_length >= 14);

        let timed = ExhaustiveScheduler::new(&prob)
            .with_limits(SearchLimits { max_millis: Some(0), ..Default::default() })
            .run();
        assert_eq!(timed.outcome, SearchOutcome::LimitReached);
    }
}

//! Brute-force optimal scheduling for very small instances.
//!
//! A plain depth-first enumeration of every `(ready node, processor)`
//! decision, with duplicate-state elimination and pruning only against the
//! best complete schedule found so far (which preserves exactness because
//! `g` never decreases along a path).  Exponential — intended solely as the
//! ground truth for the unit and property tests of the search algorithms.

use std::collections::HashSet;

use optsched_taskgraph::Cost;

use crate::config::HeuristicKind;
use crate::problem::SchedulingProblem;
use crate::state::{SearchState, StateSignature};

/// Returns the optimal schedule length of `problem` by exhaustive enumeration.
///
/// Use only for small instances (roughly `v <= 8` and `p <= 4`); the tests of
/// this workspace use it to certify the optimality of the A* results.
pub fn exhaustive_optimal(problem: &SchedulingProblem) -> Cost {
    let mut best = problem.upper_bound();
    let mut seen: HashSet<StateSignature> = HashSet::new();
    let mut stack = vec![SearchState::initial(problem)];
    while let Some(state) = stack.pop() {
        if state.is_goal(problem) {
            best = best.min(state.g());
            continue;
        }
        for node in state.ready_nodes(problem) {
            for proc in problem.network().proc_ids() {
                let child = state.schedule_node(problem, node, proc, HeuristicKind::Zero);
                if child.g() >= best && child.is_goal(problem) {
                    continue;
                }
                if child.g() > best {
                    // g only grows along a path, so this subtree cannot improve.
                    continue;
                }
                if seen.insert(child.signature()) {
                    stack.push(child);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, GraphBuilder};
    use optsched_workload::chain;

    #[test]
    fn exhaustive_finds_14_on_the_example() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        assert_eq!(exhaustive_optimal(&prob), 14);
    }

    #[test]
    fn chain_cannot_be_parallelised() {
        let prob = SchedulingProblem::new(chain(5, 3, 1), ProcNetwork::fully_connected(3));
        assert_eq!(exhaustive_optimal(&prob), 15);
    }

    #[test]
    fn independent_tasks_spread_over_processors() {
        // Two independent tasks joined by nothing but a common sink with zero cost.
        let mut b = GraphBuilder::new();
        let a = b.add_node(5);
        let c = b.add_node(5);
        let sink = b.add_node(1);
        b.add_edge(a, sink, 0).unwrap();
        b.add_edge(c, sink, 0).unwrap();
        let prob = SchedulingProblem::new(b.build().unwrap(), ProcNetwork::fully_connected(2));
        assert_eq!(exhaustive_optimal(&prob), 6);
    }

    #[test]
    fn single_processor_is_serial() {
        let prob = SchedulingProblem::new(paper_example_dag(), ProcNetwork::fully_connected(1));
        assert_eq!(exhaustive_optimal(&prob), 19);
    }
}

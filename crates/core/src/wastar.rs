//! Weighted-A\* scheduling: the anytime/deadline-pressure member of the A\*
//! family.
//!
//! The scheduler orders its frontier by the inflated cost `g + w · h`
//! (`w ≥ 1`), which drives the search towards complete schedules much
//! earlier than plain A\* at the price of a bounded deviation: the first
//! goal state removed from the frontier is guaranteed to be within `w ×` the
//! optimal schedule length (the classic weighted-A\* bound — `h` is
//! admissible, so `g* ≤ g ≤ g + w·h(goal path) ≤ w · f*`).  Upper-bound
//! pruning stays on the *uninflated* `f`, so the weight only changes the
//! visit order, never the reachable set.
//!
//! This is the `FrontierPolicy` plug-in anticipated by the PR 3 follow-up
//! ("a weighted-A\*/anytime variant is now a ~60-line plug-in") and the
//! algorithm the scheduling service runs under deadline pressure: a run cut
//! short by [`SearchLimits::max_millis`] returns its incumbent — typically
//! far better than the list schedule — as an *anytime* answer.
//!
//! ```
//! use optsched_core::{AStarScheduler, SchedulingProblem, WAStarScheduler};
//! use optsched_procnet::ProcNetwork;
//! use optsched_taskgraph::paper_example_dag;
//!
//! let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
//! // At weight 1.0 the search is bit-identical to A*.
//! let exact = WAStarScheduler::new(&problem, 1.0).run();
//! assert_eq!(exact.schedule_length, 14);
//! // A larger weight still stays within w x optimal (here it finds 14 too).
//! let fast = WAStarScheduler::new(&problem, 2.0).run();
//! assert!(fast.schedule_length <= 28);
//! ```

use optsched_schedule::Schedule;

use crate::config::{HeuristicKind, PruningConfig, SearchLimits};
use crate::engine::{run_search, ArenaConfig, StoreKind, WeightedAStarPolicy};
use crate::problem::SchedulingProblem;
use crate::stats::SearchResult;

/// Weighted-A\* scheduler: a thin configuration over the unified
/// [`engine`](crate::engine) with the `g + w · h` ordering policy.
///
/// An outcome of [`SearchOutcome::Optimal`](crate::stats::SearchOutcome)
/// means "completed with the `w`-bounded guarantee" (exactly optimal when
/// `w = 1`), mirroring the Aε\* convention.
#[derive(Debug, Clone)]
pub struct WAStarScheduler<'a> {
    problem: &'a SchedulingProblem,
    weight: f64,
    pruning: PruningConfig,
    heuristic: HeuristicKind,
    limits: SearchLimits,
    store: ArenaConfig,
    seed_incumbent: bool,
    warm_start: Option<Schedule>,
}

impl<'a> WAStarScheduler<'a> {
    /// A scheduler with heuristic weight `weight` (`>= 1`; 1 is plain A\*).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is below 1 or not finite.
    pub fn new(problem: &'a SchedulingProblem, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 1.0, "weight must be a finite number >= 1");
        WAStarScheduler {
            problem,
            weight,
            pruning: PruningConfig::all(),
            heuristic: HeuristicKind::PaperStaticLevel,
            limits: SearchLimits::unlimited(),
            store: ArenaConfig::default(),
            seed_incumbent: false,
            warm_start: None,
        }
    }

    /// The heuristic weight `w`.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Selects which pruning techniques to use.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Selects the admissible heuristic (inflated only in the ordering).
    pub fn with_heuristic(mut self, heuristic: HeuristicKind) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Applies resource limits to the run.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Selects the state-store layout (delta arena by default).
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store.kind = store;
        self
    }

    /// Enables or disables refcounted arena reclamation (on by default).
    pub fn with_arena_gc(mut self, gc: bool) -> Self {
        self.store.gc = gc;
        self
    }

    /// Sets the materialisation path-cache capacity (0 disables it).
    pub fn with_path_cache(mut self, entries: u32) -> Self {
        self.store.path_cache = entries;
        self
    }

    /// Treats the list-heuristic schedule as an attained incumbent (strict
    /// upper-bound pruning; see [`run_search`]).  Off by default.
    pub fn with_seeded_incumbent(mut self, seed: bool) -> Self {
        self.seed_incumbent = seed;
        self
    }

    /// Hands the search a complete schedule attained elsewhere as a candidate
    /// starting incumbent (adopted only when strictly better; must be
    /// feasible for this problem).
    pub fn with_warm_start(mut self, warm: Option<Schedule>) -> Self {
        self.warm_start = warm;
        self
    }

    /// Runs the search to completion (or until a limit is hit).
    pub fn run(&self) -> SearchResult {
        run_search(
            self.problem,
            WeightedAStarPolicy::new(self.weight, self.pruning.upper_bound_pruning),
            self.pruning,
            self.heuristic,
            self.limits,
            self.store,
            self.seed_incumbent,
            self.warm_start.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::AStarScheduler;
    use crate::stats::SearchOutcome;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, Cost};
    use optsched_workload::{generate_random_dag, RandomDagConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    /// At weight 1 the search is A*, down to the exact expansion counts.
    #[test]
    fn weight_one_is_bit_identical_to_astar() {
        let mut rng = StdRng::seed_from_u64(42);
        for ccr in [0.1, 1.0, 10.0] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 8, ccr, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let a = AStarScheduler::new(&prob).run();
            let w = WAStarScheduler::new(&prob, 1.0).run();
            assert_eq!(a.schedule_length, w.schedule_length, "ccr={ccr}");
            assert_eq!(
                (a.stats.expanded, a.stats.generated, a.stats.duplicates),
                (w.stats.expanded, w.stats.generated, w.stats.duplicates),
                "ccr={ccr}"
            );
        }
    }

    /// Larger weights stay within the `w x optimal` bound and typically
    /// reach a goal with fewer expansions.
    #[test]
    fn weight_bound_holds_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..3 {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 9, ccr: 1.0, ..Default::default() },
                &mut rng,
            );
            let prob = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
            let optimal = AStarScheduler::new(&prob).run().schedule_length;
            for weight in [1.2, 1.5, 2.0] {
                let r = WAStarScheduler::new(&prob, weight).run();
                assert_eq!(r.outcome, SearchOutcome::Optimal);
                let bound = (optimal as f64 * weight).floor() as Cost;
                assert!(
                    r.schedule_length >= optimal && r.schedule_length <= bound,
                    "w={weight}: {} outside [{optimal}, {bound}]",
                    r.schedule_length
                );
                r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
            }
        }
    }

    /// The deadline-pressure contract: even a 0 ms budget yields a feasible
    /// schedule (the pre-seeded list incumbent) with `LimitReached`.
    #[test]
    fn zero_deadline_returns_the_list_incumbent() {
        let prob = example_problem();
        let r = WAStarScheduler::new(&prob, 1.5)
            .with_limits(SearchLimits { max_millis: Some(0), ..Default::default() })
            .run();
        assert_eq!(r.outcome, SearchOutcome::LimitReached);
        let s = r.expect_schedule();
        s.validate(prob.graph(), prob.network()).unwrap();
        assert!(r.schedule_length <= prob.upper_bound());
    }

    #[test]
    fn seeded_weighted_search_stays_within_bound() {
        let prob = example_problem();
        let r = WAStarScheduler::new(&prob, 1.5).with_seeded_incumbent(true).run();
        assert_eq!(r.outcome, SearchOutcome::Optimal);
        assert!(r.schedule_length <= 21); // 1.5 x 14
        r.expect_schedule().validate(prob.graph(), prob.network()).unwrap();
    }

    #[test]
    #[should_panic(expected = "weight must be")]
    fn sub_one_weight_is_rejected() {
        let prob = example_problem();
        let _ = WAStarScheduler::new(&prob, 0.9);
    }
}

//! Configuration of the search algorithms: pruning switches, heuristic
//! choice and resource limits.

use optsched_taskgraph::Cost;

/// Which admissible heuristic `h(s)` the search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeuristicKind {
    /// The paper's heuristic: `h(s) = max over successors of n_max of sl(n_j)`,
    /// where `n_max` is the scheduled node with the largest finish time and
    /// `sl` is the static level (Section 3.1).
    #[default]
    PaperStaticLevel,
    /// A tighter (still admissible) variant used for the ablation study:
    /// `h(s) = max over every scheduled node n of
    ///   (FT(n) + max over unscheduled successors of n of sl) − g(s)`.
    /// Dominates `PaperStaticLevel` at a slightly higher evaluation cost.
    TightStaticLevel,
    /// `h(s) = 0`: degenerates A* into uniform-cost / exhaustive search.
    /// Included to quantify how much the heuristic itself contributes.
    Zero,
}

/// Switches for the four state-space pruning techniques of Section 3.2.
///
/// All techniques preserve optimality; switching them off only affects how
/// many states the search generates and expands (the middle column of
/// Table 1 is the search with every switch off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningConfig {
    /// Processor isomorphism: among *empty* processors that are structurally
    /// interchangeable, expand only one representative (Definition 2).
    pub processor_isomorphism: bool,
    /// Node equivalence: among ready nodes that are equivalent
    /// (Definition 3), expand only the one with the smallest id.
    pub node_equivalence: bool,
    /// Upper-bound solution cost: discard any generated state whose `f`
    /// exceeds the schedule length produced by the linear-time list heuristic.
    pub upper_bound_pruning: bool,
    /// Priority assignment: consider ready nodes in decreasing
    /// b-level + t-level order (ties by node id) instead of plain id order,
    /// and use the same priority to break ties among equal-`f` states in
    /// OPEN, so less important nodes are examined later.
    pub priority_ordering: bool,
}

impl PruningConfig {
    /// Every pruning technique enabled (the paper's "A*" column).
    pub fn all() -> PruningConfig {
        PruningConfig {
            processor_isomorphism: true,
            node_equivalence: true,
            upper_bound_pruning: true,
            priority_ordering: true,
        }
    }

    /// Every pruning technique disabled (the paper's "A* full" column).
    pub fn none() -> PruningConfig {
        PruningConfig {
            processor_isomorphism: false,
            node_equivalence: false,
            upper_bound_pruning: false,
            priority_ordering: false,
        }
    }

    /// Human-readable list of the enabled techniques (used by the benches).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.processor_isomorphism {
            parts.push("proc-iso");
        }
        if self.node_equivalence {
            parts.push("node-equiv");
        }
        if self.upper_bound_pruning {
            parts.push("upper-bound");
        }
        if self.priority_ordering {
            parts.push("priority");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig::all()
    }
}

/// Resource limits for a search run.
///
/// The A* family can need exponential time and memory in the worst case
/// (Section 3.1); limits let callers bound a run and still obtain the best
/// incumbent found so far, reported as
/// [`SearchOutcome::LimitReached`](crate::stats::SearchOutcome).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of states the search may *expand* (`None` = unlimited).
    pub max_expansions: Option<u64>,
    /// Maximum number of states the search may *generate* (`None` = unlimited).
    pub max_generated: Option<u64>,
    /// Wall-clock budget in milliseconds (`None` = unlimited).
    pub max_millis: Option<u64>,
    /// Stop as soon as an incumbent with cost `<=` this value is known
    /// (`None` = only stop at proven optimality).  Used by tests and by the
    /// parallel search's termination protocol.
    pub target_cost: Option<Cost>,
}

impl SearchLimits {
    /// Unlimited search.
    pub fn unlimited() -> SearchLimits {
        SearchLimits::default()
    }

    /// Limit only the number of expanded states.
    pub fn expansions(n: u64) -> SearchLimits {
        SearchLimits { max_expansions: Some(n), ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_lists_enabled_techniques() {
        assert_eq!(PruningConfig::none().describe(), "none");
        assert_eq!(PruningConfig::all().describe(), "proc-iso+node-equiv+upper-bound+priority");
        let only_iso = PruningConfig { processor_isomorphism: true, ..PruningConfig::none() };
        assert_eq!(only_iso.describe(), "proc-iso");
    }

    #[test]
    fn default_is_all_pruning() {
        assert_eq!(PruningConfig::default(), PruningConfig::all());
    }

    #[test]
    fn default_limits_are_unlimited() {
        let l = SearchLimits::default();
        assert!(l.max_expansions.is_none());
        assert!(l.max_generated.is_none());
        assert!(l.max_millis.is_none());
        assert!(l.target_cost.is_none());
        assert_eq!(SearchLimits::unlimited(), l);
        assert_eq!(SearchLimits::expansions(5).max_expansions, Some(5));
    }

    #[test]
    fn heuristic_default_is_paper() {
        assert_eq!(HeuristicKind::default(), HeuristicKind::PaperStaticLevel);
    }
}

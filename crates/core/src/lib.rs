//! Optimal and near-optimal DAG scheduling via state-space search.
//!
//! This crate implements the contribution of Kwok & Ahmad, *"Optimal and
//! Near-Optimal Allocation of Precedence-Constrained Tasks to Parallel
//! Processors"* (ICPP'98):
//!
//! * [`astar`] — the serial **A\*** scheduler with the paper's cheap
//!   admissible cost function `f(s) = g(s) + h(s)` and the four state-space
//!   pruning techniques (processor isomorphism, priority ordering, node
//!   equivalence, upper-bound cost), each individually switchable through
//!   [`PruningConfig`];
//! * [`aeps`] — the approximate **Aε\*** scheduler (Pearl & Kim semi-
//!   admissible search) with a FOCAL list, guaranteeing a schedule length
//!   within `(1 + ε)` of optimal;
//! * [`bnb`] — a re-implementation of the **Chen & Yu branch-and-bound**
//!   baseline whose underestimate is evaluated by expensive explicit
//!   enumeration of the execution paths, used for the Table 1 comparison;
//! * [`exhaustive`] — brute-force enumeration for tiny problems, used by the
//!   tests to certify optimality of the search algorithms.
//!
//! All four are thin configurations over the unified [`engine`]: one generic
//! best-first run loop parameterised by a [`FrontierPolicy`], on top of an
//! arena-backed state store ([`StateArena`]) that keeps generated states as
//! parent + delta records instead of full clones.
//!
//! The entry point is [`SchedulingProblem`], which bundles the task graph,
//! the processor network and the precomputed level attributes:
//!
//! ```
//! use optsched_core::{AStarScheduler, SchedulingProblem};
//! use optsched_procnet::ProcNetwork;
//! use optsched_taskgraph::paper_example_dag;
//!
//! let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
//! let result = AStarScheduler::new(&problem).run();
//! let schedule = result.schedule.expect("search completed");
//! assert_eq!(schedule.makespan(), 14); // Figure 4 of the paper
//! ```

#![warn(missing_docs)]

pub mod aeps;
pub mod astar;
pub mod bitset;
pub mod bnb;
pub mod config;
pub mod engine;
pub mod exhaustive;
pub mod problem;
pub mod state;
pub mod stats;
pub mod wastar;

pub use aeps::AEpsScheduler;
pub use astar::AStarScheduler;
pub use bnb::ChenYuScheduler;
pub use config::{HeuristicKind, PruningConfig, SearchLimits};
pub use engine::{ArenaConfig, DuplicateFilter, FrontierPolicy, StateArena, StoreKind};
pub use exhaustive::{exhaustive_optimal, ExhaustiveScheduler};
pub use wastar::WAStarScheduler;
pub use problem::SchedulingProblem;
pub use state::{ChildDelta, SearchState};
pub use stats::{SearchOutcome, SearchResult, SearchStats};

//! `optsched` — command-line front end for the DAG schedulers.
//!
//! ```text
//! optsched schedule --input graph.json [--procs 4] [--topology ring|mesh|full|chain|star|hypercube]
//!                   [--algorithm astar|wastar|aeps|chenyu|exhaustive|list|parallel] [--epsilon 0.2]
//!                   [--weight 1.5] [--seed-incumbent] [--ppes 4] [--dup-detection local|sharded]
//!                   [--shards N] [--budget-ms N] [--max-expansions N] [--store eager|arena]
//!                   [--arena-gc on|off] [--path-cache K] [--election-batch B]
//!                   [--trace-out trace.json] [--gantt] [--json]
//! optsched generate --nodes 20 --ccr 1.0 [--seed 7] [--output graph.json]
//! optsched example
//! optsched levels --input graph.json
//! optsched serve [--workers 2] [--listen 127.0.0.1:7878] [--admission-budget N]
//!                [--degrade-threshold N] [--degrade-deadline-ms N] [--cache-capacity N]
//!                [--cache-max-age-ms N] [--summary-interval-ms N] [--trace-out trace.json]
//! optsched batch --requests reqs.jsonl|- [--workers 2] [--min-cache-hits N] [--summary]
//!                [--admission-budget N] [--degrade-threshold N] [--degrade-deadline-ms N]
//!                [--cache-capacity N] [--cache-max-age-ms N]
//! optsched requests --count 20 [--seed 7] [--output reqs.jsonl]
//! ```
//!
//! The `--algorithm` value is resolved through the facade's
//! [`SchedulerRegistry`]; the CLI has no per-algorithm code paths.
//! `--store eager|arena` selects the state-store layout for the serial
//! engine *and* the per-PPE arenas of `--algorithm parallel`, whose counter
//! output includes the store's `peak_live_states` high-water mark.
//! `--arena-gc on|off` toggles the store's refcounted reclamation of dead
//! delta chains and `--path-cache K` sizes its materialisation replay cache
//! (0 disables it); every run prints the resulting `peak_live_records`,
//! `reclaimed_records` and path-cache hit-rate counters.
//!
//! Graph files are the `serde_json` serialisation of
//! [`optsched_taskgraph::TaskGraph`] (produced by `optsched generate`).
//! `--input -` reads the graph from stdin, so generation and scheduling
//! compose: `optsched generate --nodes 10 | optsched schedule --input -`.
//!
//! The service subcommands speak the JSON-lines protocol of
//! `optsched-service`: `serve` answers requests from stdin (or a TCP
//! listener with `--listen`) over **one** global worker pool shared by all
//! connections, `batch` drains a request file through that pool and reports
//! a summary, and `requests` generates a mixed request corpus — so the whole
//! pipeline composes as `optsched requests --count 20 | optsched batch
//! --requests -`.  `--admission-budget` / `--degrade-threshold` /
//! `--degrade-deadline-ms` tune the service's backpressure (shed with a
//! structured `overloaded` response past the budget, degrade to
//! deadline-clamped `wastar` past the threshold), `--cache-capacity` /
//! `--cache-max-age-ms` size the LRU result cache and its TTL, and
//! `serve --summary-interval-ms N` prints a metrics snapshot (pending,
//! shed, degraded, service-side latency percentiles, cache hit rate,
//! evictions, expirations) to stderr every N milliseconds.
//!
//! `--trace-out PATH` (on `schedule`, `serve` and `batch`) turns on the
//! `optsched-obs` event/span layer for the run and writes a Chrome
//! trace-event JSON file at exit — load it in `chrome://tracing` or
//! Perfetto.  Without the flag the collection layer stays disabled and
//! costs one relaxed atomic load per would-be event.  A running service
//! also answers the admin line `{"type": "stats"}` on any connection with
//! a JSON stats report (counters plus queue-wait/end-to-end p50/p99).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optsched::registry::{path_cache_hit_rate, SchedulerRegistry, SchedulerSpec};
use optsched_core::{AStarScheduler, SchedulingProblem, SearchLimits, SearchOutcome};
use optsched_procnet::{ProcNetwork, Topology};
use optsched_schedule::{render_gantt, Schedule};
use optsched_service::{run_service, serve_tcp, Request, SchedulingService, ServiceConfig};
use optsched_taskgraph::{paper_example_dag, GraphLevels, TaskGraph};
use optsched_workload::{
    generate_random_dag, generate_request_corpus, RandomDagConfig, RequestCorpusConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 1;
                } else {
                    flags.push(key.to_string());
                }
            }
            i += 1;
        }
        Args { pairs, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  optsched schedule --input graph.json|- [--procs P] [--topology T] [--algorithm A] \\\n                    [--epsilon E] [--weight W] [--seed-incumbent] [--ppes Q] \\\n                    [--dup-detection local|sharded] [--shards N] \\\n                    [--budget-ms N] [--max-expansions N] [--store eager|arena] \\\n                    [--arena-gc on|off] [--path-cache K] [--election-batch B] \\\n                    [--trace-out trace.json] [--gantt] [--json]\n  optsched generate --nodes N --ccr C [--seed S] [--output file.json]\n  optsched levels --input graph.json|-\n  optsched example\n  optsched serve [--workers N] [--listen ADDR:PORT] [--admission-budget N] \\\n                 [--degrade-threshold N] [--degrade-deadline-ms N] [--cache-capacity N] \\\n                 [--cache-max-age-ms N] [--summary-interval-ms N] [--trace-out trace.json]\n  optsched batch --requests file.jsonl|- [--workers N] [--min-cache-hits N] [--summary] \\\n                 [--admission-budget N] [--degrade-threshold N] [--cache-capacity N] \\\n                 [--trace-out trace.json]\n  optsched requests --count N [--seed S] [--output file.jsonl]\n(`--input -` reads the graph JSON from stdin; algorithms: astar|wastar|aeps|chenyu|exhaustive|list|parallel;\n serve/batch requests may also say \"auto\" to let the deadline-aware portfolio pick;\n a running serve/batch also answers the admin line {{\"type\": \"stats\"}};\n --trace-out writes a Chrome trace-event JSON of the run's spans at exit)"
    );
    ExitCode::FAILURE
}

fn load_graph(args: &Args) -> Result<TaskGraph, String> {
    match args.get("input") {
        Some("-") => {
            let mut text = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse stdin: {e}"))
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        }
        None => Err("missing --input <graph.json|-> (or use `optsched example`)".to_string()),
    }
}

fn build_network(args: &Args, default_procs: usize) -> ProcNetwork {
    let p = args.get_parse("procs", default_procs);
    match args.get("topology").unwrap_or("full") {
        "ring" => ProcNetwork::ring(p),
        "chain" => ProcNetwork::chain(p),
        "star" => ProcNetwork::star(p),
        "hypercube" => ProcNetwork::hypercube(p.next_power_of_two()),
        "mesh" => {
            let rows = (p as f64).sqrt().floor().max(1.0) as usize;
            let rows = (1..=rows).rev().find(|r| p % r == 0).unwrap_or(1);
            ProcNetwork::with_topology(Topology::Mesh { rows, cols: p / rows }, p)
        }
        _ => ProcNetwork::fully_connected(p),
    }
}

fn report(schedule: &Schedule, graph: &TaskGraph, net: &ProcNetwork, args: &Args, label: &str) {
    if let Err(e) = schedule.validate(graph, net) {
        eprintln!("internal error: produced an invalid schedule: {e}");
    }
    if args.has("json") {
        println!("{}", serde_json::to_string_pretty(schedule).expect("schedules serialise"));
        return;
    }
    println!("algorithm      : {label}");
    println!("schedule length: {}", schedule.makespan());
    println!("processors used: {}", schedule.procs_used());
    if args.has("gantt") {
        println!("{}", render_gantt(schedule, graph));
    }
}

/// Builds the scheduler configuration from the command line.  Every family
/// reads the knobs that apply to it; unknown values fail with a message.
fn build_spec(args: &Args) -> Result<SchedulerSpec, String> {
    let mut spec = SchedulerSpec {
        limits: SearchLimits {
            max_millis: args.get("budget-ms").and_then(|v| v.parse().ok()),
            max_expansions: args.get("max-expansions").and_then(|v| v.parse().ok()),
            ..Default::default()
        },
        epsilon: args.get_parse("epsilon", 0.2),
        weight: args.get_parse("weight", 1.5),
        seed_incumbent: args.has("seed-incumbent"),
        ..Default::default()
    };
    if let Some(v) = args.get("store") {
        spec.store = v.parse()?;
    }
    if let Some(v) = args.get("arena-gc") {
        spec.arena_gc = match v {
            "on" | "true" | "1" => true,
            "off" | "false" | "0" => false,
            _ => return Err(format!("unknown --arena-gc value `{v}` (expected on|off)")),
        };
    }
    spec.path_cache = args.get_parse("path-cache", spec.path_cache);
    spec.parallel.election_batch =
        args.get_parse("election-batch", spec.parallel.election_batch);
    spec.parallel.num_ppes = args.get_parse("ppes", spec.parallel.num_ppes);
    spec.parallel.epsilon = args.get("epsilon").and_then(|v| v.parse().ok());
    if let Some(v) = args.get("dup-detection") {
        spec.parallel.duplicate_detection = v.parse()?;
    }
    spec.parallel.num_shards = args.get_parse("shards", spec.parallel.num_shards);
    Ok(spec)
}

fn cmd_schedule(args: &Args, graph: TaskGraph) -> ExitCode {
    // `--trace-out PATH` turns the event/span layer on for this run and
    // writes a Chrome trace-event file (load it in `chrome://tracing` or
    // Perfetto) after the report.
    let trace_out = args.get("trace-out").map(String::from);
    if trace_out.is_some() {
        optsched_obs::set_enabled(true);
    }
    let net = build_network(args, 4);
    let problem = SchedulingProblem::new(graph.clone(), net.clone());
    let spec = match build_spec(args) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let registry = SchedulerRegistry::with_spec(spec);
    let algorithm = args.get("algorithm").unwrap_or("astar");
    let Some(scheduler) = registry.get(algorithm) else {
        eprintln!(
            "unknown algorithm `{algorithm}` (expected {})",
            registry.names().join("|")
        );
        return ExitCode::FAILURE;
    };

    let run = scheduler.run(&problem);
    let Some(schedule) = run.result.schedule.as_ref() else {
        eprintln!("internal error: `{algorithm}` produced no schedule");
        return ExitCode::FAILURE;
    };
    report(schedule, &graph, &net, args, &scheduler.description());
    if run.result.outcome == SearchOutcome::LimitReached {
        eprintln!("note: the search hit its budget; the schedule is the best incumbent, not proven optimal");
    }
    if !args.has("json") {
        for (label, value) in &run.extras {
            println!("{label:<15}: {value}");
        }
        // The parallel entry reports the arena-lifecycle counters among its
        // extras; print them from the uniform stats for every other family.
        if !run.extras.iter().any(|(k, _)| k == "peak_live_records") {
            let s = &run.result.stats;
            println!("{:<15}: {}", "peak_live_records", s.peak_live_records);
            println!("{:<15}: {}", "reclaimed_records", s.reclaimed_records);
            println!("{:<15}: {}", "path-cache hit rate", path_cache_hit_rate(s));
            println!("{:<15}: {}", "path-cache ancestor hits", s.path_cache_ancestor_hits);
            println!("{:<15}: {}", "replayed deltas saved", s.replayed_deltas_saved);
        }
    }
    if let Some(path) = trace_out {
        optsched_obs::set_enabled(false);
        match optsched_obs::save_chrome_trace(&path) {
            Ok(n) => eprintln!("trace: wrote {n} events to {path}"),
            Err(e) => {
                eprintln!("trace: failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_generate(args: &Args) -> ExitCode {
    let nodes = args.get_parse("nodes", 20usize);
    let ccr = args.get_parse("ccr", 1.0f64);
    let seed = args.get_parse("seed", 7u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generate_random_dag(&RandomDagConfig { nodes, ccr, ..Default::default() }, &mut rng);
    let json = serde_json::to_string_pretty(&graph).expect("graphs serialise");
    match args.get("output") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {nodes}-node graph (CCR {ccr}, seed {seed}) to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn cmd_levels(graph: &TaskGraph) -> ExitCode {
    let levels = GraphLevels::compute(graph);
    println!("{:<8} {:>8} {:>10} {:>10} {:>10}", "node", "weight", "sl", "b-level", "t-level");
    for n in graph.node_ids() {
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10}",
            n.to_string(),
            graph.weight(n),
            levels.static_level(n),
            levels.b_level(n),
            levels.t_level(n)
        );
    }
    println!("critical path length = {}", levels.critical_path_length());
    ExitCode::SUCCESS
}

/// Builds the service configuration shared by `serve` and `batch` from the
/// command line.
fn service_config_from_args(args: &Args) -> ServiceConfig {
    let d = ServiceConfig::default();
    let admission_budget = args.get_parse("admission-budget", d.admission_budget);
    ServiceConfig {
        workers: args.get_parse("workers", d.workers),
        cache_capacity: args.get_parse("cache-capacity", d.cache_capacity),
        cache_max_age_ms: args.get("cache-max-age-ms").and_then(|v| v.parse().ok()),
        admission_budget,
        // The threshold must stay within the budget to mean anything.
        degrade_threshold: args
            .get_parse("degrade-threshold", d.degrade_threshold)
            .min(admission_budget),
        degrade_deadline_ms: args.get_parse("degrade-deadline-ms", d.degrade_deadline_ms),
        seed_incumbent: !args.has("no-seed-incumbent"),
        trace_path: args.get("trace-out").map(String::from),
        ..d
    }
}

/// One metrics line for the periodic and final `serve` summaries.
fn metrics_line(service: &SchedulingService) -> String {
    let m = service.metrics_snapshot();
    let c = service.cache_stats();
    format!(
        "submitted {} responses {} pending {} (peak {}) shed {} degraded {} peak_live_records {} | auto: {} exact, {} anytime, {} raced, {} warm starts | latency: e2e p50 {:.1} ms p99 {:.1} ms, queue p50 {:.1} ms p99 {:.1} ms | cache: {} entries, {:.0}% hit rate, {} evictions, {} expired, {} filter skips",
        m.submitted,
        m.responses,
        m.pending,
        m.peak_pending,
        m.shed,
        m.degraded,
        m.peak_live_records,
        m.auto_exact,
        m.auto_anytime,
        m.auto_raced,
        m.auto_warm_starts,
        m.e2e_p50_us as f64 / 1e3,
        m.e2e_p99_us as f64 / 1e3,
        m.queue_wait_p50_us as f64 / 1e3,
        m.queue_wait_p99_us as f64 / 1e3,
        c.entries,
        c.hit_rate() * 100.0,
        c.evictions,
        c.expired,
        c.filter_skips
    )
}

/// Prints a metrics snapshot to stderr every `--summary-interval-ms` until
/// the returned guard is dropped (no-op at the default of 0).
fn spawn_summary_monitor(args: &Args, service: &SchedulingService) -> Option<SummaryMonitor> {
    let interval_ms = args.get_parse("summary-interval-ms", 0u64);
    if interval_ms == 0 {
        return None;
    }
    let stop = Arc::new(AtomicBool::new(false));
    let service = service.clone();
    let flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let interval = std::time::Duration::from_millis(interval_ms.max(1));
        while !flag.load(Ordering::Relaxed) {
            std::thread::park_timeout(interval);
            if flag.load(Ordering::Relaxed) {
                break;
            }
            eprintln!("serve: {}", metrics_line(&service));
        }
    });
    Some(SummaryMonitor { stop, handle: Some(handle) })
}

/// Guard of the periodic summary thread; stops it on drop.
struct SummaryMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for SummaryMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            handle.join().expect("summary monitor panicked");
        }
    }
}

/// `optsched serve`: the JSON-lines scheduling service over stdin/stdout,
/// or over TCP with `--listen ADDR:PORT` — either way one global worker
/// pool answers every connection.
fn cmd_serve(args: &Args) -> ExitCode {
    let config = service_config_from_args(args);
    let (workers, admission_budget) = (config.workers, config.admission_budget);
    let service = SchedulingService::new(config);
    let _monitor = spawn_summary_monitor(args, &service);
    match args.get("listen") {
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot listen on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "optsched-service listening on {addr} ({workers} shared workers, admission budget {admission_budget})"
            );
            if let Err(e) = serve_tcp(&service, &listener, None) {
                eprintln!("serve error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            // `BufReader<Stdin>` rather than `StdinLock`: the runtime's
            // reader thread needs a `Send` reader.
            let stdin = std::io::BufReader::new(std::io::stdin());
            let mut stdout = std::io::stdout();
            match run_service(&service, stdin, &mut stdout) {
                Ok(summary) => {
                    eprintln!(
                        "served {} responses ({} errors, {} cache hits, {} shed, {} degraded)",
                        summary.responses,
                        summary.errors,
                        summary.cache_hits,
                        summary.shed,
                        summary.degraded
                    );
                    eprintln!("serve: {}", metrics_line(&service));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("serve error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

/// `optsched batch`: drain a request file through the worker pool, print the
/// responses to stdout, and fail loudly if any response errored or the
/// cache saw fewer hits than `--min-cache-hits` (the CI smoke contract).
fn cmd_batch(args: &Args) -> ExitCode {
    let Some(path) = args.get("requests") else {
        eprintln!("missing --requests <file.jsonl|->");
        return ExitCode::FAILURE;
    };
    let text = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf) {
            eprintln!("cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let config = service_config_from_args(args);
    let service = SchedulingService::new(config);
    let mut stdout = std::io::stdout();
    let summary = match run_service(&service, text.as_bytes(), &mut stdout) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("batch error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let stats = service.cache_stats();
    if args.has("summary") {
        eprintln!(
            "batch: {} responses, {} errors, {} cache hits, {} shed, {} degraded ({} entries, {:.0}% hit rate, {} evictions, {} expired)",
            summary.responses,
            summary.errors,
            summary.cache_hits,
            summary.shed,
            summary.degraded,
            stats.entries,
            stats.hit_rate() * 100.0,
            stats.evictions,
            stats.expired
        );
    }
    if summary.errors > 0 {
        eprintln!("batch: {} response(s) reported errors", summary.errors);
        return ExitCode::FAILURE;
    }
    let min_hits = args.get_parse("min-cache-hits", 0u64);
    if summary.cache_hits < min_hits {
        eprintln!(
            "batch: expected >= {min_hits} cache hit(s), observed {}",
            summary.cache_hits
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `optsched requests`: generate a mixed request corpus (sizes, CCRs,
/// algorithms, deadlines, repeated instances) as JSON lines.
fn cmd_requests(args: &Args) -> ExitCode {
    let cfg = RequestCorpusConfig {
        count: args.get_parse("count", RequestCorpusConfig::default().count),
        ..Default::default()
    };
    let seed = args.get_parse("seed", 7u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = generate_request_corpus(&cfg, &mut rng);
    let mut lines = String::new();
    for (i, c) in corpus.iter().enumerate() {
        let mut req = Request::from(c);
        req.id = Some(i as u64);
        lines.push_str(&serde_json::to_string(&req).expect("requests serialise"));
        lines.push('\n');
    }
    match args.get("output") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, lines) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} requests (seed {seed}) to {path}", corpus.len());
        }
        None => print!("{lines}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { return usage() };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "schedule" => match load_graph(&args) {
            Ok(g) => cmd_schedule(&args, g),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "generate" => cmd_generate(&args),
        "serve" => cmd_serve(&args),
        "batch" => cmd_batch(&args),
        "requests" => cmd_requests(&args),
        "levels" => match load_graph(&args) {
            Ok(g) => cmd_levels(&g),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "example" => {
            let graph = paper_example_dag();
            let net = ProcNetwork::ring(3);
            let problem = SchedulingProblem::new(graph.clone(), net.clone());
            let r = AStarScheduler::new(&problem).run();
            println!("paper example (Figure 1): optimal schedule length = {}", r.schedule_length);
            println!("{}", render_gantt(r.expect_schedule(), &graph));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parser_handles_pairs_and_flags() {
        let argv: Vec<String> =
            ["--nodes", "12", "--gantt", "--ccr", "0.5"].iter().map(|s| s.to_string()).collect();
        let a = Args::parse(&argv);
        assert_eq!(a.get("nodes"), Some("12"));
        assert_eq!(a.get_parse("ccr", 1.0), 0.5);
        assert_eq!(a.get_parse("missing", 3usize), 3);
        assert!(a.has("gantt"));
        assert!(!a.has("json"));
    }

    #[test]
    fn build_network_topologies() {
        let argv: Vec<String> = ["--procs", "6", "--topology", "mesh"].iter().map(|s| s.to_string()).collect();
        let net = build_network(&Args::parse(&argv), 4);
        assert_eq!(net.num_procs(), 6);
        let ring: Vec<String> = ["--procs", "5", "--topology", "ring"].iter().map(|s| s.to_string()).collect();
        assert_eq!(build_network(&Args::parse(&ring), 4).degree(optsched_procnet::ProcId(0)), 2);
        let hyper: Vec<String> = ["--procs", "5", "--topology", "hypercube"].iter().map(|s| s.to_string()).collect();
        assert_eq!(build_network(&Args::parse(&hyper), 4).num_procs(), 8);
    }

    #[test]
    fn example_problem_solves_to_14() {
        let graph = paper_example_dag();
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        assert_eq!(AStarScheduler::new(&problem).run().schedule_length, 14);
    }
}

//! `optsched` — command-line front end for the DAG schedulers.
//!
//! ```text
//! optsched schedule --input graph.json [--procs 4] [--topology ring|mesh|full|chain|star|hypercube]
//!                   [--algorithm astar|aeps|chenyu|list|parallel] [--epsilon 0.2] [--ppes 4]
//!                   [--dup-detection local|sharded] [--shards N]
//!                   [--budget-ms N] [--gantt] [--json]
//! optsched generate --nodes 20 --ccr 1.0 [--seed 7] [--output graph.json]
//! optsched example
//! optsched levels --input graph.json
//! ```
//!
//! Graph files are the `serde_json` serialisation of
//! [`optsched_taskgraph::TaskGraph`] (produced by `optsched generate`).
//! `--input -` reads the graph from stdin, so generation and scheduling
//! compose: `optsched generate --nodes 10 | optsched schedule --input -`.

use std::process::ExitCode;

use optsched_core::{
    AEpsScheduler, AStarScheduler, ChenYuScheduler, SchedulingProblem, SearchLimits,
};
use optsched_listsched::upper_bound_schedule;
use optsched_parallel::{ParallelAStarScheduler, ParallelConfig};
use optsched_procnet::{ProcNetwork, Topology};
use optsched_schedule::{render_gantt, Schedule};
use optsched_taskgraph::{paper_example_dag, GraphLevels, TaskGraph};
use optsched_workload::{generate_random_dag, RandomDagConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 1;
                } else {
                    flags.push(key.to_string());
                }
            }
            i += 1;
        }
        Args { pairs, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  optsched schedule --input graph.json|- [--procs P] [--topology T] [--algorithm A] \\\n                    [--epsilon E] [--ppes Q] [--dup-detection local|sharded] [--shards N] \\\n                    [--budget-ms N] [--gantt] [--json]\n  optsched generate --nodes N --ccr C [--seed S] [--output file.json]\n  optsched levels --input graph.json|-\n  optsched example\n(`--input -` reads the graph JSON from stdin)"
    );
    ExitCode::FAILURE
}

fn load_graph(args: &Args) -> Result<TaskGraph, String> {
    match args.get("input") {
        Some("-") => {
            let mut text = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse stdin: {e}"))
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
        }
        None => Err("missing --input <graph.json|-> (or use `optsched example`)".to_string()),
    }
}

fn build_network(args: &Args, default_procs: usize) -> ProcNetwork {
    let p = args.get_parse("procs", default_procs);
    match args.get("topology").unwrap_or("full") {
        "ring" => ProcNetwork::ring(p),
        "chain" => ProcNetwork::chain(p),
        "star" => ProcNetwork::star(p),
        "hypercube" => ProcNetwork::hypercube(p.next_power_of_two()),
        "mesh" => {
            let rows = (p as f64).sqrt().floor().max(1.0) as usize;
            let rows = (1..=rows).rev().find(|r| p % r == 0).unwrap_or(1);
            ProcNetwork::with_topology(Topology::Mesh { rows, cols: p / rows }, p)
        }
        _ => ProcNetwork::fully_connected(p),
    }
}

fn report(schedule: &Schedule, graph: &TaskGraph, net: &ProcNetwork, args: &Args, label: &str) {
    if let Err(e) = schedule.validate(graph, net) {
        eprintln!("internal error: produced an invalid schedule: {e}");
    }
    if args.has("json") {
        println!("{}", serde_json::to_string_pretty(schedule).expect("schedules serialise"));
        return;
    }
    println!("algorithm      : {label}");
    println!("schedule length: {}", schedule.makespan());
    println!("processors used: {}", schedule.procs_used());
    if args.has("gantt") {
        println!("{}", render_gantt(schedule, graph));
    }
}

fn cmd_schedule(args: &Args, graph: TaskGraph) -> ExitCode {
    let net = build_network(args, 4);
    let problem = SchedulingProblem::new(graph.clone(), net.clone());
    let limits = SearchLimits {
        max_millis: args.get("budget-ms").and_then(|v| v.parse().ok()),
        ..Default::default()
    };
    let algorithm = args.get("algorithm").unwrap_or("astar");
    match algorithm {
        "astar" => {
            let r = AStarScheduler::new(&problem).with_limits(limits).run();
            report(r.expect_schedule(), &graph, &net, args, "serial A* (optimal)");
            if !r.is_optimal() {
                eprintln!("note: the search hit its budget; the schedule is the best incumbent, not proven optimal");
            }
        }
        "aeps" => {
            let eps = args.get_parse("epsilon", 0.2);
            let r = AEpsScheduler::new(&problem, eps).with_limits(limits).run();
            report(r.expect_schedule(), &graph, &net, args, &format!("Aε* (ε = {eps})"));
        }
        "chenyu" => {
            let r = ChenYuScheduler::new(&problem).with_limits(limits).run();
            report(r.expect_schedule(), &graph, &net, args, "Chen & Yu branch-and-bound");
        }
        "list" => {
            let s = upper_bound_schedule(&graph, &net);
            report(&s, &graph, &net, args, "list-scheduling heuristic");
        }
        "parallel" => {
            let q = args.get_parse("ppes", 4);
            let eps = args.get("epsilon").and_then(|v| v.parse().ok());
            let mut cfg = ParallelConfig { num_ppes: q, epsilon: eps, limits, ..Default::default() };
            if let Some(v) = args.get("dup-detection") {
                match v.parse() {
                    Ok(mode) => cfg.duplicate_detection = mode,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            cfg.num_shards = args.get_parse("shards", cfg.num_shards);
            let r = ParallelAStarScheduler::new(&problem, cfg).run();
            let label =
                format!("parallel A* ({q} PPEs, {} duplicate detection)", cfg.duplicate_detection);
            report(&r.schedule, &graph, &net, args, &label);
            if !args.has("json") {
                let total = r.total_stats();
                println!("states expanded: {}", total.expanded);
                println!("redundant cross-PPE expansions avoided: {}", r.redundant_expansions_avoided());
                if let Some(table) = &r.closed_stats {
                    println!(
                        "closed table   : {} shards, {} entries, hit rate {:.1}%",
                        table.num_shards(),
                        table.total_entries(),
                        table.hit_rate() * 100.0
                    );
                }
            }
        }
        other => {
            eprintln!("unknown algorithm `{other}` (expected astar|aeps|chenyu|list|parallel)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_generate(args: &Args) -> ExitCode {
    let nodes = args.get_parse("nodes", 20usize);
    let ccr = args.get_parse("ccr", 1.0f64);
    let seed = args.get_parse("seed", 7u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = generate_random_dag(&RandomDagConfig { nodes, ccr, ..Default::default() }, &mut rng);
    let json = serde_json::to_string_pretty(&graph).expect("graphs serialise");
    match args.get("output") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {nodes}-node graph (CCR {ccr}, seed {seed}) to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn cmd_levels(graph: &TaskGraph) -> ExitCode {
    let levels = GraphLevels::compute(graph);
    println!("{:<8} {:>8} {:>10} {:>10} {:>10}", "node", "weight", "sl", "b-level", "t-level");
    for n in graph.node_ids() {
        println!(
            "{:<8} {:>8} {:>10} {:>10} {:>10}",
            n.to_string(),
            graph.weight(n),
            levels.static_level(n),
            levels.b_level(n),
            levels.t_level(n)
        );
    }
    println!("critical path length = {}", levels.critical_path_length());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { return usage() };
    let args = Args::parse(&argv[1..]);
    match cmd.as_str() {
        "schedule" => match load_graph(&args) {
            Ok(g) => cmd_schedule(&args, g),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "generate" => cmd_generate(&args),
        "levels" => match load_graph(&args) {
            Ok(g) => cmd_levels(&g),
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        "example" => {
            let graph = paper_example_dag();
            let net = ProcNetwork::ring(3);
            let problem = SchedulingProblem::new(graph.clone(), net.clone());
            let r = AStarScheduler::new(&problem).run();
            println!("paper example (Figure 1): optimal schedule length = {}", r.schedule_length);
            println!("{}", render_gantt(r.expect_schedule(), &graph));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parser_handles_pairs_and_flags() {
        let argv: Vec<String> =
            ["--nodes", "12", "--gantt", "--ccr", "0.5"].iter().map(|s| s.to_string()).collect();
        let a = Args::parse(&argv);
        assert_eq!(a.get("nodes"), Some("12"));
        assert_eq!(a.get_parse("ccr", 1.0), 0.5);
        assert_eq!(a.get_parse("missing", 3usize), 3);
        assert!(a.has("gantt"));
        assert!(!a.has("json"));
    }

    #[test]
    fn build_network_topologies() {
        let argv: Vec<String> = ["--procs", "6", "--topology", "mesh"].iter().map(|s| s.to_string()).collect();
        let net = build_network(&Args::parse(&argv), 4);
        assert_eq!(net.num_procs(), 6);
        let ring: Vec<String> = ["--procs", "5", "--topology", "ring"].iter().map(|s| s.to_string()).collect();
        assert_eq!(build_network(&Args::parse(&ring), 4).degree(optsched_procnet::ProcId(0)), 2);
        let hyper: Vec<String> = ["--procs", "5", "--topology", "hypercube"].iter().map(|s| s.to_string()).collect();
        assert_eq!(build_network(&Args::parse(&hyper), 4).num_procs(), 8);
    }

    #[test]
    fn example_problem_solves_to_14() {
        let graph = paper_example_dag();
        let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));
        assert_eq!(AStarScheduler::new(&problem).run().schedule_length, 14);
    }
}

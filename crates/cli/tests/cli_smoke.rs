//! Smoke tests driving the `optsched` binary end-to-end: the paper example,
//! the generate → schedule JSON round-trip, and error handling on malformed
//! input.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn optsched(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_optsched"));
    cmd.args(args);
    cmd
}

fn run(args: &[&str]) -> Output {
    optsched(args).output().expect("spawn optsched")
}

fn run_with_stdin(args: &[&str], stdin: &[u8]) -> Output {
    let mut child = optsched(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn optsched");
    child.stdin.as_mut().expect("piped stdin").write_all(stdin).expect("write stdin");
    child.wait_with_output().expect("wait for optsched")
}

#[test]
fn example_prints_the_paper_optimum() {
    let out = run(&["example"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("optimal schedule length = 14"), "stdout: {stdout}");
    assert!(stdout.contains("schedule length = 14"));
}

#[test]
fn generate_schedule_round_trip_through_json() {
    let generated = run(&["generate", "--nodes", "10", "--ccr", "1.0", "--seed", "7"]);
    assert!(generated.status.success());
    let graph_json = generated.stdout;
    assert!(!graph_json.is_empty());

    // Pipe the generated graph into `schedule --input -` (the documented
    // `optsched generate | optsched schedule` composition).
    let scheduled = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "astar", "--procs", "3"],
        &graph_json,
    );
    assert!(
        scheduled.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&scheduled.stderr)
    );
    let stdout = String::from_utf8_lossy(&scheduled.stdout);
    assert!(stdout.contains("schedule length:"), "stdout: {stdout}");
    // An invalid schedule would have been reported on stderr by `report`.
    assert!(!String::from_utf8_lossy(&scheduled.stderr).contains("invalid schedule"));

    // `levels` consumes the same format.
    let levels = run_with_stdin(&["levels", "--input", "-"], &graph_json);
    assert!(levels.status.success());
    assert!(String::from_utf8_lossy(&levels.stdout).contains("critical path length"));
}

#[test]
fn json_output_round_trips_as_json() {
    let generated = run(&["generate", "--nodes", "8", "--seed", "3"]);
    assert!(generated.status.success());
    let scheduled = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "list", "--json"],
        &generated.stdout,
    );
    assert!(scheduled.status.success());
    let stdout = String::from_utf8_lossy(&scheduled.stdout);
    // The --json output must itself be parseable JSON (spot-check the shape).
    assert!(stdout.trim_start().starts_with('{'), "stdout: {stdout}");
    assert!(stdout.contains("assignments"));
}

#[test]
fn malformed_input_exits_non_zero() {
    let out = run_with_stdin(&["schedule", "--input", "-"], b"this is not json");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));

    // Valid JSON that is not a graph must also fail cleanly.
    let out = run_with_stdin(&["schedule", "--input", "-"], b"[1, 2, 3]");
    assert!(!out.status.success());

    // A missing file is an error, not a panic.
    let out = run(&["schedule", "--input", "/nonexistent/graph.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn unknown_subcommand_prints_usage_and_fails() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let no_args = run(&[]);
    assert!(!no_args.status.success());
}

#[test]
fn unknown_algorithm_fails() {
    let generated = run(&["generate", "--nodes", "6", "--seed", "1"]);
    assert!(generated.status.success());
    let out = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "quantum"],
        &generated.stdout,
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

/// The exhaustive enumerator is schedulable from the CLI and honours
/// `--max-expansions` (it used to ignore limits before the engine refactor):
/// a budget of 1 expansion must cut the run short and fall back to the
/// list-heuristic incumbent, with the budget note on stderr.
#[test]
fn exhaustive_algorithm_honours_max_expansions() {
    let generated = run(&["generate", "--nodes", "8", "--ccr", "1.0", "--seed", "7"]);
    assert!(generated.status.success());
    let graph_json = generated.stdout;

    // Unbounded: the enumerator is exact on a small instance.
    let exact = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "exhaustive", "--procs", "2"],
        &graph_json,
    );
    assert!(exact.status.success(), "stderr: {}", String::from_utf8_lossy(&exact.stderr));
    let exact_out = String::from_utf8_lossy(&exact.stdout).to_string();
    assert!(exact_out.contains("exhaustive enumeration"), "stdout: {exact_out}");
    let exact_len = exact_out
        .lines()
        .find_map(|l| l.strip_prefix("schedule length:"))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("schedule length in output");

    // A* agrees (both dispatched through the same registry).
    let astar = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "astar", "--procs", "2"],
        &graph_json,
    );
    let astar_out = String::from_utf8_lossy(&astar.stdout).to_string();
    assert!(astar_out.contains(&format!("schedule length: {exact_len}")), "stdout: {astar_out}");

    // Bounded: still succeeds, reports the budget note, stays feasible.
    let bounded = run_with_stdin(
        &[
            "schedule", "--input", "-", "--algorithm", "exhaustive", "--procs", "2",
            "--max-expansions", "1",
        ],
        &graph_json,
    );
    assert!(bounded.status.success());
    let note = String::from_utf8_lossy(&bounded.stderr);
    assert!(note.contains("hit its budget"), "stderr: {note}");
    let bounded_len = String::from_utf8_lossy(&bounded.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("schedule length:").and_then(|v| v.trim().parse::<u64>().ok()))
        .expect("schedule length in bounded output");
    assert!(bounded_len >= exact_len, "incumbent cannot beat the optimum");
}

#[test]
fn parallel_duplicate_detection_modes_agree_and_report_counters() {
    let generated = run(&["generate", "--nodes", "8", "--ccr", "1.0", "--seed", "7"]);
    assert!(generated.status.success());
    let graph_json = generated.stdout;

    let mut lengths = Vec::new();
    for mode in ["local", "sharded"] {
        let out = run_with_stdin(
            &[
                "schedule", "--input", "-", "--algorithm", "parallel", "--ppes", "2",
                "--dup-detection", mode, "--shards", "4", "--procs", "3",
            ],
            &graph_json,
        );
        assert!(out.status.success(), "mode={mode} stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains(&format!("{mode} duplicate detection")), "stdout: {stdout}");
        assert!(stdout.contains("redundant cross-PPE expansions avoided:"), "stdout: {stdout}");
        // Only the sharded mode has a table to report on.
        assert_eq!(mode == "sharded", stdout.contains("closed table"), "stdout: {stdout}");
        let len = stdout
            .lines()
            .find_map(|l| l.strip_prefix("schedule length:"))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no schedule length in: {stdout}"));
        lengths.push(len);
    }
    assert_eq!(lengths[0], lengths[1], "both modes must return the same optimum");

    // An unknown mode fails cleanly.
    let bad = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "parallel", "--dup-detection", "bogus"],
        &graph_json,
    );
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown duplicate-detection mode"));
}

/// The service pipeline composes on the command line exactly as documented:
/// `optsched requests | optsched batch --requests -`.  The generated corpus
/// is guaranteed to contain a repeated instance and a tight deadline, so the
/// batch must report zero errors *and* at least one cache hit — the same
/// contract the CI smoke step enforces.
#[test]
fn requests_pipe_into_batch_with_cache_hits_and_no_errors() {
    let corpus = run(&["requests", "--count", "10", "--seed", "7"]);
    assert!(corpus.status.success(), "stderr: {}", String::from_utf8_lossy(&corpus.stderr));
    let lines = String::from_utf8_lossy(&corpus.stdout);
    assert_eq!(lines.lines().count(), 10);
    assert!(lines.contains("\"deadline_ms\":"), "corpus must carry a deadline request");

    let batch = run_with_stdin(
        &["batch", "--requests", "-", "--workers", "2", "--min-cache-hits", "1", "--summary"],
        corpus.stdout.as_slice(),
    );
    assert!(batch.status.success(), "stderr: {}", String::from_utf8_lossy(&batch.stderr));
    let out = String::from_utf8_lossy(&batch.stdout);
    assert_eq!(out.lines().count(), 10, "one response per request");
    assert!(out.contains("\"ok\":true"));
    assert!(out.contains("\"cache_hit\":true"), "the duplicate instance must hit the cache");
    assert!(String::from_utf8_lossy(&batch.stderr).contains("batch: 10 responses"));
}

/// `serve` answers the JSON-lines protocol on stdin/stdout, including a
/// structured error for a malformed line (the service must not die on it).
#[test]
fn serve_answers_requests_and_survives_malformed_lines() {
    let corpus = run(&["requests", "--count", "3", "--seed", "11"]);
    assert!(corpus.status.success());
    let mut input = String::from_utf8(corpus.stdout).unwrap();
    input.push_str("this is not json\n");

    let served = run_with_stdin(&["serve", "--workers", "2"], input.as_bytes());
    assert!(served.status.success(), "stderr: {}", String::from_utf8_lossy(&served.stderr));
    let out = String::from_utf8_lossy(&served.stdout);
    assert_eq!(out.lines().count(), 4, "three answers plus one structured error");
    assert!(out.contains("\"ok\":true"));
    assert!(out.contains("\"ok\":false"));
    assert!(out.contains("malformed request"));
    assert!(String::from_utf8_lossy(&served.stderr).contains("served 4 responses"));
}

/// The `wastar` algorithm is schedulable from the CLI, and at `--weight 1.0`
/// it agrees with A* (same registry, same optimum).
#[test]
fn wastar_from_the_cli_matches_astar_at_weight_one() {
    let generated = run(&["generate", "--nodes", "8", "--ccr", "1.0", "--seed", "7"]);
    assert!(generated.status.success());
    let graph_json = generated.stdout;

    let mut lengths = Vec::new();
    for argv in [
        vec!["schedule", "--input", "-", "--algorithm", "astar", "--procs", "3"],
        vec![
            "schedule", "--input", "-", "--algorithm", "wastar", "--weight", "1.0", "--procs",
            "3",
        ],
        vec![
            "schedule", "--input", "-", "--algorithm", "wastar", "--weight", "1.0", "--procs",
            "3", "--seed-incumbent",
        ],
    ] {
        let out = run_with_stdin(&argv, &graph_json);
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let len = stdout
            .lines()
            .find_map(|l| l.strip_prefix("schedule length:"))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no schedule length in: {stdout}"));
        lengths.push(len);
    }
    assert_eq!(lengths[0], lengths[1], "wastar at w=1 must match astar");
    assert_eq!(lengths[0], lengths[2], "the seeded search stays exact");
}

/// `--store` used to be silently ignored for `--algorithm parallel`; it now
/// selects the per-PPE state store, the algorithm banner names it, and the
/// replay-savings counter betrays which store ran: only the delta arena
/// rebuilds states from delta records (and banks the deltas its path-cache
/// bases skipped); the eager baseline never replays.  (The headline
/// `peak_live_states` no longer separates the stores — since snapshot
/// transfers it is dominated by the same in-flight traffic on both.)
#[test]
fn parallel_store_modes_agree_and_report_peak_live_states() {
    let generated = run(&["generate", "--nodes", "8", "--ccr", "1.0", "--seed", "7"]);
    assert!(generated.status.success());
    let graph_json = generated.stdout;

    let mut results: Vec<(u64, u64)> = Vec::new(); // (schedule length, peak live)
    for store in ["arena", "eager"] {
        let out = run_with_stdin(
            &[
                "schedule", "--input", "-", "--algorithm", "parallel", "--ppes", "2",
                "--store", store, "--procs", "3",
            ],
            &graph_json,
        );
        assert!(out.status.success(), "store={store} stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains(&format!("{store} store")), "stdout: {stdout}");
        let len = stdout
            .lines()
            .find_map(|l| l.strip_prefix("schedule length:"))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no schedule length in: {stdout}"));
        assert!(
            stdout.lines().any(|l| l.starts_with("peak_live_states")),
            "no peak_live_states counter in: {stdout}"
        );
        let saved = stdout
            .lines()
            .find_map(|l| l.strip_prefix("replayed deltas saved"))
            .and_then(|v| v.trim_start_matches([' ', ':']).trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no replayed-deltas-saved counter in: {stdout}"));
        results.push((len, saved));
    }
    assert_eq!(results[0].0, results[1].0, "both stores must return the same optimum");
    assert!(results[0].1 > 0, "the arena's path-cache bases must bank skipped deltas");
    assert_eq!(results[1].1, 0, "the eager store never replays, so it never saves");

    // An unknown store fails cleanly.
    let bad = run_with_stdin(
        &["schedule", "--input", "-", "--algorithm", "parallel", "--store", "bogus"],
        &graph_json,
    );
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown state store"));
}

/// Every schedule run prints the arena-lifecycle counters
/// (`peak_live_records`, `reclaimed_records`, the path-cache hit rate);
/// `--arena-gc off` restores the append-only store (zero reclaimed) without
/// moving the optimum, and a malformed value fails cleanly.
#[test]
fn arena_gc_knob_and_lifecycle_counters_from_the_cli() {
    let generated = run(&["generate", "--nodes", "10", "--ccr", "1.0", "--seed", "7"]);
    assert!(generated.status.success());
    let graph_json = generated.stdout;

    let counter = |stdout: &str, name: &str| -> u64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .and_then(|v| v.trim_start_matches([' ', ':']).trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no {name} counter in: {stdout}"))
    };

    let mut lengths = Vec::new();
    let mut reclaimed = Vec::new();
    for gc in ["on", "off"] {
        let out = run_with_stdin(
            &[
                "schedule", "--input", "-", "--algorithm", "astar", "--procs", "3",
                "--arena-gc", gc,
            ],
            &graph_json,
        );
        assert!(out.status.success(), "gc={gc} stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(stdout.contains("path-cache hit rate"), "stdout: {stdout}");
        assert!(counter(&stdout, "peak_live_records") > 0, "stdout: {stdout}");
        lengths.push(counter(&stdout, "schedule length"));
        reclaimed.push(counter(&stdout, "reclaimed_records"));
    }
    assert_eq!(lengths[0], lengths[1], "GC never changes the search");
    assert!(reclaimed[0] > 0, "default GC must reclaim dead chains");
    assert_eq!(reclaimed[1], 0, "--arena-gc off is append-only");

    // The parallel family reports the same counters among its extras.
    let par = run_with_stdin(
        &[
            "schedule", "--input", "-", "--algorithm", "parallel", "--ppes", "2", "--procs",
            "3",
        ],
        &graph_json,
    );
    assert!(par.status.success(), "stderr: {}", String::from_utf8_lossy(&par.stderr));
    let stdout = String::from_utf8_lossy(&par.stdout).to_string();
    assert!(counter(&stdout, "reclaimed_records") > 0, "stdout: {stdout}");
    assert!(stdout.contains("path-cache hit rate"), "stdout: {stdout}");

    // A malformed value fails cleanly.
    let bad = run_with_stdin(&["schedule", "--input", "-", "--arena-gc", "sometimes"], &graph_json);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown --arena-gc"));
}

/// Feeds stdin in two chunks with a pause between, keeping the service alive
/// long enough for time-based behaviour (the periodic summary) to fire.
fn run_with_chunked_stdin(args: &[&str], first: &[u8], second: &[u8]) -> Output {
    let mut child = optsched(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn optsched");
    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        stdin.write_all(first).expect("write first chunk");
        stdin.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(120));
        stdin.write_all(second).expect("write second chunk");
    }
    child.wait_with_output().expect("wait for optsched")
}

/// `serve --summary-interval-ms` prints periodic metrics snapshots to stderr
/// while serving, and the final summary surfaces the admission-control and
/// cache-lifecycle counters (shed, degraded, evictions, expirations).
#[test]
fn serve_periodic_summaries_surface_backpressure_counters() {
    let corpus = run(&["requests", "--count", "6", "--seed", "7"]);
    assert!(corpus.status.success());
    let lines = String::from_utf8(corpus.stdout).unwrap();
    let split = lines.find('\n').unwrap() + 1;

    let served = run_with_chunked_stdin(
        &["serve", "--workers", "2", "--summary-interval-ms", "10"],
        &lines.as_bytes()[..split],
        &lines.as_bytes()[split..],
    );
    assert!(served.status.success(), "stderr: {}", String::from_utf8_lossy(&served.stderr));
    let stderr = String::from_utf8_lossy(&served.stderr);
    let metric_lines: Vec<&str> =
        stderr.lines().filter(|l| l.starts_with("serve: ")).collect();
    assert!(
        metric_lines.len() >= 2,
        "at least one periodic snapshot plus the final one, got: {stderr}"
    );
    for needle in ["pending", "shed", "degraded", "evictions", "expired", "hit rate"] {
        assert!(metric_lines[0].contains(needle), "`{needle}` missing from: {}", metric_lines[0]);
    }
    // The final per-connection summary also carries the shed/degrade tallies.
    assert!(stderr.contains("served 6 responses"), "stderr: {stderr}");
    assert!(stderr.contains("0 shed, 0 degraded"), "stderr: {stderr}");
}

/// `batch --summary` surfaces the new counters, and `--cache-max-age-ms 0`
/// is plumbed through: with everything expiring instantly the duplicate
/// instances cannot hit the cache, and the expiry counter shows why.
#[test]
fn batch_summary_reports_cache_lifecycle_counters_and_honours_max_age() {
    let corpus = run(&["requests", "--count", "8", "--seed", "7"]);
    assert!(corpus.status.success());

    let batch = run_with_stdin(
        &["batch", "--requests", "-", "--workers", "2", "--summary", "--cache-max-age-ms", "0"],
        corpus.stdout.as_slice(),
    );
    assert!(batch.status.success(), "stderr: {}", String::from_utf8_lossy(&batch.stderr));
    let stderr = String::from_utf8_lossy(&batch.stderr);
    let summary = stderr
        .lines()
        .find(|l| l.starts_with("batch:"))
        .unwrap_or_else(|| panic!("no summary in: {stderr}"));
    assert!(summary.contains("0 cache hits"), "a 0 ms TTL serves nothing: {summary}");
    assert!(summary.contains("0 shed, 0 degraded"), "{summary}");
    let expired: u64 = summary
        .split(" expired")
        .next()
        .and_then(|s| s.rsplit(", ").next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no expired counter in: {summary}"));
    assert!(expired > 0, "the duplicate lookups must have expired entries: {summary}");
}

//! Earliest-start-time computations shared by the heuristics and the optimal
//! searches.

use optsched_procnet::{ProcId, ProcNetwork};
use optsched_taskgraph::{Cost, NodeId, TaskGraph};

use crate::schedule::{Schedule, ScheduledTask};

/// Earliest time `node` could start on `proc`, **appending after the last
/// task already on `proc`** (non-insertion policy, as used by the paper's
/// search states and by the upper-bound heuristic).
///
/// The result is the maximum of the processor ready time and the *data-ready
/// time*: for every already-scheduled parent, its finish time plus the
/// communication delay if the parent sits on a different processor.
///
/// Parents that are not scheduled yet are ignored, so this is only meaningful
/// when all parents of `node` are scheduled (i.e. `node` is *ready*).
pub fn earliest_start_time(
    graph: &TaskGraph,
    net: &ProcNetwork,
    schedule: &Schedule,
    node: NodeId,
    proc: ProcId,
) -> Cost {
    let mut est = schedule.proc_ready_time(proc);
    for &(parent, comm) in graph.predecessors(node) {
        if let Some(pt) = schedule.assignment(parent) {
            let arrival = pt.finish + net.comm_cost(comm, pt.proc, proc);
            est = est.max(arrival);
        }
    }
    est
}

/// Earliest time `node` could start on `proc` using **insertion scheduling**:
/// the task may be placed in an idle slot between two tasks already on the
/// processor, provided the slot is long enough and not earlier than the data
/// ready time.
///
/// Used by the insertion-based list heuristic (a slightly stronger baseline
/// than the paper's append-only upper-bound heuristic).
pub fn earliest_start_time_insertion(
    graph: &TaskGraph,
    net: &ProcNetwork,
    schedule: &Schedule,
    node: NodeId,
    proc: ProcId,
) -> Cost {
    let mut scratch = Vec::new();
    earliest_start_time_insertion_with(graph, net, schedule, node, proc, &mut scratch)
}

/// [`earliest_start_time_insertion`] with a caller-provided scratch buffer for
/// the per-processor task list, so a scoring loop probing many
/// (node, processor) pairs performs no per-probe allocation.
pub fn earliest_start_time_insertion_with(
    graph: &TaskGraph,
    net: &ProcNetwork,
    schedule: &Schedule,
    node: NodeId,
    proc: ProcId,
    scratch: &mut Vec<ScheduledTask>,
) -> Cost {
    // Data-ready time.
    let mut drt = 0;
    for &(parent, comm) in graph.predecessors(node) {
        if let Some(pt) = schedule.assignment(parent) {
            drt = drt.max(pt.finish + net.comm_cost(comm, pt.proc, proc));
        }
    }
    let duration = net.exec_time(graph.weight(node), proc);
    schedule.tasks_on_into(proc, scratch);
    // Try the gap before the first task, between consecutive tasks, then after the last.
    let mut slot_start = 0;
    for t in scratch.iter() {
        let candidate = drt.max(slot_start);
        if candidate + duration <= t.start {
            return candidate;
        }
        slot_start = slot_start.max(t.finish);
    }
    drt.max(slot_start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, GraphBuilder};

    #[test]
    fn est_empty_schedule_is_zero_for_entry() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let s = Schedule::new(g.num_nodes(), 3);
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(0), ProcId(0)), 0);
    }

    #[test]
    fn est_respects_communication_on_other_processor() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), 3);
        s.assign(NodeId(0), ProcId(0), 0, 2);
        // n2 on PE0: ready time 2 (no comm); on PE1: 2 + 1 = 3.
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(1), ProcId(0)), 2);
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(1), ProcId(1)), 3);
        // n4 has comm 2 from n1.
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(3), ProcId(2)), 4);
    }

    #[test]
    fn est_respects_processor_ready_time() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), 3);
        s.assign(NodeId(0), ProcId(0), 0, 2);
        s.assign(NodeId(3), ProcId(1), 4, 8); // n4 occupies PE1 until 8
        // n2 on PE1 cannot start before PE1 is free (append-only).
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(1), ProcId(1)), 8);
    }

    #[test]
    fn insertion_est_finds_gap() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), 3);
        s.assign(NodeId(0), ProcId(0), 0, 2);
        s.assign(NodeId(3), ProcId(1), 10, 14); // leaves an idle slot [0, 10) on PE1
        // n2 (weight 3, data ready at 3 on PE1) fits in the gap at 3.
        assert_eq!(earliest_start_time_insertion(&g, &net, &s, NodeId(1), ProcId(1)), 3);
        // Append-only EST would have to wait until 14.
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(1), ProcId(1)), 14);
    }

    #[test]
    fn insertion_est_skips_too_small_gap() {
        // Parent a, then two children; gap of 1 unit is too small for weight-3 task.
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(3);
        b.add_edge(a, c, 0).unwrap();
        let g = b.build().unwrap();
        let net = ProcNetwork::fully_connected(1);
        let mut s = Schedule::new(2, 1);
        s.assign(a, ProcId(0), 0, 1);
        // Occupy [2, 5) with a fake placement of c? No: schedule another copy is
        // impossible; instead make the gap by delaying a to [4,5) and checking
        // append behaviour.
        s.assign(a, ProcId(0), 4, 5);
        assert_eq!(earliest_start_time_insertion(&g, &net, &s, c, ProcId(0)), 5);
    }

    #[test]
    fn insertion_est_before_first_task() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), 3);
        // PE0 busy from 10; entry node n1 (no parents) can be inserted at 0.
        s.assign(NodeId(3), ProcId(0), 10, 14);
        assert_eq!(earliest_start_time_insertion(&g, &net, &s, NodeId(0), ProcId(0)), 0);
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(0), ProcId(0)), 14);
    }

    #[test]
    fn hop_scaled_comm_model_increases_est() {
        let g = paper_example_dag();
        let net = ProcNetwork::chain(3).with_comm_model(optsched_procnet::CommModel::HopScaled);
        let mut s = Schedule::new(g.num_nodes(), 3);
        s.assign(NodeId(0), ProcId(0), 0, 2);
        // n4 (comm 2 from n1): on PE2 the message crosses 2 hops -> 2 + 4 = 6.
        assert_eq!(earliest_start_time(&g, &net, &s, NodeId(3), ProcId(2)), 6);
    }
}

//! The [`Schedule`] type: assignments, makespan and validation.

use std::fmt;

use serde::{Deserialize, Serialize};

use optsched_procnet::{ProcId, ProcNetwork};
use optsched_taskgraph::{Cost, NodeId, TaskGraph};

/// One scheduled task: where and when it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledTask {
    /// The task.
    pub node: NodeId,
    /// Processor it is assigned to.
    pub proc: ProcId,
    /// Start time.
    pub start: Cost,
    /// Finish time (`start + exec_time`).
    pub finish: Cost,
}

/// Validation failures reported by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A node of the graph has no assignment.
    NodeNotScheduled(NodeId),
    /// A scheduled node references a processor outside the network.
    UnknownProcessor(NodeId, ProcId),
    /// finish != start + exec_time(w, proc).
    WrongDuration {
        /// Offending node.
        node: NodeId,
        /// Expected finish time.
        expected_finish: Cost,
        /// Recorded finish time.
        actual_finish: Cost,
    },
    /// A node starts before a parent's data can reach it.
    PrecedenceViolated {
        /// The parent task.
        parent: NodeId,
        /// The child task that starts too early.
        child: NodeId,
        /// Earliest legal start of the child given the parent.
        earliest: Cost,
        /// Actual start of the child.
        actual: Cost,
    },
    /// Two tasks overlap in time on the same processor.
    Overlap {
        /// The processor on which the overlap occurs.
        proc: ProcId,
        /// First task involved.
        a: NodeId,
        /// Second task involved.
        b: NodeId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NodeNotScheduled(n) => write!(f, "{n} is not scheduled"),
            ScheduleError::UnknownProcessor(n, p) => write!(f, "{n} assigned to unknown {p}"),
            ScheduleError::WrongDuration { node, expected_finish, actual_finish } => write!(
                f,
                "{node} has finish time {actual_finish}, expected {expected_finish}"
            ),
            ScheduleError::PrecedenceViolated { parent, child, earliest, actual } => write!(
                f,
                "{child} starts at {actual} but data from {parent} only arrives at {earliest}"
            ),
            ScheduleError::Overlap { proc, a, b } => {
                write!(f, "{a} and {b} overlap on {proc}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A (possibly partial) schedule of a task graph onto a processor network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Indexed by node id.
    assignments: Vec<Option<ScheduledTask>>,
    num_procs: usize,
}

impl Schedule {
    /// An empty schedule for a graph with `num_nodes` nodes on `num_procs` processors.
    pub fn new(num_nodes: usize, num_procs: usize) -> Schedule {
        Schedule { assignments: vec![None; num_nodes], num_procs }
    }

    /// Number of processors the schedule targets.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Number of nodes the schedule can hold.
    pub fn num_nodes(&self) -> usize {
        self.assignments.len()
    }

    /// Number of nodes assigned so far.
    pub fn num_scheduled(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_some()).count()
    }

    /// True once every node has an assignment.
    pub fn is_complete(&self) -> bool {
        self.assignments.iter().all(|a| a.is_some())
    }

    /// Records that `node` runs on `proc` during `[start, finish)`.
    ///
    /// Overwrites any previous assignment of the same node.
    pub fn assign(&mut self, node: NodeId, proc: ProcId, start: Cost, finish: Cost) {
        assert!(finish >= start, "finish before start for {node}");
        assert!(proc.index() < self.num_procs, "{proc} outside the network");
        self.assignments[node.index()] = Some(ScheduledTask { node, proc, start, finish });
    }

    /// The assignment of `node`, if it has one.
    pub fn assignment(&self, node: NodeId) -> Option<&ScheduledTask> {
        self.assignments[node.index()].as_ref()
    }

    /// Start time `ST(node)`, if scheduled.
    pub fn start_time(&self, node: NodeId) -> Option<Cost> {
        self.assignment(node).map(|t| t.start)
    }

    /// Finish time `FT(node)`, if scheduled.
    pub fn finish_time(&self, node: NodeId) -> Option<Cost> {
        self.assignment(node).map(|t| t.finish)
    }

    /// Processor of `node`, if scheduled.
    pub fn proc_of(&self, node: NodeId) -> Option<ProcId> {
        self.assignment(node).map(|t| t.proc)
    }

    /// All assignments made so far, in node-id order.
    pub fn tasks(&self) -> impl Iterator<Item = &ScheduledTask> + '_ {
        self.assignments.iter().flatten()
    }

    /// Tasks assigned to `proc`, sorted by start time.
    pub fn tasks_on(&self, proc: ProcId) -> Vec<ScheduledTask> {
        let mut v = Vec::new();
        self.tasks_on_into(proc, &mut v);
        v
    }

    /// Fills `out` with the tasks assigned to `proc`, sorted by start time,
    /// reusing `out`'s existing allocation.  The allocation-free counterpart
    /// of [`tasks_on`](Schedule::tasks_on) for callers that probe many
    /// (node, processor) pairs in a loop.
    pub fn tasks_on_into(&self, proc: ProcId, out: &mut Vec<ScheduledTask>) {
        out.clear();
        out.extend(self.tasks().filter(|t| t.proc == proc).copied());
        out.sort_by_key(|t| (t.start, t.finish, t.node));
    }

    /// Ready time of a processor: finish time of the last task on it (0 if empty).
    ///
    /// This is `RT_i` of Definition 1 in the paper.
    pub fn proc_ready_time(&self, proc: ProcId) -> Cost {
        self.tasks().filter(|t| t.proc == proc).map(|t| t.finish).max().unwrap_or(0)
    }

    /// Number of processors actually used (with at least one task).
    pub fn procs_used(&self) -> usize {
        let mut used = vec![false; self.num_procs];
        for t in self.tasks() {
            used[t.proc.index()] = true;
        }
        used.into_iter().filter(|&u| u).count()
    }

    /// Schedule length (makespan): the largest finish time, 0 if nothing is scheduled.
    pub fn makespan(&self) -> Cost {
        self.tasks().map(|t| t.finish).max().unwrap_or(0)
    }

    /// Sum of idle time over processors that are used, between time 0 and the makespan.
    pub fn total_idle_time(&self) -> Cost {
        let makespan = self.makespan();
        let mut idle = 0;
        for p in 0..self.num_procs {
            let tasks = self.tasks_on(ProcId(p as u32));
            if tasks.is_empty() {
                continue;
            }
            let busy: Cost = tasks.iter().map(|t| t.finish - t.start).sum();
            idle += makespan - busy;
        }
        idle
    }

    /// Checks that the schedule is complete and satisfies every constraint of
    /// the model (see the crate-level documentation). Returns the first
    /// violation found.
    pub fn validate(&self, graph: &TaskGraph, net: &ProcNetwork) -> Result<(), ScheduleError> {
        // Completeness and per-task sanity.
        for n in graph.node_ids() {
            let t = self.assignment(n).ok_or(ScheduleError::NodeNotScheduled(n))?;
            if t.proc.index() >= net.num_procs() {
                return Err(ScheduleError::UnknownProcessor(n, t.proc));
            }
            let expected_finish = t.start + net.exec_time(graph.weight(n), t.proc);
            if t.finish != expected_finish {
                return Err(ScheduleError::WrongDuration {
                    node: n,
                    expected_finish,
                    actual_finish: t.finish,
                });
            }
        }
        // Precedence + communication.
        for e in graph.edges() {
            let pt = self.assignment(e.src).expect("checked above");
            let ct = self.assignment(e.dst).expect("checked above");
            let earliest = pt.finish + net.comm_cost(e.weight, pt.proc, ct.proc);
            if ct.start < earliest {
                return Err(ScheduleError::PrecedenceViolated {
                    parent: e.src,
                    child: e.dst,
                    earliest,
                    actual: ct.start,
                });
            }
        }
        // Processor exclusivity.
        for p in 0..self.num_procs {
            let tasks = self.tasks_on(ProcId(p as u32));
            for w in tasks.windows(2) {
                // Zero-weight tasks may share an instant; a genuine overlap
                // requires the earlier task to finish strictly after the later starts.
                if w[0].finish > w[1].start {
                    return Err(ScheduleError::Overlap {
                        proc: ProcId(p as u32),
                        a: w[0].node,
                        b: w[1].node,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    /// Builds the optimal schedule of Figure 4 (length 14) by hand:
    /// PE0: n1 [0,2), n2 [2,5), n5 [6,11), n6 [12,14)  -- wait, the figure
    /// packs n1..n6 onto PE0/PE1; here we just need *a* valid complete
    /// schedule, so we place everything on PE0 sequentially for structure
    /// tests and build the length-14 one in the core crate's tests.
    fn serial_schedule() -> (Schedule, optsched_taskgraph::TaskGraph, ProcNetwork) {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), net.num_procs());
        // Topological serial order n1..n6 on PE0.
        let mut t = 0;
        for n in g.node_ids() {
            let w = g.weight(n);
            s.assign(n, ProcId(0), t, t + w);
            t += w;
        }
        (s, g, net)
    }

    #[test]
    fn serial_schedule_is_valid_and_has_sum_makespan() {
        let (s, g, net) = serial_schedule();
        assert!(s.is_complete());
        assert_eq!(s.makespan(), g.total_computation());
        s.validate(&g, &net).unwrap();
        assert_eq!(s.procs_used(), 1);
        assert_eq!(s.total_idle_time(), 0);
    }

    #[test]
    fn empty_schedule_properties() {
        let g = paper_example_dag();
        let s = Schedule::new(g.num_nodes(), 3);
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.num_scheduled(), 0);
        assert!(!s.is_complete());
        assert_eq!(s.proc_ready_time(ProcId(1)), 0);
        assert_eq!(s.procs_used(), 0);
    }

    #[test]
    fn validate_detects_missing_node() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), 3);
        s.assign(NodeId(0), ProcId(0), 0, 2);
        assert!(matches!(s.validate(&g, &net), Err(ScheduleError::NodeNotScheduled(_))));
    }

    #[test]
    fn validate_detects_wrong_duration() {
        let (mut s, g, net) = serial_schedule();
        s.assign(NodeId(0), ProcId(0), 0, 99);
        let err = s.validate(&g, &net).unwrap_err();
        assert!(matches!(err, ScheduleError::WrongDuration { node: NodeId(0), .. }));
        assert!(err.to_string().contains("finish time"));
    }

    #[test]
    fn validate_detects_precedence_violation_with_comm() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), 3);
        let mut t = 0;
        for n in g.node_ids() {
            let w = g.weight(n);
            s.assign(n, ProcId(0), t, t + w);
            t += w;
        }
        // Move n2 (child of n1, comm 1) to PE1 starting at FT(n1): too early,
        // the message needs 1 extra unit.
        s.assign(NodeId(1), ProcId(1), 2, 5);
        let err = s.validate(&g, &net).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::PrecedenceViolated {
                parent: NodeId(0),
                child: NodeId(1),
                earliest: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn validate_detects_overlap() {
        let (mut s, g, net) = serial_schedule();
        // Shift n3 to start inside n2's slot on the same processor while
        // keeping its duration and precedence legal (n1 finishes at 2).
        let start = s.start_time(NodeId(1)).unwrap() + 1;
        s.assign(NodeId(2), ProcId(0), start, start + g.weight(NodeId(2)));
        let err = s.validate(&g, &net).unwrap_err();
        assert!(matches!(err, ScheduleError::Overlap { proc: ProcId(0), .. }), "{err}");
    }

    #[test]
    fn heterogeneous_duration_checked() {
        let g = paper_example_dag();
        let net = ProcNetwork::fully_connected(2).with_cycle_times(&[1, 3]);
        let mut s = Schedule::new(g.num_nodes(), 2);
        // n1 on slow PE1 must take 6 units.
        s.assign(NodeId(0), ProcId(1), 0, 2);
        let err = s.validate(&g, &net).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::WrongDuration { node: NodeId(0), expected_finish: 6, actual_finish: 2 }
        ));
    }

    #[test]
    fn ready_time_and_tasks_on() {
        let (s, _, _) = serial_schedule();
        assert_eq!(s.proc_ready_time(ProcId(0)), s.makespan());
        assert_eq!(s.tasks_on(ProcId(0)).len(), 6);
        assert_eq!(s.tasks_on(ProcId(1)).len(), 0);
        let tasks = s.tasks_on(ProcId(0));
        assert!(tasks.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn serde_round_trip() {
        let (s, _, _) = serial_schedule();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "outside the network")]
    fn assigning_to_unknown_processor_panics() {
        let g = paper_example_dag();
        let mut s = Schedule::new(g.num_nodes(), 2);
        s.assign(NodeId(0), ProcId(5), 0, 2);
    }
}

//! Plain-text Gantt-chart rendering of schedules (the textual analogue of
//! Figure 4 in the paper).

use std::fmt::Write as _;

use optsched_procnet::ProcId;
use optsched_taskgraph::TaskGraph;

use crate::schedule::Schedule;

/// Renders a schedule as a per-processor task table followed by a scaled
/// ASCII time chart.
///
/// Example output for the paper's optimal schedule (length 14):
///
/// ```text
/// schedule length = 14
/// PE0: n0[0-2) n1[2-5) n4[6-11) n5[12-14)
/// PE1: n2[3-6) n3[4-8)
/// ...
/// ```
pub fn render_gantt(schedule: &Schedule, graph: &TaskGraph) -> String {
    let mut out = String::new();
    writeln!(out, "schedule length = {}", schedule.makespan()).unwrap();
    for p in 0..schedule.num_procs() {
        let proc = ProcId(p as u32);
        let tasks = schedule.tasks_on(proc);
        let mut line = format!("{proc}:");
        for t in &tasks {
            let label = graph
                .node(t.node)
                .label
                .clone()
                .unwrap_or_else(|| format!("n{}", t.node.0));
            write!(line, " {}[{}-{})", label, t.start, t.finish).unwrap();
        }
        writeln!(out, "{line}").unwrap();
    }
    // Scaled bar chart (one character per `scale` time units, max 80 columns).
    let makespan = schedule.makespan();
    if makespan > 0 {
        let scale = (makespan as usize).div_ceil(78).max(1);
        writeln!(out, "time 0..{makespan} ({scale} unit(s)/char)").unwrap();
        for p in 0..schedule.num_procs() {
            let proc = ProcId(p as u32);
            let mut row = vec![b'.'; (makespan as usize).div_ceil(scale)];
            for t in schedule.tasks_on(proc) {
                let ch = char::from(b'A' + (t.node.0 % 26) as u8) as u8;
                let lo = t.start as usize / scale;
                let hi = ((t.finish as usize).div_ceil(scale)).min(row.len());
                for cell in &mut row[lo..hi.max(lo)] {
                    *cell = ch;
                }
            }
            writeln!(out, "{proc:>4} |{}|", String::from_utf8_lossy(&row)).unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::{ProcId, ProcNetwork};
    use optsched_taskgraph::paper_example_dag;

    #[test]
    fn gantt_lists_every_processor_and_task() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let mut s = Schedule::new(g.num_nodes(), net.num_procs());
        let mut t = 0;
        for n in g.node_ids() {
            s.assign(n, ProcId(0), t, t + g.weight(n));
            t += g.weight(n);
        }
        let text = render_gantt(&s, &g);
        assert!(text.contains("schedule length = 19"));
        assert!(text.contains("PE0:"));
        assert!(text.contains("PE2:"));
        assert!(text.contains("n1[0-2)"));
        assert!(text.contains("n6[17-19)"));
        // Bar chart rows exist for all three PEs.
        assert_eq!(text.matches('|').count(), 6);
    }

    #[test]
    fn gantt_of_empty_schedule_has_no_bars() {
        let g = paper_example_dag();
        let s = Schedule::new(g.num_nodes(), 2);
        let text = render_gantt(&s, &g);
        assert!(text.contains("schedule length = 0"));
        assert!(!text.contains('|'));
    }

    #[test]
    fn long_schedules_are_scaled_to_fit() {
        let g = paper_example_dag();
        let mut s = Schedule::new(g.num_nodes(), 1);
        let mut t = 0;
        for n in g.node_ids() {
            let w = g.weight(n) * 1000;
            s.assign(n, ProcId(0), t, t + w);
            t += w;
        }
        let text = render_gantt(&s, &g);
        let bar_line = text.lines().find(|l| l.contains("PE0 |")).unwrap();
        assert!(bar_line.len() <= 90, "bar line too long: {}", bar_line.len());
    }
}

//! Schedule substrate: mapping of task-graph nodes to processors and time
//! slots, with validation and rendering.
//!
//! A [`Schedule`] assigns every (or, while it is being built, some) node of a
//! [`TaskGraph`](optsched_taskgraph::TaskGraph) a processor, a start time and
//! a finish time.  The *schedule length* (makespan) is the largest finish
//! time.  [`Schedule::validate`] checks the two correctness conditions of the
//! scheduling model in Section 2 of the paper:
//!
//! 1. **Precedence + communication**: a node cannot start before every parent
//!    has finished and, if the parent is on a different processor, before the
//!    parent's message (edge weight, possibly hop-scaled) has arrived.
//! 2. **Exclusive processors**: tasks on the same processor never overlap and
//!    execute for exactly `exec_time(w, proc)` time units (no preemption).
//!
//! The crate also provides [`est`], the earliest-start-time computation shared
//! by the list-scheduling heuristics and the optimal searches.

#![warn(missing_docs)]

pub mod est;
pub mod gantt;
pub mod schedule;

pub use est::{
    earliest_start_time, earliest_start_time_insertion, earliest_start_time_insertion_with,
};
pub use gantt::render_gantt;
pub use schedule::{Schedule, ScheduleError, ScheduledTask};

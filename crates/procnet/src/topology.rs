//! Named interconnection topologies and their edge lists.

use serde::{Deserialize, Serialize};

/// A named interconnection topology, used both for the *target* processors
/// (TPEs, the machine the DAG is scheduled onto) and for the *physical*
/// processors of the parallel search (PPEs, e.g. the mesh of the Intel
/// Paragon in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every processor is directly connected to every other processor.
    FullyConnected,
    /// Processors 0..p arranged in a cycle.
    Ring,
    /// Processors 0..p arranged in a line (no wrap-around link).
    Chain,
    /// A `rows x cols` 2-D mesh without wrap-around (the Paragon topology).
    Mesh {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A binary hypercube; the processor count must be a power of two.
    Hypercube,
    /// Processor 0 is the hub, all others are leaves connected only to it.
    Star,
}

impl Topology {
    /// Generates the undirected edge list `(a, b)` with `a < b` for a
    /// topology over `p` processors.
    ///
    /// # Panics
    ///
    /// * `Mesh { rows, cols }` panics if `rows * cols != p`.
    /// * `Hypercube` panics if `p` is not a power of two.
    pub fn edges(&self, p: usize) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        match *self {
            Topology::FullyConnected => {
                for a in 0..p {
                    for b in (a + 1)..p {
                        edges.push((a, b));
                    }
                }
            }
            Topology::Ring => {
                if p == 2 {
                    edges.push((0, 1));
                } else if p > 2 {
                    for a in 0..p {
                        let b = (a + 1) % p;
                        edges.push((a.min(b), a.max(b)));
                    }
                    edges.sort_unstable();
                    edges.dedup();
                }
            }
            Topology::Chain => {
                for a in 0..p.saturating_sub(1) {
                    edges.push((a, a + 1));
                }
            }
            Topology::Mesh { rows, cols } => {
                assert_eq!(rows * cols, p, "mesh dimensions must multiply to the processor count");
                let id = |r: usize, c: usize| r * cols + c;
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            edges.push((id(r, c), id(r, c + 1)));
                        }
                        if r + 1 < rows {
                            edges.push((id(r, c), id(r + 1, c)));
                        }
                    }
                }
            }
            Topology::Hypercube => {
                assert!(p.is_power_of_two(), "hypercube size must be a power of two");
                for a in 0..p {
                    let mut bit = 1usize;
                    while bit < p {
                        let b = a ^ bit;
                        if a < b {
                            edges.push((a, b));
                        }
                        bit <<= 1;
                    }
                }
            }
            Topology::Star => {
                for b in 1..p {
                    edges.push((0, b));
                }
            }
        }
        edges
    }

    /// Number of edges the topology has over `p` processors.
    pub fn num_edges(&self, p: usize) -> usize {
        self.edges(p).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_edge_count() {
        assert_eq!(Topology::FullyConnected.num_edges(5), 10);
        assert_eq!(Topology::FullyConnected.num_edges(1), 0);
    }

    #[test]
    fn ring_edge_count_and_degenerate_sizes() {
        assert_eq!(Topology::Ring.num_edges(5), 5);
        assert_eq!(Topology::Ring.num_edges(3), 3);
        assert_eq!(Topology::Ring.num_edges(2), 1);
        assert_eq!(Topology::Ring.num_edges(1), 0);
    }

    #[test]
    fn chain_edge_count() {
        assert_eq!(Topology::Chain.num_edges(5), 4);
        assert_eq!(Topology::Chain.num_edges(1), 0);
    }

    #[test]
    fn mesh_edges() {
        let e = Topology::Mesh { rows: 2, cols: 3 }.edges(6);
        // 2x3 mesh: 3 vertical + 4 horizontal = 7 edges.
        assert_eq!(e.len(), 7);
        assert!(e.contains(&(0, 1)));
        assert!(e.contains(&(0, 3)));
        assert!(!e.contains(&(2, 3))); // no wrap from end of row 0 to start of row 1
    }

    #[test]
    #[should_panic(expected = "mesh dimensions")]
    fn mesh_dimension_mismatch_panics() {
        Topology::Mesh { rows: 2, cols: 2 }.edges(6);
    }

    #[test]
    fn hypercube_edges() {
        let e = Topology::Hypercube.edges(8);
        assert_eq!(e.len(), 12); // 8 * 3 / 2
        assert!(e.contains(&(0, 4)));
        assert!(e.contains(&(3, 7)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hypercube_non_power_of_two_panics() {
        Topology::Hypercube.edges(6);
    }

    #[test]
    fn star_edges() {
        let e = Topology::Star.edges(4);
        assert_eq!(e, vec![(0, 1), (0, 2), (0, 3)]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Topology::Mesh { rows: 4, cols: 4 };
        let s = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Topology>(&s).unwrap(), t);
    }
}

//! Target processor-network substrate for the `optsched` workspace.
//!
//! The target system is a set of processing elements (PEs) that do **not**
//! share memory; all communication is by message passing over an
//! interconnection network of a given topology (fully connected, ring, chain,
//! mesh, hypercube, star, or arbitrary).  Processors may be heterogeneous
//! (different speeds) but the communication links are homogeneous: a message
//! is transmitted with the same speed on every link, exactly as assumed in
//! Section 2 of Kwok & Ahmad (ICPP'98).
//!
//! The central type is [`ProcNetwork`], which stores the processor list, the
//! adjacency structure, all-pairs hop distances, and the communication model
//! used to turn a task-graph edge weight into an inter-processor
//! communication delay.
//!
//! ```
//! use optsched_procnet::{ProcNetwork, ProcId};
//!
//! let net = ProcNetwork::ring(3);
//! assert_eq!(net.num_procs(), 3);
//! assert!(net.interchangeable(ProcId(0), ProcId(1)));
//! assert_eq!(net.hops(ProcId(0), ProcId(2)), 1);
//! ```

#![warn(missing_docs)]

pub mod network;
pub mod topology;

pub use network::{CommModel, ProcId, ProcNetwork, Processor};
pub use topology::Topology;

//! The processor network: processors, links, hop distances and the
//! communication-cost model.

use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// Identifier of a target processing element (TPE). Dense indices `0..p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

/// A single processing element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Processor {
    /// Time a unit of computation takes on this processor.  A homogeneous
    /// system uses `1` everywhere; a processor with `cycle_time = 2` runs
    /// every task twice as slowly as the reference processor.
    pub cycle_time: u64,
    /// Optional human-readable label.
    pub label: Option<String>,
}

impl Default for Processor {
    fn default() -> Self {
        Processor { cycle_time: 1, label: None }
    }
}

/// How a task-graph edge weight is converted into an inter-processor
/// communication delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CommModel {
    /// The classic model used by the paper's cost function: the delay equals
    /// the edge weight whenever the two tasks are on *different* processors
    /// and zero when they are co-located.  Link homogeneity means the delay
    /// does not depend on which pair of processors is involved.
    #[default]
    UniformLatency,
    /// The delay is the edge weight multiplied by the hop distance between
    /// the two processors (store-and-forward routing).  Used to model sparser
    /// topologies more faithfully and by the Chen & Yu style bound, which
    /// matches execution paths against the processor graph.
    HopScaled,
}

/// An immutable processor network.
///
/// # Wire format
///
/// `ProcNetwork` (de)serialises as
/// `{"procs": [...], "links": [[a, b], ...], "comm_model": ..., "topology": ...}`
/// — the canonical parts only; the adjacency lists and the all-pairs hop
/// distances are recomputed on deserialisation through
/// [`ProcNetwork::try_from_parts`], which rejects out-of-range endpoints and
/// self links with a clear message instead of panicking or accepting an
/// inconsistent network.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcNetwork {
    procs: Vec<Processor>,
    /// Sorted neighbour lists.
    adj: Vec<Vec<ProcId>>,
    /// All-pairs hop distances (`u32::MAX` = unreachable).
    dist: Vec<Vec<u32>>,
    comm_model: CommModel,
    topology: Option<Topology>,
}

impl ProcNetwork {
    /// Builds a network of `p` homogeneous processors with the given topology.
    pub fn with_topology(topology: Topology, p: usize) -> ProcNetwork {
        Self::from_parts(vec![Processor::default(); p], topology.edges(p), Some(topology))
    }

    /// `p` homogeneous, fully connected processors.
    pub fn fully_connected(p: usize) -> ProcNetwork {
        Self::with_topology(Topology::FullyConnected, p)
    }

    /// `p` homogeneous processors in a ring (the 3-processor target of
    /// Figure 1(b) is `ProcNetwork::ring(3)`).
    pub fn ring(p: usize) -> ProcNetwork {
        Self::with_topology(Topology::Ring, p)
    }

    /// `p` homogeneous processors in a chain.
    pub fn chain(p: usize) -> ProcNetwork {
        Self::with_topology(Topology::Chain, p)
    }

    /// A `rows x cols` homogeneous mesh.
    pub fn mesh(rows: usize, cols: usize) -> ProcNetwork {
        Self::with_topology(Topology::Mesh { rows, cols }, rows * cols)
    }

    /// A homogeneous hypercube with `p` processors (`p` must be a power of two).
    pub fn hypercube(p: usize) -> ProcNetwork {
        Self::with_topology(Topology::Hypercube, p)
    }

    /// A homogeneous star with processor 0 as hub.
    pub fn star(p: usize) -> ProcNetwork {
        Self::with_topology(Topology::Star, p)
    }

    /// Builds an arbitrary network from a processor list and an undirected
    /// edge list.
    ///
    /// # Panics
    ///
    /// Panics on an empty processor list, out-of-range endpoints or self
    /// links; use [`ProcNetwork::try_from_parts`] for fallible construction
    /// from untrusted input (the wire format does).
    pub fn from_parts(
        procs: Vec<Processor>,
        edges: Vec<(usize, usize)>,
        topology: Option<Topology>,
    ) -> ProcNetwork {
        match Self::try_from_parts(procs, edges, topology) {
            Ok(net) => net,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`ProcNetwork::from_parts`]: returns a message
    /// naming the violated invariant instead of panicking.
    pub fn try_from_parts(
        procs: Vec<Processor>,
        edges: Vec<(usize, usize)>,
        topology: Option<Topology>,
    ) -> Result<ProcNetwork, String> {
        let p = procs.len();
        if p == 0 {
            return Err("a processor network needs at least one processor".to_string());
        }
        let mut adj: Vec<Vec<ProcId>> = vec![Vec::new(); p];
        for &(a, b) in &edges {
            if a >= p || b >= p {
                return Err(format!("edge ({a}, {b}) references an unknown processor"));
            }
            if a == b {
                return Err(format!("self links are not allowed (PE{a})"));
            }
            if !adj[a].contains(&ProcId(b as u32)) {
                adj[a].push(ProcId(b as u32));
                adj[b].push(ProcId(a as u32));
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let dist = all_pairs_hops(&adj);
        Ok(ProcNetwork { procs, adj, dist, comm_model: CommModel::UniformLatency, topology })
    }

    /// The undirected link list of the processor graph, each link reported
    /// once with its smaller endpoint first, sorted.  Together with the
    /// processor list and the communication model this is the canonical form
    /// the wire format serialises (and the instance signature hashes).
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut links = Vec::new();
        for a in self.proc_ids() {
            for &b in self.neighbors(a) {
                if a < b {
                    links.push((a.index(), b.index()));
                }
            }
        }
        links
    }

    /// Returns a copy of this network using the given communication model.
    pub fn with_comm_model(mut self, model: CommModel) -> ProcNetwork {
        self.comm_model = model;
        self
    }

    /// Returns a copy of this network with per-processor cycle times
    /// (heterogeneous speeds). `cycle_times.len()` must equal the processor count.
    pub fn with_cycle_times(mut self, cycle_times: &[u64]) -> ProcNetwork {
        assert_eq!(cycle_times.len(), self.procs.len());
        assert!(cycle_times.iter().all(|&c| c > 0), "cycle times must be positive");
        for (p, &c) in self.procs.iter_mut().zip(cycle_times) {
            p.cycle_time = c;
        }
        self
    }

    /// Number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Iterator over all processor ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.procs.len() as u32).map(ProcId)
    }

    /// The processor record.
    #[inline]
    pub fn processor(&self, p: ProcId) -> &Processor {
        &self.procs[p.index()]
    }

    /// The topology this network was created from, if it was a named one.
    pub fn topology(&self) -> Option<Topology> {
        self.topology
    }

    /// The communication model in force.
    pub fn comm_model(&self) -> CommModel {
        self.comm_model
    }

    /// Sorted neighbour list of `p`.
    #[inline]
    pub fn neighbors(&self, p: ProcId) -> &[ProcId] {
        &self.adj[p.index()]
    }

    /// Degree of `p` in the processor graph.
    #[inline]
    pub fn degree(&self, p: ProcId) -> usize {
        self.adj[p.index()].len()
    }

    /// Hop distance between `a` and `b` (0 if equal, `u32::MAX` if unreachable).
    #[inline]
    pub fn hops(&self, a: ProcId, b: ProcId) -> u32 {
        self.dist[a.index()][b.index()]
    }

    /// True if every processor can reach every other processor.
    pub fn is_connected(&self) -> bool {
        self.dist.iter().all(|row| row.iter().all(|&d| d != u32::MAX))
    }

    /// True if all processors have the same speed.
    pub fn is_homogeneous(&self) -> bool {
        self.procs.windows(2).all(|w| w[0].cycle_time == w[1].cycle_time)
    }

    /// Execution time of a task with computation cost `weight` on processor `p`.
    #[inline]
    pub fn exec_time(&self, weight: u64, p: ProcId) -> u64 {
        weight * self.procs[p.index()].cycle_time
    }

    /// Communication delay for a task-graph edge of weight `comm` when the
    /// parent runs on `from` and the child on `to`.
    #[inline]
    pub fn comm_cost(&self, comm: u64, from: ProcId, to: ProcId) -> u64 {
        if from == to {
            return 0;
        }
        match self.comm_model {
            CommModel::UniformLatency => comm,
            CommModel::HopScaled => comm * u64::from(self.hops(from, to).max(1)),
        }
    }

    /// True if swapping processors `a` and `b` (leaving everything else in
    /// place) is an automorphism of the processor graph and both processors
    /// run at the same speed.
    ///
    /// This is the structural half of the paper's *processor isomorphism*
    /// pruning rule (Definition 2(i): same degree and same neighbourhood);
    /// the scheduler additionally requires both processors to be empty
    /// (Definition 2(ii)) before collapsing them.  Requiring a genuine
    /// transposition automorphism keeps the pruning *safe*: any schedule that
    /// uses `b` can be relabelled to use `a` with identical timing.
    pub fn interchangeable(&self, a: ProcId, b: ProcId) -> bool {
        if a == b {
            return true;
        }
        if self.procs[a.index()].cycle_time != self.procs[b.index()].cycle_time {
            return false;
        }
        if self.degree(a) != self.degree(b) {
            return false;
        }
        // Neighbour sets must coincide once the two processors themselves are
        // ignored (so that e.g. all PEs of a triangle/fully-connected network
        // are pairwise interchangeable).
        let na: Vec<ProcId> = self.neighbors(a).iter().copied().filter(|&x| x != b).collect();
        let nb: Vec<ProcId> = self.neighbors(b).iter().copied().filter(|&x| x != a).collect();
        na == nb
    }

    /// Groups all processors into interchangeability classes (transitive
    /// closure of [`ProcNetwork::interchangeable`] applied pairwise).
    ///
    /// The relation as defined is reflexive and symmetric; for the symmetric
    /// topologies used in practice (fully connected, star leaves, K3 ring) it
    /// is also transitive.  The grouping below unions pairwise-related
    /// processors, which is what the search uses to pick one representative
    /// empty processor per class.
    pub fn interchangeability_classes(&self) -> Vec<Vec<ProcId>> {
        let p = self.num_procs();
        let mut class_of: Vec<Option<usize>> = vec![None; p];
        let mut classes: Vec<Vec<ProcId>> = Vec::new();
        for i in self.proc_ids() {
            if class_of[i.index()].is_some() {
                continue;
            }
            let idx = classes.len();
            class_of[i.index()] = Some(idx);
            let mut members = vec![i];
            for j in self.proc_ids() {
                if j > i && class_of[j.index()].is_none() && self.interchangeable(i, j) {
                    class_of[j.index()] = Some(idx);
                    members.push(j);
                }
            }
            classes.push(members);
        }
        classes
    }
}

impl serde::Serialize for ProcNetwork {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("procs".to_string(), self.procs.to_value()),
            ("links".to_string(), self.links().to_value()),
            ("comm_model".to_string(), self.comm_model.to_value()),
            ("topology".to_string(), self.topology.to_value()),
        ])
    }
}

impl serde::Deserialize for ProcNetwork {
    fn from_value(v: &serde::Value) -> Result<ProcNetwork, serde::Error> {
        let pairs = v.as_object().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected an object for `ProcNetwork`, found {}",
                v.type_name()
            ))
        })?;
        let field = |name: &str| serde::__field(pairs, name);
        let procs = Vec::<Processor>::from_value(field("procs"))
            .map_err(|e| serde::Error::custom(format!("field `procs` of `ProcNetwork`: {e}")))?;
        let links = Vec::<(usize, usize)>::from_value(field("links"))
            .map_err(|e| serde::Error::custom(format!("field `links` of `ProcNetwork`: {e}")))?;
        let comm_model = match field("comm_model") {
            serde::Value::Null => CommModel::default(),
            other => CommModel::from_value(other)
                .map_err(|e| serde::Error::custom(format!("field `comm_model`: {e}")))?,
        };
        let topology = Option::<Topology>::from_value(field("topology"))
            .map_err(|e| serde::Error::custom(format!("field `topology`: {e}")))?;
        if procs.iter().any(|p| p.cycle_time == 0) {
            return Err(serde::Error::custom("invalid `ProcNetwork`: cycle times must be positive"));
        }
        ProcNetwork::try_from_parts(procs, links, topology)
            .map(|net| net.with_comm_model(comm_model))
            .map_err(|e| serde::Error::custom(format!("invalid `ProcNetwork`: {e}")))
    }
}

/// BFS from every processor over the neighbour lists.
fn all_pairs_hops(adj: &[Vec<ProcId>]) -> Vec<Vec<u32>> {
    let p = adj.len();
    let mut dist = vec![vec![u32::MAX; p]; p];
    let mut queue = std::collections::VecDeque::new();
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = row[u];
            for &v in &adj[u] {
                if row[v.index()] == u32::MAX {
                    row[v.index()] = du + 1;
                    queue.push_back(v.index());
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring3_all_pairs_interchangeable() {
        let net = ProcNetwork::ring(3);
        for a in net.proc_ids() {
            for b in net.proc_ids() {
                assert!(net.interchangeable(a, b), "{a} vs {b}");
            }
        }
        assert_eq!(net.interchangeability_classes().len(), 1);
    }

    #[test]
    fn ring4_adjacent_not_interchangeable() {
        let net = ProcNetwork::ring(4);
        // In a 4-ring, swapping two adjacent PEs is not an automorphism that
        // fixes the rest: PE0's other neighbour is PE3, PE1's is PE2.
        assert!(!net.interchangeable(ProcId(0), ProcId(1)));
        // Swapping opposite PEs (0 and 2) fixes neighbours {1, 3} on both sides.
        assert!(net.interchangeable(ProcId(0), ProcId(2)));
    }

    #[test]
    fn fully_connected_all_interchangeable() {
        let net = ProcNetwork::fully_connected(6);
        assert_eq!(net.interchangeability_classes(), vec![net.proc_ids().collect::<Vec<_>>()]);
    }

    #[test]
    fn star_hub_differs_from_leaves() {
        let net = ProcNetwork::star(5);
        let classes = net.interchangeability_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![ProcId(0)]);
        assert_eq!(classes[1].len(), 4);
    }

    #[test]
    fn heterogeneous_speeds_block_interchangeability() {
        let net = ProcNetwork::fully_connected(3).with_cycle_times(&[1, 2, 1]);
        assert!(!net.interchangeable(ProcId(0), ProcId(1)));
        assert!(net.interchangeable(ProcId(0), ProcId(2)));
        assert!(!net.is_homogeneous());
        assert_eq!(net.exec_time(10, ProcId(1)), 20);
        assert_eq!(net.exec_time(10, ProcId(0)), 10);
    }

    #[test]
    fn chain_hop_distances() {
        let net = ProcNetwork::chain(5);
        assert_eq!(net.hops(ProcId(0), ProcId(4)), 4);
        assert_eq!(net.hops(ProcId(2), ProcId(2)), 0);
        assert!(net.is_connected());
    }

    #[test]
    fn mesh_hop_distances_manhattan() {
        let net = ProcNetwork::mesh(3, 3);
        // Corner (0,0) to corner (2,2): Manhattan distance 4.
        assert_eq!(net.hops(ProcId(0), ProcId(8)), 4);
        assert_eq!(net.degree(ProcId(4)), 4); // centre
        assert_eq!(net.degree(ProcId(0)), 2); // corner
    }

    #[test]
    fn hypercube_hop_distance_is_hamming() {
        let net = ProcNetwork::hypercube(8);
        assert_eq!(net.hops(ProcId(0), ProcId(7)), 3);
        assert_eq!(net.hops(ProcId(1), ProcId(5)), 1);
    }

    #[test]
    fn disconnected_network_detected() {
        let net = ProcNetwork::from_parts(vec![Processor::default(); 4], vec![(0, 1), (2, 3)], None);
        assert!(!net.is_connected());
        assert_eq!(net.hops(ProcId(0), ProcId(3)), u32::MAX);
    }

    #[test]
    fn comm_cost_models() {
        let uniform = ProcNetwork::chain(4);
        assert_eq!(uniform.comm_cost(10, ProcId(0), ProcId(3)), 10);
        assert_eq!(uniform.comm_cost(10, ProcId(1), ProcId(1)), 0);

        let hops = ProcNetwork::chain(4).with_comm_model(CommModel::HopScaled);
        assert_eq!(hops.comm_cost(10, ProcId(0), ProcId(3)), 30);
        assert_eq!(hops.comm_cost(10, ProcId(0), ProcId(1)), 10);
        assert_eq!(hops.comm_cost(10, ProcId(2), ProcId(2)), 0);
        assert_eq!(hops.comm_model(), CommModel::HopScaled);
    }

    #[test]
    fn single_processor_network() {
        let net = ProcNetwork::fully_connected(1);
        assert_eq!(net.num_procs(), 1);
        assert!(net.is_connected());
        assert_eq!(net.degree(ProcId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        ProcNetwork::fully_connected(0);
    }

    #[test]
    fn duplicate_edges_collapsed() {
        let net =
            ProcNetwork::from_parts(vec![Processor::default(); 3], vec![(0, 1), (1, 0), (0, 1)], None);
        assert_eq!(net.degree(ProcId(0)), 1);
        assert_eq!(net.degree(ProcId(1)), 1);
    }

    #[test]
    fn serde_round_trip() {
        let net = ProcNetwork::mesh(2, 2).with_cycle_times(&[1, 1, 2, 2]);
        let json = serde_json::to_string(&net).unwrap();
        let back: ProcNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
        // Non-default communication models survive the trip too.
        let hops = ProcNetwork::chain(3).with_comm_model(CommModel::HopScaled);
        let back: ProcNetwork =
            serde_json::from_str(&serde_json::to_string(&hops).unwrap()).unwrap();
        assert_eq!(back.comm_model(), CommModel::HopScaled);
    }

    /// Only the canonical parts travel: adjacency and hop distances are
    /// recomputed on arrival.
    #[test]
    fn wire_format_carries_links_not_derived_tables() {
        let json = serde_json::to_string(&ProcNetwork::ring(4)).unwrap();
        assert!(json.contains("\"links\""));
        assert!(!json.contains("\"adj\""), "{json}");
        assert!(!json.contains("\"dist\""), "{json}");
    }

    #[test]
    fn malformed_network_documents_are_rejected() {
        // Out-of-range link endpoint.
        let bad_link = r#"{"procs": [{"cycle_time": 1, "label": null}], "links": [[0, 9]]}"#;
        let err = serde_json::from_str::<ProcNetwork>(bad_link).unwrap_err();
        assert!(err.to_string().contains("unknown processor"), "{err}");

        // Self link.
        let self_link =
            r#"{"procs": [{"cycle_time": 1, "label": null}, {"cycle_time": 1, "label": null}],
                "links": [[1, 1]]}"#;
        assert!(serde_json::from_str::<ProcNetwork>(self_link).is_err());

        // No processors.
        assert!(serde_json::from_str::<ProcNetwork>(r#"{"procs": [], "links": []}"#).is_err());

        // A zero cycle time would divide the exec-time model by nothing.
        let zero_speed = r#"{"procs": [{"cycle_time": 0, "label": null}], "links": []}"#;
        assert!(serde_json::from_str::<ProcNetwork>(zero_speed).is_err());
    }

    #[test]
    fn links_report_each_undirected_edge_once() {
        let net = ProcNetwork::ring(4);
        assert_eq!(net.links(), vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
        let rebuilt =
            ProcNetwork::try_from_parts(vec![Processor::default(); 4], net.links(), None).unwrap();
        assert_eq!(rebuilt.neighbors(ProcId(0)), net.neighbors(ProcId(0)));
    }

    #[test]
    fn try_from_parts_reports_violations() {
        assert!(ProcNetwork::try_from_parts(vec![], vec![], None)
            .unwrap_err()
            .contains("at least one"));
        assert!(ProcNetwork::try_from_parts(vec![Processor::default()], vec![(0, 0)], None)
            .unwrap_err()
            .contains("self links"));
    }

    #[test]
    fn display_of_proc_id() {
        assert_eq!(ProcId(2).to_string(), "PE2");
    }
}

//! Shared infrastructure for the experiment binaries and Criterion benches
//! that regenerate every table and figure of the paper's evaluation
//! (Section 4).
//!
//! The paper's experiments run on an Intel Paragon and report wall-clock
//! seconds for graphs of 10–32 nodes; this reproduction runs on a commodity
//! host, so every experiment binary
//!
//! * uses the same workload generator (random graphs with CCR ∈ {0.1, 1, 10},
//!   sizes 10, 12, …), seeded for reproducibility,
//! * reports both wall-clock time and machine-independent state counts, and
//! * accepts a per-run time budget so that the exponential configurations
//!   (Chen & Yu, A* without pruning) can be cut off and reported as such,
//!   exactly like the "—" entry for the 32-node graph in Table 1.
//!
//! Results are printed as text tables and also written as CSV files under
//! `results/` so `EXPERIMENTS.md` can reference them.

use std::fs;
use std::path::Path;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use optsched_core::SchedulingProblem;
use optsched_procnet::ProcNetwork;
use optsched_taskgraph::TaskGraph;
use optsched_workload::{generate_random_dag, RandomDagConfig};

/// Seed used by every experiment binary so runs are reproducible.
pub const EXPERIMENT_SEED: u64 = 19980814; // ICPP'98 was held in August 1998.

/// The CCR values of the paper's three experiment sets.
pub const CCRS: [f64; 3] = [0.1, 1.0, 10.0];

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Graph sizes to evaluate.
    pub sizes: Vec<usize>,
    /// Per-algorithm-run time budget in milliseconds (None = unlimited).
    pub budget_ms: Option<u64>,
    /// Number of target processors (TPEs) to schedule onto.
    pub num_tpes: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            // The paper sweeps 10..=32; the default here stays in the range a
            // laptop handles in minutes.  Pass --sizes to extend it.
            sizes: vec![10, 12, 14, 16],
            budget_ms: Some(30_000),
            num_tpes: 4,
            seed: EXPERIMENT_SEED,
        }
    }
}

impl ExperimentOptions {
    /// Parses `--sizes 10,12,14`, `--budget-ms 5000`, `--tpes 4`, `--seed N`
    /// from the given iterator (typically `std::env::args().skip(1)`).
    pub fn parse(args: impl Iterator<Item = String>) -> ExperimentOptions {
        let mut opts = ExperimentOptions::default();
        let argv: Vec<String> = args.collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--sizes" => {
                    if let Some(v) = argv.get(i + 1) {
                        opts.sizes = v
                            .split(',')
                            .filter_map(|s| s.trim().parse().ok())
                            .filter(|&n| n >= 2)
                            .collect();
                        i += 1;
                    }
                }
                "--budget-ms" => {
                    if let Some(v) = argv.get(i + 1) {
                        opts.budget_ms = v.trim().parse().ok();
                        i += 1;
                    }
                }
                "--no-budget" => opts.budget_ms = None,
                "--tpes" => {
                    if let Some(v) = argv.get(i + 1) {
                        if let Ok(n) = v.trim().parse() {
                            opts.num_tpes = n;
                        }
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = argv.get(i + 1) {
                        if let Ok(n) = v.trim().parse() {
                            opts.seed = n;
                        }
                        i += 1;
                    }
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        if opts.sizes.is_empty() {
            opts.sizes = ExperimentOptions::default().sizes;
        }
        opts
    }
}

/// A reproducible random problem instance of the paper's workload.
pub fn workload_graph(size: usize, ccr: f64, seed: u64) -> TaskGraph {
    // Derive a per-(size, ccr) seed so each instance is independent yet stable.
    let derived = seed ^ ((size as u64) << 32) ^ (ccr * 1000.0) as u64;
    let mut rng = StdRng::seed_from_u64(derived);
    generate_random_dag(&RandomDagConfig { nodes: size, ccr, ..Default::default() }, &mut rng)
}

/// Builds the scheduling problem for one workload instance.
pub fn workload_problem(size: usize, ccr: f64, opts: &ExperimentOptions) -> SchedulingProblem {
    let graph = workload_graph(size, ccr, opts.seed);
    SchedulingProblem::new(graph, ProcNetwork::fully_connected(opts.num_tpes))
}

/// Formats a duration in milliseconds with one decimal.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// A CSV accumulator that writes under `results/`.
#[derive(Debug, Default)]
pub struct CsvWriter {
    lines: Vec<String>,
}

impl CsvWriter {
    /// Starts a CSV with the given header row.
    pub fn new(header: &str) -> CsvWriter {
        CsvWriter { lines: vec![header.to_string()] }
    }

    /// Appends one row.
    pub fn row(&mut self, fields: &[String]) {
        self.lines.push(fields.join(","));
    }

    /// Number of data rows written so far.
    pub fn len(&self) -> usize {
        self.lines.len().saturating_sub(1)
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the CSV to `results/<name>` (creating the directory), returning
    /// the path written to.
    pub fn write(&self, name: &str) -> std::io::Result<String> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let path = dir.join(name);
        fs::write(&path, self.lines.join("\n") + "\n")?;
        Ok(path.display().to_string())
    }
}

/// Writes pre-serialised JSON objects as a pretty-ish array to
/// `results/<name>` (one object per line), returning the path written to.
/// The experiment binaries build their rows by hand because the vendored
/// `serde_json` stand-in only derives for the workspace's data types.
pub fn write_json_rows(name: &str, rows: &[String]) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let body = if rows.is_empty() {
        "[]\n".to_string()
    } else {
        format!("[\n  {}\n]\n", rows.join(",\n  "))
    };
    fs::write(&path, body)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_all_flags() {
        let opts = ExperimentOptions::parse(
            ["--sizes", "10,12", "--budget-ms", "500", "--tpes", "3", "--seed", "9"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.sizes, vec![10, 12]);
        assert_eq!(opts.budget_ms, Some(500));
        assert_eq!(opts.num_tpes, 3);
        assert_eq!(opts.seed, 9);

        let nb = ExperimentOptions::parse(["--no-budget"].iter().map(|s| s.to_string()));
        assert_eq!(nb.budget_ms, None);
    }

    #[test]
    fn options_fall_back_to_defaults_on_garbage() {
        let opts = ExperimentOptions::parse(
            ["--sizes", "x", "--whatever"].iter().map(|s| s.to_string()),
        );
        assert_eq!(opts.sizes, ExperimentOptions::default().sizes);
        assert_eq!(opts.num_tpes, 4);
    }

    #[test]
    fn workload_graph_is_reproducible_and_size_correct() {
        let a = workload_graph(12, 1.0, 1);
        let b = workload_graph(12, 1.0, 1);
        let c = workload_graph(12, 10.0, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.num_nodes(), 12);
    }

    #[test]
    fn csv_writer_accumulates_rows() {
        let mut w = CsvWriter::new("a,b");
        assert!(w.is_empty());
        w.row(&["1".into(), "2".into()]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn fmt_ms_has_one_decimal() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.5");
    }
}

//! Regenerates **Figure 6** of the paper: speedup of the parallel A*
//! scheduler over the serial A* scheduler for 2, 4, 8 and 16 PPEs, one plot
//! per CCR ∈ {0.1, 1.0, 10.0}.
//!
//! The paper's PPEs are Intel Paragon nodes; here they are threads of the PPE
//! simulator (see DESIGN.md), so the *wall-clock* speedup depends entirely on
//! how many hardware cores the host offers (on a single-core machine it
//! cannot exceed 1).  The primary reported metric is therefore the
//! **work-based simulated speedup**: the number of states the serial search
//! expands divided by the largest number of states any single PPE expands —
//! i.e. the speedup the run would achieve if every PPE had its own core, the
//! quantity the Paragon measurements reflect.  Wall-clock times and the
//! redundant-work ratio (total parallel expansions / serial expansions) are
//! reported alongside.  The expected shape is sub-linear speedup that
//! degrades slightly for the largest graphs and becomes more irregular at
//! high CCR.
//!
//! Both duplicate-detection modes of the parallel scheduler are swept (the
//! paper's per-PPE private CLOSED lists and the sharded global table), and
//! every datapoint is tagged with its mode in the CSV and in the JSON series
//! written to `results/figure6.json`.
//!
//! Usage: `cargo run --release -p optsched-bench --bin figure6 -- [--sizes ...] [--budget-ms N] [--tpes P] [--seed S]`

use optsched_bench::{workload_problem, write_json_rows, CsvWriter, ExperimentOptions, CCRS};
use optsched_core::{AStarScheduler, SearchLimits, SearchOutcome};
use optsched_parallel::{DuplicateDetection, ParallelAStarScheduler, ParallelConfig};

const PPE_COUNTS: [usize; 4] = [2, 4, 8, 16];
const DUP_MODES: [DuplicateDetection; 2] =
    [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal];

fn main() {
    let opts = ExperimentOptions::parse(std::env::args().skip(1));
    let limits = SearchLimits { max_millis: opts.budget_ms, ..Default::default() };
    let mut csv = CsvWriter::new(
        "ccr,size,ppes,dup_mode,serial_ms,parallel_ms,wallclock_speedup,simulated_speedup,serial_expanded,parallel_expanded,max_ppe_expanded,redundant_work,schedule_length",
    );
    let mut json_rows: Vec<String> = Vec::new();

    println!("Figure 6 reproduction — parallel A* speedup over serial A*");
    println!(
        "TPEs = {}, PPE counts = {:?}, dup modes = [local, sharded], host threads = {}, seed = {}",
        opts.num_tpes,
        PPE_COUNTS,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        opts.seed
    );

    for &ccr in &CCRS {
        println!("\nCCR = {ccr}  (S(q) = work-based simulated speedup with q PPEs)");
        println!(
            "{:>5} {:>12} | {}",
            "size",
            "serial ms",
            DUP_MODES
                .map(|m| {
                    format!("{m}: {}", PPE_COUNTS.map(|q| format!("{:>8}", format!("S({q})"))).join(" "))
                })
                .join(" | ")
        );
        for &size in &opts.sizes {
            // The serial baseline does not depend on the duplicate-detection
            // mode: run it once per instance so both mode sweeps are
            // measured against the same denominator.
            let problem = workload_problem(size, ccr, &opts);
            let serial = AStarScheduler::new(&problem).with_limits(limits).run();
            if serial.outcome != SearchOutcome::Optimal {
                println!(
                    "{size:>5} {:>12} | (serial search exceeded the budget, skipped)",
                    ">budget"
                );
                continue;
            }
            let serial_ms = serial.elapsed.as_secs_f64() * 1e3;

            let mut mode_cells = Vec::new();
            for mode in DUP_MODES {
                let mut cells = Vec::new();
                for &q in &PPE_COUNTS {
                    let cfg = ParallelConfig { limits, ..ParallelConfig::paragon_like(q) }
                        .with_duplicate_detection(mode);
                    let par = ParallelAStarScheduler::new(&problem, cfg).run();
                    let par_ms = par.elapsed.as_secs_f64() * 1e3;
                    let wallclock = serial_ms / par_ms.max(1e-6);
                    let max_ppe_expanded =
                        par.per_ppe_stats.iter().map(|s| s.expanded).max().unwrap_or(0);
                    let simulated =
                        serial.stats.expanded as f64 / max_ppe_expanded.max(1) as f64;
                    let redundant =
                        par.total_expanded() as f64 / serial.stats.expanded.max(1) as f64;
                    if par.outcome == SearchOutcome::Optimal {
                        assert_eq!(
                            par.schedule_length(),
                            serial.schedule_length,
                            "parallel A* must stay optimal (size {size}, ccr {ccr}, q {q}, {mode})"
                        );
                    }
                    cells.push(format!("{simulated:>8.2}"));
                    csv.row(&[
                        ccr.to_string(),
                        size.to_string(),
                        q.to_string(),
                        mode.to_string(),
                        format!("{serial_ms:.3}"),
                        format!("{par_ms:.3}"),
                        format!("{wallclock:.3}"),
                        format!("{simulated:.3}"),
                        serial.stats.expanded.to_string(),
                        par.total_expanded().to_string(),
                        max_ppe_expanded.to_string(),
                        format!("{redundant:.3}"),
                        par.schedule_length().to_string(),
                    ]);
                    json_rows.push(format!(
                        "{{\"ccr\": {ccr}, \"size\": {size}, \"ppes\": {q}, \
                         \"dup_mode\": \"{mode}\", \"serial_ms\": {serial_ms:.3}, \
                         \"parallel_ms\": {par_ms:.3}, \"wallclock_speedup\": {wallclock:.3}, \
                         \"simulated_speedup\": {simulated:.3}, \
                         \"serial_expanded\": {}, \"parallel_expanded\": {}, \
                         \"max_ppe_expanded\": {max_ppe_expanded}, \
                         \"redundant_work\": {redundant:.3}, \"schedule_length\": {}}}",
                        serial.stats.expanded,
                        par.total_expanded(),
                        par.schedule_length()
                    ));
                }
                mode_cells.push(cells.join(" "));
            }
            println!("{size:>5} {serial_ms:>12.1} | {}", mode_cells.join(" | "));
        }
    }

    match csv.write("figure6.csv") {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results CSV: {e}"),
    }
    match write_json_rows("figure6.json", &json_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}

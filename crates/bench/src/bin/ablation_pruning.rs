//! Ablation study of the four state-space pruning techniques of Section 3.2.
//!
//! Table 1 of the paper only contrasts "no pruning" with "all pruning"
//! (observing a roughly 20 % running-time reduction); this binary breaks the
//! effect down per technique: for every CCR it runs the serial A* with
//! (a) no pruning, (b) each single technique on its own, (c) all-but-one, and
//! (d) all techniques, reporting states generated/expanded and time.  All
//! configurations must agree on the optimal schedule length — pruning only
//! ever removes redundant work.
//!
//! Usage: `cargo run --release -p optsched-bench --bin ablation_pruning -- [--sizes ...] [--budget-ms N]`

use optsched_bench::{fmt_ms, workload_problem, CsvWriter, ExperimentOptions, CCRS};
use optsched_core::{AStarScheduler, PruningConfig, SearchLimits, SearchOutcome};

fn configurations() -> Vec<(&'static str, PruningConfig)> {
    let none = PruningConfig::none();
    let all = PruningConfig::all();
    vec![
        ("none", none),
        ("only processor isomorphism", PruningConfig { processor_isomorphism: true, ..none }),
        ("only node equivalence", PruningConfig { node_equivalence: true, ..none }),
        ("only upper bound", PruningConfig { upper_bound_pruning: true, ..none }),
        ("only priority ordering", PruningConfig { priority_ordering: true, ..none }),
        ("all minus processor isomorphism", PruningConfig { processor_isomorphism: false, ..all }),
        ("all minus node equivalence", PruningConfig { node_equivalence: false, ..all }),
        ("all minus upper bound", PruningConfig { upper_bound_pruning: false, ..all }),
        ("all minus priority ordering", PruningConfig { priority_ordering: false, ..all }),
        ("all", all),
    ]
}

fn main() {
    let mut opts = ExperimentOptions::parse(std::env::args().skip(1));
    if opts.sizes == ExperimentOptions::default().sizes {
        // The full cross product is expensive; default to two representative sizes.
        opts.sizes = vec![10, 12];
    }
    let limits = SearchLimits { max_millis: opts.budget_ms, ..Default::default() };
    let mut csv = CsvWriter::new("ccr,size,configuration,schedule_length,generated,expanded,time_ms,timed_out");

    println!("Pruning-technique ablation (serial A*)");
    for &ccr in &CCRS {
        for &size in &opts.sizes {
            let problem = workload_problem(size, ccr, &opts);
            println!("\nCCR = {ccr}, v = {size}");
            println!("{:<36} {:>10} {:>12} {:>12} {:>12}", "configuration", "length", "generated", "expanded", "time ms");
            let mut optimal = None;
            for (name, cfg) in configurations() {
                let r = AStarScheduler::new(&problem).with_pruning(cfg).with_limits(limits).run();
                let timed_out = r.outcome == SearchOutcome::LimitReached;
                if !timed_out {
                    match optimal {
                        None => optimal = Some(r.schedule_length),
                        Some(o) => assert_eq!(o, r.schedule_length, "pruning changed the optimum ({name})"),
                    }
                }
                println!(
                    "{:<36} {:>10} {:>12} {:>12} {:>12}",
                    name,
                    r.schedule_length,
                    r.stats.generated,
                    r.stats.expanded,
                    if timed_out { format!(">{}", opts.budget_ms.unwrap_or(0)) } else { fmt_ms(r.elapsed) }
                );
                csv.row(&[
                    ccr.to_string(),
                    size.to_string(),
                    name.replace(' ', "_"),
                    r.schedule_length.to_string(),
                    r.stats.generated.to_string(),
                    r.stats.expanded.to_string(),
                    format!("{:.3}", r.elapsed.as_secs_f64() * 1e3),
                    timed_out.to_string(),
                ]);
            }
        }
    }

    match csv.write("ablation_pruning.csv") {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results CSV: {e}"),
    }
}

//! Regenerates **Table 1** of the paper: running time of the Chen & Yu
//! branch-and-bound baseline, the A* scheduler *without* pruning ("A* full")
//! and the A* scheduler *with* all pruning techniques, on random task graphs
//! with CCR ∈ {0.1, 1.0, 10.0} and increasing node counts.
//!
//! The paper reports seconds on one Intel Paragon node for 10–32 nodes; this
//! binary reports milliseconds on the host plus the machine-independent
//! number of states generated.  Configurations that exceed the per-run time
//! budget are cut off and printed as `>budget`, mirroring the "—" entry of
//! the original table.  The expected *shape* is: Chen & Yu slowest, A*
//! without pruning in the middle, A* with pruning fastest; times grow with
//! CCR for every algorithm.
//!
//! Usage: `cargo run --release -p optsched-bench --bin table1 -- [--sizes 10,12,...] [--budget-ms N] [--tpes P] [--seed S]`

use optsched_bench::{fmt_ms, workload_problem, CsvWriter, ExperimentOptions, CCRS};
use optsched_core::{AStarScheduler, ChenYuScheduler, PruningConfig, SearchLimits, SearchOutcome};

fn main() {
    let opts = ExperimentOptions::parse(std::env::args().skip(1));
    let limits = SearchLimits { max_millis: opts.budget_ms, ..Default::default() };
    let mut csv = CsvWriter::new(
        "ccr,size,algorithm,schedule_length,optimal,states_generated,states_expanded,time_ms,timed_out",
    );

    println!("Table 1 reproduction — running time (ms) and states generated");
    println!("TPEs = {}, per-run budget = {:?} ms, seed = {}", opts.num_tpes, opts.budget_ms, opts.seed);

    for &ccr in &CCRS {
        println!("\nCCR = {ccr}");
        println!(
            "{:>5} | {:>14} {:>12} | {:>14} {:>12} | {:>14} {:>12}",
            "size", "Chen ms", "states", "A*full ms", "states", "A* ms", "states"
        );
        for &size in &opts.sizes {
            let problem = workload_problem(size, ccr, &opts);

            let chen = ChenYuScheduler::new(&problem).with_limits(limits).run();
            let full = AStarScheduler::new(&problem)
                .with_pruning(PruningConfig::none())
                .with_limits(limits)
                .run();
            let pruned = AStarScheduler::new(&problem).with_limits(limits).run();

            let cell = |r: &optsched_core::SearchResult| {
                if r.outcome == SearchOutcome::LimitReached {
                    (format!(">{}", opts.budget_ms.unwrap_or(0)), r.stats.generated)
                } else {
                    (fmt_ms(r.elapsed), r.stats.generated)
                }
            };
            let (chen_ms, chen_states) = cell(&chen);
            let (full_ms, full_states) = cell(&full);
            let (pruned_ms, pruned_states) = cell(&pruned);
            println!(
                "{:>5} | {:>14} {:>12} | {:>14} {:>12} | {:>14} {:>12}",
                size, chen_ms, chen_states, full_ms, full_states, pruned_ms, pruned_states
            );

            for (name, r) in [("chen_yu", &chen), ("astar_full", &full), ("astar_pruned", &pruned)] {
                csv.row(&[
                    ccr.to_string(),
                    size.to_string(),
                    name.to_string(),
                    r.schedule_length.to_string(),
                    (r.outcome == SearchOutcome::Optimal).to_string(),
                    r.stats.generated.to_string(),
                    r.stats.expanded.to_string(),
                    format!("{:.3}", r.elapsed.as_secs_f64() * 1e3),
                    (r.outcome == SearchOutcome::LimitReached).to_string(),
                ]);
            }

            // Sanity: whenever both exact runs finished, they agree.
            if chen.outcome == SearchOutcome::Optimal && pruned.outcome == SearchOutcome::Optimal {
                assert_eq!(chen.schedule_length, pruned.schedule_length, "exact algorithms disagree");
            }
            if full.outcome == SearchOutcome::Optimal && pruned.outcome == SearchOutcome::Optimal {
                assert_eq!(full.schedule_length, pruned.schedule_length, "pruning changed the optimum");
            }
        }
    }

    match csv.write("table1.csv") {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results CSV: {e}"),
    }
}

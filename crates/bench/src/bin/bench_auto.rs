//! Offline calibration corpus for the `algorithm: "auto"` portfolio
//! (`crates/service/src/portfolio.rs`).
//!
//! For every (size, CCR) cell of the paper's workload this binary
//!
//! * extracts the portfolio's cheap instance features and its predicted
//!   exact-search time (`InstanceFeatures::predicted_exact_ms`),
//! * runs the generous band (no deadline: the seeded exact search the
//!   portfolio would pick) and records the *measured* wall-clock time next
//!   to the prediction — the ratio column is what the predictor's constants
//!   are calibrated against,
//! * runs the tight band (`deadline_ms: 0`) and the mid band
//!   (`deadline_ms: 2 × predicted`) on fresh services and records each
//!   band's plan tag and schedule length, so the quality spread between the
//!   bands is visible in one row.
//!
//! One JSON row per cell is written to `results/BENCH_auto.json` (checked
//! in); the text table prints the same data.  The run is seeded and
//! deterministic in everything except the measured milliseconds.
//!
//! Usage: `cargo run --release -p optsched-bench --bin bench_auto --
//!         [--sizes 8,10,12] [--tpes 3] [--seed N]`

use optsched_bench::{write_json_rows, ExperimentOptions, CCRS};
use optsched_procnet::ProcNetwork;
use optsched_service::{Instance, InstanceFeatures, Request, SchedulingService, ServiceConfig};

/// Runs one `auto` request on a fresh service (no cache carry-over between
/// cells or bands) and returns the response.
fn run_auto(instance: &Instance, deadline_ms: Option<u64>) -> optsched_service::Response {
    let service = SchedulingService::new(ServiceConfig::default());
    let mut req = Request::new(instance.clone());
    req.algorithm = Some("auto".to_string());
    req.deadline_ms = deadline_ms;
    let resp = service.handle_request(&req, 0);
    assert!(resp.ok, "auto request failed: {:?}", resp.error);
    resp
}

fn main() {
    let mut opts = ExperimentOptions::parse(std::env::args().skip(1));
    if opts.sizes == ExperimentOptions::default().sizes {
        // The calibration corpus stays in the range the exact band answers
        // in well under a second per cell; pass --sizes to extend it.
        opts.sizes = vec![8, 10, 12];
    }

    println!(
        "{:>4} {:>5} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9}",
        "size",
        "ccr",
        "levels",
        "width",
        "conn",
        "algo",
        "pred_ms",
        "exact_ms",
        "ratio",
        "opt_len",
        "tight_len",
        "raced_len",
        "expanded",
    );

    let mut rows = Vec::new();
    for &size in &opts.sizes {
        for &ccr in &CCRS {
            let graph = optsched_bench::workload_graph(size, ccr, opts.seed);
            let instance =
                Instance::new(graph, ProcNetwork::fully_connected(opts.num_tpes));
            let features = InstanceFeatures::of(&instance);
            let predicted_ms = features.predicted_exact_ms();

            let exact = run_auto(&instance, None);
            let tight = run_auto(&instance, Some(0));
            let raced = run_auto(&instance, Some(predicted_ms * 2));

            let opt_len = exact.schedule_length.expect("exact band returns a schedule");
            let tight_len = tight.schedule_length.expect("tight band returns a schedule");
            let raced_len = raced.schedule_length.expect("mid band returns a schedule");
            assert!(opt_len <= tight_len, "the exact band is never worse than tight");
            assert!(opt_len <= raced_len, "the exact band is never worse than the race");

            let ratio = exact.elapsed_ms / predicted_ms as f64;
            println!(
                "{:>4} {:>5} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9.3} {:>9.3} {:>7} {:>9} {:>9} {:>9}",
                size,
                ccr,
                features.levels,
                features.max_level_width,
                features.fully_connected,
                features.exact_algorithm(),
                predicted_ms,
                exact.elapsed_ms,
                ratio,
                opt_len,
                tight_len,
                raced_len,
                exact.expanded,
            );
            rows.push(format!(
                "{{\"size\": {size}, \"ccr\": {ccr}, \"nodes\": {}, \"edges\": {}, \"procs\": {}, \"levels\": {}, \"max_level_width\": {}, \"fully_connected\": {}, \"exact_algorithm\": \"{}\", \"predicted_ms\": {predicted_ms}, \"exact_ms\": {:.3}, \"ratio\": {:.3}, \"exact_plan\": \"{}\", \"optimal_len\": {opt_len}, \"tight_plan\": \"{}\", \"tight_len\": {tight_len}, \"raced_plan\": \"{}\", \"raced_len\": {raced_len}, \"exact_expanded\": {}}}",
                features.nodes,
                features.edges,
                features.procs,
                features.levels,
                features.max_level_width,
                features.fully_connected,
                features.exact_algorithm(),
                exact.elapsed_ms,
                ratio,
                exact.plan.as_deref().unwrap_or("?"),
                tight.plan.as_deref().unwrap_or("?"),
                raced.plan.as_deref().unwrap_or("?"),
                exact.expanded,
            ));
        }
    }

    match write_json_rows("BENCH_auto.json", &rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write BENCH_auto.json: {e}");
            std::process::exit(1);
        }
    }
}

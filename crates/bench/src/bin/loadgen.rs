//! Load generator for the scheduling service: open-loop arrival schedules
//! over the mixed request corpus, driven straight into the global
//! [`ServiceRuntime`] through its programmatic connection API (no sockets —
//! the measurement is the service, not the kernel's TCP stack).
//!
//! Two scenarios run by default and append one JSON row each to
//! `results/BENCH_service.json`:
//!
//! * **steady** — a paced arrival schedule well inside the admission budget:
//!   measures throughput, p50/p99 latency and the cache hit rate of the
//!   corpus's repeated instances; expects zero shed.
//! * **overload** — the whole corpus submitted as one burst against a tiny
//!   admission budget: exercises the backpressure path (structured sheds and
//!   deadline-clamped degrades) and proves the lossless-response invariant
//!   under pressure.
//!
//! Every scenario asserts the core service contract: **one response per
//! submitted request, no losses** — open-loop submission means slow service
//! cannot silently throttle the offered load.  The `--expect-*` flags turn
//! further observations into exit-code assertions for CI:
//! `--expect-cache-hit` (≥ 1 cache hit over all scenarios), `--expect-shed`
//! (≥ 1 shed), `--expect-degraded` (≥ 1 degrade).
//!
//! Usage: `cargo run --release -p optsched-bench --bin loadgen --
//!         [--count N] [--seed S] [--workers W] [--rate RPS]
//!         [--out FILE] [--expect-cache-hit] [--expect-shed] [--expect-degraded]`

use std::time::{Duration, Instant};

use optsched_bench::write_json_rows;
use optsched_service::{Request, Response, SchedulingService, ServiceConfig, ServiceRuntime};
use optsched_workload::{generate_request_corpus, RequestCorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One load scenario: a service configuration plus an offered load.
struct Scenario {
    name: &'static str,
    count: usize,
    workers: usize,
    admission_budget: u64,
    degrade_threshold: u64,
    degrade_deadline_ms: u64,
    /// Offered arrival rate in requests/second; 0 submits the whole corpus
    /// as one burst.
    rate: f64,
}

/// What one scenario measured (one JSON row).
struct Outcome {
    name: &'static str,
    requests: usize,
    responses: usize,
    lost: usize,
    elapsed: Duration,
    latencies_ms: Vec<f64>,
    cache_hits: u64,
    shed: u64,
    degraded: u64,
    errors: u64,
    workers: usize,
    admission_budget: u64,
}

impl Outcome {
    /// Nearest-rank percentile over the served-response latencies.
    fn percentile_ms(&self, p: usize) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = (p * self.latencies_ms.len() / 100).min(self.latencies_ms.len() - 1);
        self.latencies_ms[idx]
    }

    fn row(&self) -> String {
        let hit_rate = if self.responses == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.responses as f64
        };
        format!(
            "{{\"scenario\": \"{}\", \"requests\": {}, \"responses\": {}, \"lost\": {}, \"elapsed_ms\": {:.1}, \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}, \"cache_hit_rate\": {:.3}, \"shed\": {}, \"degraded\": {}, \"errors\": {}, \"workers\": {}, \"admission_budget\": {}}}",
            self.name,
            self.requests,
            self.responses,
            self.lost,
            self.elapsed.as_secs_f64() * 1e3,
            self.responses as f64 / self.elapsed.as_secs_f64().max(1e-9),
            self.percentile_ms(50),
            self.percentile_ms(99),
            self.cache_hits,
            hit_rate,
            self.shed,
            self.degraded,
            self.errors,
            self.workers,
            self.admission_budget,
        )
    }
}

/// Runs one scenario: start a fresh runtime, submit the corpus on the
/// open-loop schedule, collect every reply, drain, measure.
fn run_scenario(s: &Scenario, seed: u64) -> Outcome {
    let corpus = generate_request_corpus(
        &RequestCorpusConfig { count: s.count, ..Default::default() },
        &mut StdRng::seed_from_u64(seed),
    );
    let requests: Vec<Request> = corpus
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut req = Request::from(c);
            req.id = Some(i as u64);
            req
        })
        .collect();

    let service = SchedulingService::new(ServiceConfig {
        workers: s.workers,
        admission_budget: s.admission_budget,
        degrade_threshold: s.degrade_threshold,
        degrade_deadline_ms: s.degrade_deadline_ms,
        ..Default::default()
    });
    let runtime = ServiceRuntime::start(&service);
    let (mut conn, replies) = runtime.open();

    let start = Instant::now();
    let mut submit_at: Vec<Instant> = Vec::with_capacity(requests.len());
    let received = std::thread::scope(|scope| {
        let collector = scope.spawn(|| {
            let mut received: Vec<(u64, Instant, Response)> = Vec::new();
            while let Ok(reply) = replies.recv() {
                received.push((reply.seq, Instant::now(), reply.response));
            }
            received
        });
        for (i, req) in requests.iter().enumerate() {
            if s.rate > 0.0 {
                // Open loop: arrival i is due at start + i/rate regardless of
                // how the service is keeping up.
                let due = start + Duration::from_secs_f64(i as f64 / s.rate);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
            }
            submit_at.push(Instant::now());
            conn.submit(req.clone());
        }
        drop(conn); // end-of-input: the reply channel drains and disconnects
        collector.join().expect("reply collector panicked")
    });
    let elapsed = start.elapsed();
    runtime.shutdown();

    let mut latencies_ms: Vec<f64> = received
        .iter()
        .filter(|(_, _, resp)| resp.ok)
        .map(|(seq, at, _)| at.duration_since(submit_at[*seq as usize]).as_secs_f64() * 1e3)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    Outcome {
        name: s.name,
        requests: requests.len(),
        responses: received.len(),
        lost: requests.len() - received.len(),
        elapsed,
        latencies_ms,
        cache_hits: received.iter().filter(|(_, _, r)| r.cache_hit).count() as u64,
        shed: received.iter().filter(|(_, _, r)| r.shed).count() as u64,
        degraded: received.iter().filter(|(_, _, r)| r.degraded).count() as u64,
        errors: received.iter().filter(|(_, _, r)| !r.ok).count() as u64,
        workers: s.workers,
        admission_budget: s.admission_budget,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let has = |key: &str| args.iter().any(|a| a == key);
    let count: usize = get("--count").and_then(|v| v.parse().ok()).unwrap_or(48);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(1998);
    let workers: usize = get("--workers").and_then(|v| v.parse().ok()).unwrap_or(2);
    let rate: f64 = get("--rate").and_then(|v| v.parse().ok()).unwrap_or(150.0);
    let out = get("--out").unwrap_or("BENCH_service.json");

    let scenarios = [
        Scenario {
            name: "steady",
            count,
            workers,
            admission_budget: 256,
            degrade_threshold: 192,
            degrade_deadline_ms: 25,
            rate,
        },
        Scenario {
            name: "overload",
            // 4× the tiny budget guarantees pressure whatever the count.
            count: count.max(32),
            workers,
            admission_budget: 8,
            degrade_threshold: 4,
            degrade_deadline_ms: 5,
            rate: 0.0,
        },
    ];

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut total = (0u64, 0u64, 0u64); // (cache_hits, shed, degraded)
    for s in &scenarios {
        let outcome = run_scenario(s, seed);
        println!(
            "{:<9} {} requests -> {} responses ({} lost) in {:.1} ms | p50 {:.2} ms, p99 {:.2} ms, {} cache hits, {} shed, {} degraded, {} errors",
            outcome.name,
            outcome.requests,
            outcome.responses,
            outcome.lost,
            outcome.elapsed.as_secs_f64() * 1e3,
            outcome.percentile_ms(50),
            outcome.percentile_ms(99),
            outcome.cache_hits,
            outcome.shed,
            outcome.degraded,
            outcome.errors,
        );
        // The core contract holds in every scenario: open-loop offered load,
        // exactly one response per request.
        if outcome.lost != 0 {
            failures.push(format!("{}: lost {} response(s)", outcome.name, outcome.lost));
        }
        total.0 += outcome.cache_hits;
        total.1 += outcome.shed;
        total.2 += outcome.degraded;
        rows.push(outcome.row());
    }

    if has("--expect-cache-hit") && total.0 == 0 {
        failures.push("expected >= 1 cache hit, observed 0".to_string());
    }
    if has("--expect-shed") && total.1 == 0 {
        failures.push("expected >= 1 shed, observed 0".to_string());
    }
    if has("--expect-degraded") && total.2 == 0 {
        failures.push("expected >= 1 degraded, observed 0".to_string());
    }

    match write_json_rows(out, &rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("loadgen: FAILED: {f}");
        }
        std::process::exit(1);
    }
}

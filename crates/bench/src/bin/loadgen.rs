//! Load generator for the scheduling service: open-loop arrival schedules
//! over the mixed request corpus, driven straight into the global
//! [`ServiceRuntime`] through its programmatic connection API (no sockets —
//! the measurement is the service, not the kernel's TCP stack).
//!
//! Two scenarios run by default and append one JSON row each to
//! `results/BENCH_service.json`:
//!
//! * **steady** — a paced arrival schedule well inside the admission budget:
//!   measures throughput, p50/p99 latency and the cache hit rate of the
//!   corpus's repeated instances; expects zero shed.
//! * **overload** — the whole corpus submitted as one burst against a tiny
//!   admission budget: exercises the backpressure path (structured sheds and
//!   deadline-clamped degrades) and proves the lossless-response invariant
//!   under pressure.
//! * **auto_bands** — the corpus rewritten to `algorithm: "auto"` with
//!   deadlines cycling through the portfolio's three bands (none / mid /
//!   tight): measures the per-band mix and the tight band's p99, and proves
//!   the no-loss contract holds for portfolio-resolved requests too.
//!
//! Every scenario asserts the core service contract: **one response per
//! submitted request, no losses** — open-loop submission means slow service
//! cannot silently throttle the offered load.  The `--expect-*` flags turn
//! further observations into exit-code assertions for CI:
//! `--expect-cache-hit` (≥ 1 cache hit over all scenarios), `--expect-shed`
//! (≥ 1 shed), `--expect-degraded` (≥ 1 degrade), `--expect-auto-bands`
//! (every auto band observed ≥ 1 response, 0 errors, and the tight band's
//! p99 inside its deadline plus scheduling slack), `--expect-stats-agree`
//! (the steady scenario's server-side `{"type": "stats"}` e2e percentiles
//! agree with the client-side nearest-rank ones within the histogram's 2×
//! bucket bound plus slack).
//!
//! Every scenario also queries the runtime's `{"type": "stats"}` admin verb
//! before shutdown and reports the server-side e2e/queue-wait p50/p99 next
//! to the client-side numbers — the two views of the same run.
//!
//! Usage: `cargo run --release -p optsched-bench --bin loadgen --
//!         [--count N] [--seed S] [--workers W] [--rate RPS]
//!         [--out FILE] [--expect-cache-hit] [--expect-shed]
//!         [--expect-degraded] [--expect-auto-bands] [--expect-stats-agree]`

use std::time::{Duration, Instant};

use optsched_bench::write_json_rows;
use optsched_service::{
    InstanceFeatures, Request, Response, SchedulingService, ServiceConfig, ServiceRuntime,
    StatsReport,
};
use optsched_workload::{generate_request_corpus, RequestCorpusConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deadline given to the tight-band third of the `auto_bands` corpus, in
/// ms.  Zero is the one value guaranteed tight for *every* instance (the
/// predictor never forecasts below 1 ms), and it exercises the strongest
/// anytime promise: a feasible answer with no search time at all.
const AUTO_TIGHT_DEADLINE_MS: u64 = 0;

/// Allowed overshoot of the tight band's p99 *service-side* time beyond its
/// deadline: covers the engine's expansion-cadence granularity plus response
/// assembly, not queueing (which is a property of the offered load).
const AUTO_TIGHT_SLACK_MS: f64 = 90.0;

/// One load scenario: a service configuration plus an offered load.
struct Scenario {
    name: &'static str,
    count: usize,
    workers: usize,
    admission_budget: u64,
    degrade_threshold: u64,
    degrade_deadline_ms: u64,
    /// Offered arrival rate in requests/second; 0 submits the whole corpus
    /// as one burst.
    rate: f64,
    /// Rewrite the corpus to `algorithm: "auto"` with deadlines cycling
    /// through the portfolio bands (none / mid / tight).
    auto: bool,
}

/// What one scenario measured (one JSON row).
struct Outcome {
    name: &'static str,
    requests: usize,
    responses: usize,
    lost: usize,
    elapsed: Duration,
    latencies_ms: Vec<f64>,
    cache_hits: u64,
    shed: u64,
    degraded: u64,
    errors: u64,
    workers: usize,
    admission_budget: u64,
    /// Per-band response counts of an `auto` scenario (exact, anytime,
    /// raced), all zero for direct-algorithm scenarios.
    auto_bands: (u64, u64, u64),
    /// p99 of the *service-side* elapsed time of tight-band responses, ms.
    tight_p99_ms: f64,
    /// The service's own stats report (`{"type": "stats"}` admin verb),
    /// queried over a second connection while the runtime is still up: the
    /// server-side view of the same run the client-side latencies measured.
    server_stats: Option<StatsReport>,
}

impl Outcome {
    /// Nearest-rank percentile over the served-response latencies.
    fn percentile_ms(&self, p: usize) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let idx = (p * self.latencies_ms.len() / 100).min(self.latencies_ms.len() - 1);
        self.latencies_ms[idx]
    }

    fn row(&self) -> String {
        let hit_rate = if self.responses == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.responses as f64
        };
        format!(
            "{{\"scenario\": \"{}\", \"requests\": {}, \"responses\": {}, \"lost\": {}, \"elapsed_ms\": {:.1}, \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}, \"cache_hit_rate\": {:.3}, \"shed\": {}, \"degraded\": {}, \"errors\": {}, \"workers\": {}, \"admission_budget\": {}, \"auto_exact\": {}, \"auto_anytime\": {}, \"auto_raced\": {}, \"tight_p99_ms\": {:.3}, \"server_e2e_p50_ms\": {:.3}, \"server_e2e_p99_ms\": {:.3}, \"server_queue_p50_ms\": {:.3}, \"server_queue_p99_ms\": {:.3}}}",
            self.name,
            self.requests,
            self.responses,
            self.lost,
            self.elapsed.as_secs_f64() * 1e3,
            self.responses as f64 / self.elapsed.as_secs_f64().max(1e-9),
            self.percentile_ms(50),
            self.percentile_ms(99),
            self.cache_hits,
            hit_rate,
            self.shed,
            self.degraded,
            self.errors,
            self.workers,
            self.admission_budget,
            self.auto_bands.0,
            self.auto_bands.1,
            self.auto_bands.2,
            self.tight_p99_ms,
            self.server_stats.as_ref().map_or(0.0, |s| s.e2e_p50_ms),
            self.server_stats.as_ref().map_or(0.0, |s| s.e2e_p99_ms),
            self.server_stats.as_ref().map_or(0.0, |s| s.queue_wait_p50_ms),
            self.server_stats.as_ref().map_or(0.0, |s| s.queue_wait_p99_ms),
        )
    }
}

/// Runs one scenario: start a fresh runtime, submit the corpus on the
/// open-loop schedule, collect every reply, drain, measure.
fn run_scenario(s: &Scenario, seed: u64) -> Outcome {
    let corpus = generate_request_corpus(
        &RequestCorpusConfig { count: s.count, ..Default::default() },
        &mut StdRng::seed_from_u64(seed),
    );
    let requests: Vec<Request> = corpus
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut req = Request::from(c);
            req.id = Some(i as u64);
            if s.auto {
                // Cycle the portfolio's three deadline bands: generous
                // (no deadline), tight, and mid (between the predicted exact
                // time and the generous threshold, so the staged race runs).
                req.algorithm = Some("auto".to_string());
                req.deadline_ms = match i % 3 {
                    0 => None,
                    1 => Some(AUTO_TIGHT_DEADLINE_MS),
                    _ => Some(InstanceFeatures::of(&req.instance).predicted_exact_ms() * 2),
                };
            }
            req
        })
        .collect();
    // Sequence numbers of the tight-band requests, for the per-band p99.
    let tight: Vec<bool> = requests
        .iter()
        .map(|r| s.auto && r.deadline_ms == Some(AUTO_TIGHT_DEADLINE_MS))
        .collect();

    let service = SchedulingService::new(ServiceConfig {
        workers: s.workers,
        admission_budget: s.admission_budget,
        degrade_threshold: s.degrade_threshold,
        degrade_deadline_ms: s.degrade_deadline_ms,
        ..Default::default()
    });
    let runtime = ServiceRuntime::start(&service);
    let (mut conn, replies) = runtime.open();

    let start = Instant::now();
    let mut submit_at: Vec<Instant> = Vec::with_capacity(requests.len());
    let received = std::thread::scope(|scope| {
        let collector = scope.spawn(|| {
            let mut received: Vec<(u64, Instant, Response)> = Vec::new();
            while let Ok(reply) = replies.recv() {
                let seq = reply.seq;
                let response =
                    reply.into_response().expect("this connection submits no admin lines");
                received.push((seq, Instant::now(), response));
            }
            received
        });
        for (i, req) in requests.iter().enumerate() {
            if s.rate > 0.0 {
                // Open loop: arrival i is due at start + i/rate regardless of
                // how the service is keeping up.
                let due = start + Duration::from_secs_f64(i as f64 / s.rate);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
            }
            submit_at.push(Instant::now());
            conn.submit(req.clone());
        }
        drop(conn); // end-of-input: the reply channel drains and disconnects
        collector.join().expect("reply collector panicked")
    });
    let elapsed = start.elapsed();
    // The runtime is still serving: query its own view of the run through
    // the admin protocol, exactly as an external client would.
    let server_stats = {
        let (mut stats_conn, stats_replies) = runtime.open();
        stats_conn.submit_line(r#"{"type": "stats"}"#);
        drop(stats_conn);
        stats_replies
            .recv()
            .ok()
            .and_then(|reply| reply.stats().cloned())
    };
    runtime.shutdown();
    let metrics = service.metrics_snapshot();

    let mut latencies_ms: Vec<f64> = received
        .iter()
        .filter(|(_, _, resp)| resp.ok)
        .map(|(seq, at, _)| at.duration_since(submit_at[*seq as usize]).as_secs_f64() * 1e3)
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    // The tight band is judged on *service-side* time (queueing is a
    // property of the offered load, not of the portfolio's deadline
    // obedience), nearest-rank p99.
    let mut tight_ms: Vec<f64> = received
        .iter()
        .filter(|(seq, _, resp)| resp.ok && tight[*seq as usize])
        .map(|(_, _, resp)| resp.elapsed_ms)
        .collect();
    tight_ms.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    let tight_p99_ms = if tight_ms.is_empty() {
        0.0
    } else {
        tight_ms[(99 * tight_ms.len() / 100).min(tight_ms.len() - 1)]
    };

    Outcome {
        name: s.name,
        requests: requests.len(),
        responses: received.len(),
        lost: requests.len() - received.len(),
        elapsed,
        latencies_ms,
        cache_hits: received.iter().filter(|(_, _, r)| r.cache_hit).count() as u64,
        shed: received.iter().filter(|(_, _, r)| r.shed).count() as u64,
        degraded: received.iter().filter(|(_, _, r)| r.degraded).count() as u64,
        errors: received.iter().filter(|(_, _, r)| !r.ok).count() as u64,
        workers: s.workers,
        admission_budget: s.admission_budget,
        auto_bands: (metrics.auto_exact, metrics.auto_anytime, metrics.auto_raced),
        tight_p99_ms,
        server_stats,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let has = |key: &str| args.iter().any(|a| a == key);
    let count: usize = get("--count").and_then(|v| v.parse().ok()).unwrap_or(48);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(1998);
    let workers: usize = get("--workers").and_then(|v| v.parse().ok()).unwrap_or(2);
    let rate: f64 = get("--rate").and_then(|v| v.parse().ok()).unwrap_or(150.0);
    let out = get("--out").unwrap_or("BENCH_service.json");

    let scenarios = [
        Scenario {
            name: "steady",
            count,
            workers,
            admission_budget: 256,
            degrade_threshold: 192,
            degrade_deadline_ms: 25,
            rate,
            auto: false,
        },
        Scenario {
            name: "overload",
            // 4× the tiny budget guarantees pressure whatever the count.
            count: count.max(32),
            workers,
            admission_budget: 8,
            degrade_threshold: 4,
            degrade_deadline_ms: 5,
            rate: 0.0,
            auto: false,
        },
        Scenario {
            name: "auto_bands",
            // At least one request per deadline band.
            count: count.max(9),
            workers,
            // A wide budget keeps the degrade path out of the way: every
            // request reaches the portfolio, so the band counters account
            // for the whole corpus.
            admission_budget: 256,
            degrade_threshold: 256,
            degrade_deadline_ms: 25,
            rate,
            auto: true,
        },
    ];

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut total = (0u64, 0u64, 0u64); // (cache_hits, shed, degraded)
    for s in &scenarios {
        let outcome = run_scenario(s, seed);
        println!(
            "{:<10} {} requests -> {} responses ({} lost) in {:.1} ms | p50 {:.2} ms, p99 {:.2} ms, {} cache hits, {} shed, {} degraded, {} errors",
            outcome.name,
            outcome.requests,
            outcome.responses,
            outcome.lost,
            outcome.elapsed.as_secs_f64() * 1e3,
            outcome.percentile_ms(50),
            outcome.percentile_ms(99),
            outcome.cache_hits,
            outcome.shed,
            outcome.degraded,
            outcome.errors,
        );
        if let Some(stats) = &outcome.server_stats {
            println!(
                "{:<10} server-side ({{\"type\": \"stats\"}}): e2e p50 {:.2} ms, p99 {:.2} ms | queue p50 {:.2} ms, p99 {:.2} ms | {} measured",
                "",
                stats.e2e_p50_ms,
                stats.e2e_p99_ms,
                stats.queue_wait_p50_ms,
                stats.queue_wait_p99_ms,
                stats.e2e_count,
            );
            // The server's histogram percentiles are log2-bucket upper
            // bounds (≤ 2× the true value); the client's are nearest-rank
            // over its own clock.  They describe the same population, so
            // each must bound the other within that 2× plus a little
            // scheduling noise.
            if has("--expect-stats-agree") && s.name == "steady" {
                for (label, server, client) in [
                    ("p50", stats.e2e_p50_ms, outcome.percentile_ms(50)),
                    ("p99", stats.e2e_p99_ms, outcome.percentile_ms(99)),
                ] {
                    let slack_ms = 50.0;
                    if server > 2.0 * client + slack_ms || client > 2.0 * server + slack_ms {
                        failures.push(format!(
                            "{}: server {label} {server:.3} ms and client {label} {client:.3} ms disagree beyond 2x + {slack_ms} ms",
                            outcome.name,
                        ));
                    }
                }
            }
        }
        if s.auto {
            let (exact, anytime, raced) = outcome.auto_bands;
            println!(
                "{:<10} auto bands: {exact} exact, {anytime} anytime, {raced} raced | tight service-side p99 {:.3} ms",
                "", outcome.tight_p99_ms,
            );
            if has("--expect-auto-bands") {
                if exact == 0 || anytime == 0 || raced == 0 {
                    failures.push(format!(
                        "{}: expected every band >= 1, got {exact} exact / {anytime} anytime / {raced} raced",
                        outcome.name,
                    ));
                }
                if outcome.errors != 0 {
                    failures.push(format!("{}: {} error response(s)", outcome.name, outcome.errors));
                }
                let bound = AUTO_TIGHT_DEADLINE_MS as f64 + AUTO_TIGHT_SLACK_MS;
                if outcome.tight_p99_ms > bound {
                    failures.push(format!(
                        "{}: tight-band p99 {:.3} ms exceeds deadline {} ms + slack {} ms",
                        outcome.name,
                        outcome.tight_p99_ms,
                        AUTO_TIGHT_DEADLINE_MS,
                        AUTO_TIGHT_SLACK_MS,
                    ));
                }
            }
        }
        // The core contract holds in every scenario: open-loop offered load,
        // exactly one response per request.
        if outcome.lost != 0 {
            failures.push(format!("{}: lost {} response(s)", outcome.name, outcome.lost));
        }
        total.0 += outcome.cache_hits;
        total.1 += outcome.shed;
        total.2 += outcome.degraded;
        rows.push(outcome.row());
    }

    if has("--expect-cache-hit") && total.0 == 0 {
        failures.push("expected >= 1 cache hit, observed 0".to_string());
    }
    if has("--expect-shed") && total.1 == 0 {
        failures.push("expected >= 1 shed, observed 0".to_string());
    }
    if has("--expect-degraded") && total.2 == 0 {
        failures.push("expected >= 1 degraded, observed 0".to_string());
    }

    match write_json_rows(out, &rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("loadgen: FAILED: {f}");
        }
        std::process::exit(1);
    }
}

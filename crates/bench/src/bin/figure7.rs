//! Regenerates **Figure 7** of the paper: quality and cost of the parallel
//! Aε* scheduler relative to the exact parallel A* scheduler, for ε = 0.2 and
//! ε = 0.5 on 16 PPEs.
//!
//! Two quantities are reported for every CCR ∈ {0.1, 1.0, 10.0} and graph
//! size:
//!
//! * **deviation** — percentage by which the Aε* schedule exceeds the optimal
//!   schedule length (plots (a) and (c) of the figure); by Theorem 2 it can
//!   never exceed 100·ε %, and the paper observes it is usually far smaller;
//! * **time ratio** — Aε* scheduling time divided by the exact parallel A*
//!   scheduling time (plots (b) and (d)); the paper reports savings of
//!   roughly 10–40 % for ε = 0.2 and 50–70 % for ε = 0.5.
//!
//! Both duplicate-detection modes of the parallel scheduler are swept and
//! every datapoint is tagged with its mode, in the CSV and in the JSON
//! series written to `results/figure7.json`.
//!
//! Usage: `cargo run --release -p optsched-bench --bin figure7 -- [--sizes ...] [--budget-ms N] [--tpes P] [--seed S] `

use optsched_bench::{workload_problem, write_json_rows, CsvWriter, ExperimentOptions, CCRS};
use optsched_core::SearchLimits;
use optsched_parallel::{DuplicateDetection, ParallelAStarScheduler, ParallelConfig};

const PPES: usize = 16;
const EPSILONS: [f64; 2] = [0.2, 0.5];
const DUP_MODES: [DuplicateDetection; 2] =
    [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal];

fn main() {
    let opts = ExperimentOptions::parse(std::env::args().skip(1));
    let limits = SearchLimits { max_millis: opts.budget_ms, ..Default::default() };
    let mut csv = CsvWriter::new(
        "ccr,size,epsilon,dup_mode,optimal_length,approx_length,deviation_pct,exact_ms,approx_ms,time_ratio,exact_expanded,approx_expanded",
    );
    let mut json_rows: Vec<String> = Vec::new();

    println!("Figure 7 reproduction — parallel Aε* deviation from optimal and time ratio ({PPES} PPEs)");
    println!("TPEs = {}, dup modes = [local, sharded], seed = {}", opts.num_tpes, opts.seed);

    for &eps in &EPSILONS {
        for mode in DUP_MODES {
            println!("\nε = {eps}, {mode} duplicate detection");
            println!(
                "{:>5} | {:>8} | {:>10} {:>10} {:>12} | {:>12} {:>12} {:>10}",
                "size", "CCR", "optimal", "Aε*", "deviation %", "A* ms", "Aε* ms", "time ratio"
            );
            for &ccr in &CCRS {
                for &size in &opts.sizes {
                    let problem = workload_problem(size, ccr, &opts);

                    let exact_cfg = ParallelConfig { limits, ..ParallelConfig::paragon_like(PPES) }
                        .with_duplicate_detection(mode);
                    let exact = ParallelAStarScheduler::new(&problem, exact_cfg).run();
                    let approx_cfg = ParallelConfig {
                        limits,
                        epsilon: Some(eps),
                        ..ParallelConfig::paragon_like(PPES)
                    }
                    .with_duplicate_detection(mode);
                    let approx = ParallelAStarScheduler::new(&problem, approx_cfg).run();

                    let optimal_len = exact.schedule_length() as f64;
                    let approx_len = approx.schedule_length() as f64;
                    let deviation = 100.0 * (approx_len - optimal_len) / optimal_len;
                    let exact_ms = exact.elapsed.as_secs_f64() * 1e3;
                    let approx_ms = approx.elapsed.as_secs_f64() * 1e3;
                    let ratio = approx_ms / exact_ms.max(1e-6);

                    if exact.is_optimal() && approx.is_optimal() {
                        assert!(
                            approx_len <= (optimal_len * (1.0 + eps)).floor() + 1e-9,
                            "Aε* exceeded its bound: {approx_len} vs {optimal_len} (ε = {eps}, {mode})"
                        );
                    }

                    println!(
                        "{:>5} | {:>8} | {:>10} {:>10} {:>12.2} | {:>12.1} {:>12.1} {:>10.2}",
                        size, ccr, exact.schedule_length(), approx.schedule_length(), deviation, exact_ms, approx_ms, ratio
                    );
                    csv.row(&[
                        ccr.to_string(),
                        size.to_string(),
                        eps.to_string(),
                        mode.to_string(),
                        exact.schedule_length().to_string(),
                        approx.schedule_length().to_string(),
                        format!("{deviation:.3}"),
                        format!("{exact_ms:.3}"),
                        format!("{approx_ms:.3}"),
                        format!("{ratio:.3}"),
                        exact.total_expanded().to_string(),
                        approx.total_expanded().to_string(),
                    ]);
                    json_rows.push(format!(
                        "{{\"ccr\": {ccr}, \"size\": {size}, \"epsilon\": {eps}, \
                         \"dup_mode\": \"{mode}\", \"optimal_length\": {}, \
                         \"approx_length\": {}, \"deviation_pct\": {deviation:.3}, \
                         \"exact_ms\": {exact_ms:.3}, \"approx_ms\": {approx_ms:.3}, \
                         \"time_ratio\": {ratio:.3}, \"exact_expanded\": {}, \
                         \"approx_expanded\": {}}}",
                        exact.schedule_length(),
                        approx.schedule_length(),
                        exact.total_expanded(),
                        approx.total_expanded()
                    ));
                }
            }
        }
    }

    match csv.write("figure7.csv") {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results CSV: {e}"),
    }
    match write_json_rows("figure7.json", &json_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}

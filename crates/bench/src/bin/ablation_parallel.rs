//! Ablation study of the parallel-search design choices of Section 3.3:
//! the PPE interconnection topology (which limits whom a PPE may exchange
//! states with), the minimum communication period (the floor of the
//! exponentially decreasing schedule T = v/2, v/4, …), the heuristic
//! (paper vs. tight vs. none), and — beyond the paper — the duplicate
//! detection mode (per-PPE CLOSED lists vs. the sharded global table, with
//! a shard-count sweep) and the per-PPE state store (delta arena vs. the
//! eager clone-per-generation baseline).
//!
//! Reported per configuration: wall-clock time, total states expanded across
//! all PPEs (the redundant-work measure), cross-PPE duplicates dropped by
//! the global table, the peak number of live full states any PPE held (the
//! state-store memory measure), the arena-lifecycle counters (peak live
//! records and records reclaimed by the chain GC, summed across PPEs), the
//! peak number of *records* in flight between PPEs (a full clone costs `v`
//! records, a shipped delta chain only its depth), and the load imbalance
//! between the busiest and laziest PPE.  Every configuration must return
//! the optimal schedule length.
//!
//! Besides the CSV, the local-vs-sharded and arena-vs-eager comparisons are
//! written as `results/BENCH_parallel.json` datapoints (the before/after
//! records of the sharded-CLOSED-table and arena-store changes).
//!
//! Usage: `cargo run --release -p optsched-bench --bin ablation_parallel -- [--sizes ...] [--budget-ms N]`

use optsched_bench::{workload_problem, CsvWriter, ExperimentOptions};
use optsched_core::{AStarScheduler, HeuristicKind, SearchLimits, SearchOutcome, StoreKind};
use optsched_parallel::{DuplicateDetection, ParallelAStarScheduler, ParallelConfig};
use optsched_procnet::Topology;

fn main() {
    let mut opts = ExperimentOptions::parse(std::env::args().skip(1));
    if opts.sizes == ExperimentOptions::default().sizes {
        opts.sizes = vec![12, 14];
    }
    let ccr = 1.0;
    let q = 8;
    let limits = SearchLimits { max_millis: opts.budget_ms, ..Default::default() };
    let mut csv = CsvWriter::new(
        "size,configuration,schedule_length,time_ms,total_expanded,redundant_work,dup_avoided,peak_live_states,peak_live_records,reclaimed_records,replayed_deltas,replayed_deltas_saved,replay_overhead_pct,peak_in_flight,election_transfers,load_imbalance",
    );
    // Accumulates the before/after (local vs. sharded CLOSED) datapoints.
    let mut bench_json: Vec<String> = Vec::new();

    println!("Parallel-design ablation (q = {q} PPEs, CCR = {ccr})");
    for &size in &opts.sizes {
        let problem = workload_problem(size, ccr, &opts);
        let serial = AStarScheduler::new(&problem).with_limits(limits).run();
        if serial.outcome != SearchOutcome::Optimal {
            println!("\nv = {size}: serial reference exceeded the budget, skipped");
            continue;
        }
        println!(
            "\nv = {size} (serial: {} ms, {} expansions, optimum {})",
            serial.elapsed.as_millis(),
            serial.stats.expanded,
            serial.schedule_length
        );
        println!(
            "{:<44} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "configuration", "time ms", "expanded", "redund.", "avoided", "peak live", "imbalance"
        );

        let base = ParallelConfig { num_ppes: q, limits, ..Default::default() };
        let configs: Vec<(String, ParallelConfig)> = vec![
            ("fully connected PPEs (arena store)".to_string(), base),
            (
                "local CLOSED lists (paper design)".to_string(),
                base.with_duplicate_detection(DuplicateDetection::Local),
            ),
            (
                "eager clone store (PR 3 baseline)".to_string(),
                base.with_store(StoreKind::EagerClone),
            ),
            (
                "sharded global CLOSED, 1 shard".to_string(),
                ParallelConfig { num_shards: 1, ..base },
            ),
            (
                "sharded global CLOSED, 64 shards".to_string(),
                ParallelConfig { num_shards: 64, ..base },
            ),
            (
                "mesh PPEs (Paragon-like)".to_string(),
                ParallelConfig { limits, ..ParallelConfig::paragon_like(q) },
            ),
            (
                "ring PPEs".to_string(),
                ParallelConfig { ppe_topology: Some(Topology::Ring), ..base },
            ),
            (
                "chain PPEs".to_string(),
                ParallelConfig { ppe_topology: Some(Topology::Chain), ..base },
            ),
            (
                "min comm period 16 (lazier exchange)".to_string(),
                ParallelConfig { min_comm_period: 16, ..base },
            ),
            (
                "min comm period 1 (eager exchange)".to_string(),
                ParallelConfig { min_comm_period: 1, ..base },
            ),
            (
                "tight heuristic".to_string(),
                ParallelConfig { heuristic: HeuristicKind::TightStaticLevel, ..base },
            ),
            (
                "zero heuristic (uniform-cost)".to_string(),
                ParallelConfig { heuristic: HeuristicKind::Zero, ..base },
            ),
        ];

        let mut mode_points: Vec<String> = Vec::new();
        for (name, cfg) in configs {
            let r = ParallelAStarScheduler::new(&problem, cfg).run();
            if r.outcome == SearchOutcome::Optimal {
                assert_eq!(
                    r.schedule_length(),
                    serial.schedule_length,
                    "parallel search must stay optimal ({name})"
                );
            }
            let mut ms = r.elapsed.as_secs_f64() * 1e3;
            // Sub-second completed rows are re-measured best-of-N (same
            // idiom as ablation_serial): at that scale a store or table
            // comparison drowns in thread-scheduling noise, and the minimum
            // over repetitions is the honest estimate of the configuration's
            // cost.  Counters are reported from the first run.
            let reps = if r.outcome != SearchOutcome::Optimal {
                0
            } else if ms < 50.0 {
                12
            } else if ms < 1000.0 {
                4
            } else {
                0
            };
            for _ in 0..reps {
                let rep = ParallelAStarScheduler::new(&problem, cfg).run();
                ms = ms.min(rep.elapsed.as_secs_f64() * 1e3);
            }
            let redundant = r.total_expanded() as f64 / serial.stats.expanded.max(1) as f64;
            let avoided = r.redundant_expansions_avoided();
            // Airtight headline: per-PPE store peak + in-flight transfer peak
            // (the latter counted in *records* since delta chains ship as-is).
            let peak_live = r.peak_live_states();
            let peak_in_flight = r.peak_in_flight;
            let totals = r.total_stats();
            let peak_records = totals.peak_live_records;
            let reclaimed = totals.reclaimed_records;
            let replayed = totals.replayed_deltas;
            let replay_saved = totals.replayed_deltas_saved;
            // Share of delta applications the arena actually replayed out of
            // what a cache-less walk-to-snapshot arena would have replayed —
            // the smaller, the better the scratch/path-cache/ancestor reuse.
            let replay_overhead_pct = if replayed + replay_saved == 0 {
                0.0
            } else {
                replayed as f64 / (replayed + replay_saved) as f64 * 100.0
            };
            let elections = r.election_transfers();
            let imbalance = r.load_imbalance();
            println!(
                "{:<44} {:>10.1} {:>12} {:>10.2} {:>10} {:>10} {:>10.2}",
                name,
                ms,
                r.total_expanded(),
                redundant,
                avoided,
                peak_live,
                imbalance
            );
            csv.row(&[
                size.to_string(),
                name.replace(' ', "_"),
                r.schedule_length().to_string(),
                format!("{ms:.3}"),
                r.total_expanded().to_string(),
                format!("{redundant:.3}"),
                avoided.to_string(),
                peak_live.to_string(),
                peak_records.to_string(),
                reclaimed.to_string(),
                replayed.to_string(),
                replay_saved.to_string(),
                format!("{replay_overhead_pct:.1}"),
                peak_in_flight.to_string(),
                elections.to_string(),
                format!("{imbalance:.3}"),
            ]);
            // The before/after datapoints — local vs. sharded CLOSED (PR 2)
            // and eager vs. arena store (PR 4) — are the configurations that
            // differ from `base` only in that one knob (matched on the
            // configuration itself, not the display label, so renames cannot
            // drop a datapoint).  `base` is the default: sharded + arena.
            let mode_key = if cfg == base {
                Some("sharded")
            } else if cfg == base.with_duplicate_detection(DuplicateDetection::Local) {
                Some("local")
            } else if cfg == base.with_store(StoreKind::EagerClone) {
                Some("eager")
            } else {
                None
            };
            if let Some(key) = mode_key {
                mode_points.push(format!(
                    "\"{key}\": {{\"time_ms\": {ms:.3}, \"total_expanded\": {}, \
                     \"redundant_vs_serial\": {redundant:.3}, \"dup_avoided\": {avoided}, \
                     \"peak_live_states\": {peak_live}, \"peak_live_records\": {peak_records}, \
                     \"reclaimed_records\": {reclaimed}, \
                     \"replayed_deltas\": {replayed}, \
                     \"replayed_deltas_saved\": {replay_saved}, \
                     \"path_cache_ancestor_hits\": {}, \
                     \"replay_overhead_pct\": {replay_overhead_pct:.1}, \
                     \"peak_in_flight\": {peak_in_flight}, \
                     \"election_transfers\": {elections}, \
                     \"schedule_length\": {}}}",
                    r.total_expanded(),
                    totals.path_cache_ancestor_hits,
                    r.schedule_length()
                ));
            }
        }
        let mut fields = vec![
            format!("\"size\": {size}"),
            format!("\"q\": {q}"),
            format!("\"ccr\": {ccr}"),
            format!("\"serial_expanded\": {}", serial.stats.expanded),
        ];
        fields.extend(mode_points);
        bench_json.push(format!("  {{{}}}", fields.join(", ")));
    }

    match csv.write("ablation_parallel.csv") {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results CSV: {e}"),
    }
    // The sharded-CLOSED and arena-store before/after records (see README).
    let json = format!("[\n{}\n]\n", bench_json.join(",\n"));
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_parallel.json", json))
    {
        Ok(()) => println!("wrote results/BENCH_parallel.json"),
        Err(e) => eprintln!("could not write results/BENCH_parallel.json: {e}"),
    }
}

//! Before/after measurement of the arena-backed state store on the serial
//! schedulers (the engine-refactor acceptance record).
//!
//! Every serial family (A*, Aε*, Chen & Yu, exhaustive) is dispatched
//! through the facade's scheduler registry twice per instance: once with the
//! pre-refactor `eager` clone-per-generation store and once with the delta
//! `arena`.  Both runs are bit-identical searches (same optimum, same
//! expansion counts — asserted); what changes is the cost profile, recorded
//! per run as wall-clock time, the peak number of live fully materialised
//! states (the allocation proxy), and — since the arena became refcounted —
//! the record-lifecycle counters: peak live arena records, records reclaimed
//! by the chain GC, deltas replayed during materialisation, and the replay
//! path-cache hits that cut those replays short.
//!
//! Since the `seed_incumbent` knob exists (the scheduling service's
//! default), the A* and Chen & Yu rows are additionally measured *seeded*:
//! the list-heuristic schedule is an attained incumbent, so the upper-bound
//! rule prunes strictly and the branch-and-bound elimination starts from the
//! list bound instead of infinity.  Seeded rows carry `"seeded": true`;
//! they remain exact (asserted) but are **not** count-comparable to the
//! unseeded rows — that is the point being measured.  Results go to
//! `results/BENCH_serial.json` and `results/ablation_serial.csv`.
//!
//! Usage: `cargo run --release -p optsched-bench --bin ablation_serial -- [--sizes 10,12] [--budget-ms N]`

use optsched::registry::{SchedulerRegistry, SchedulerSpec};
use optsched_bench::{workload_problem, write_json_rows, CsvWriter, ExperimentOptions};
use optsched_core::{SearchLimits, SearchOutcome, StoreKind};

const FAMILIES: [&str; 4] = ["astar", "aeps", "chenyu", "exhaustive"];
const STORES: [StoreKind; 2] = [StoreKind::EagerClone, StoreKind::DeltaArena];
/// Families measured a second time with the seeded incumbent (the service
/// path): the ones the satellite task names — A* and the Chen & Yu baseline.
const SEEDED_FAMILIES: [&str; 2] = ["astar", "chenyu"];

fn main() {
    let mut opts = ExperimentOptions::parse(std::env::args().skip(1));
    if opts.sizes == ExperimentOptions::default().sizes {
        // v = 12 is the largest ablation instance that the exact serial
        // searches finish in seconds on a single core; the exponential
        // baselines (Chen & Yu, exhaustive) are cut by the budget and
        // recorded as such.
        opts.sizes = vec![10, 12];
    }
    let ccr = 1.0;
    let limits = SearchLimits { max_millis: opts.budget_ms, ..Default::default() };
    let mut csv = CsvWriter::new(
        "size,ccr,scheduler,store,seeded,schedule_length,optimal,expanded,generated,peak_live_states,peak_live_records,reclaimed_records,replayed_deltas,path_cache_hits,max_open_size,time_ms,timed_out",
    );
    let mut json_rows: Vec<String> = Vec::new();

    println!("Serial store ablation — eager clone-per-generation vs. delta arena (CCR = {ccr})");
    for &size in &opts.sizes {
        let problem = workload_problem(size, ccr, &opts);
        println!(
            "\nv = {size} (lower bound {}, list upper bound {})",
            problem.lower_bound(),
            problem.upper_bound()
        );
        println!(
            "{:<12} {:>7} {:>7} | {:>10} {:>12} {:>12} {:>16} {:>12} {:>10} {:>12}",
            "scheduler", "store", "seeded", "length", "expanded", "generated",
            "peak live states", "peak recs", "reclaimed", "time ms"
        );

        // The seeded variant rides along for the service-path families.
        let runs = FAMILIES
            .iter()
            .map(|&f| (f, false))
            .chain(SEEDED_FAMILIES.iter().map(|&f| (f, true)));
        let mut optimum: Option<u64> = None;
        for (family, seeded) in runs {
            let mut lengths: Vec<(StoreKind, u64, u64)> = Vec::new();
            for store in STORES {
                let spec =
                    SchedulerSpec { limits, store, seed_incumbent: seeded, ..Default::default() };
                let registry = SchedulerRegistry::with_spec(spec);
                let r = registry.get(family).expect("registered family").run(&problem).result;
                let mut ms = r.elapsed.as_secs_f64() * 1e3;
                let timed_out = r.outcome == SearchOutcome::LimitReached;
                // Fast completed runs are re-measured best-of-N (the faster
                // the run, the more repetitions): at that scale the store
                // comparison would otherwise drown in scheduling noise.  The
                // searches are deterministic, so only the clock varies
                // between repetitions.
                let reps = if timed_out {
                    0
                } else if ms < 50.0 {
                    12
                } else if ms < 1000.0 {
                    4
                } else {
                    0
                };
                for _ in 0..reps {
                    let rep =
                        registry.get(family).expect("registered family").run(&problem).result;
                    ms = ms.min(rep.elapsed.as_secs_f64() * 1e3);
                }
                println!(
                    "{:<12} {:>7} {:>7} | {:>10} {:>12} {:>12} {:>16} {:>12} {:>10} {:>12}",
                    family,
                    store.to_string(),
                    seeded,
                    r.schedule_length,
                    r.stats.expanded,
                    r.stats.generated,
                    r.stats.peak_live_states,
                    r.stats.peak_live_records,
                    r.stats.reclaimed_records,
                    if timed_out {
                        format!(">{}", opts.budget_ms.unwrap_or(0))
                    } else {
                        format!("{ms:.1}")
                    }
                );
                csv.row(&[
                    size.to_string(),
                    ccr.to_string(),
                    family.to_string(),
                    store.to_string(),
                    seeded.to_string(),
                    r.schedule_length.to_string(),
                    r.is_optimal().to_string(),
                    r.stats.expanded.to_string(),
                    r.stats.generated.to_string(),
                    r.stats.peak_live_states.to_string(),
                    r.stats.peak_live_records.to_string(),
                    r.stats.reclaimed_records.to_string(),
                    r.stats.replayed_deltas.to_string(),
                    r.stats.path_cache_hits.to_string(),
                    r.stats.max_open_size.to_string(),
                    format!("{ms:.3}"),
                    timed_out.to_string(),
                ]);
                json_rows.push(format!(
                    "{{\"size\": {size}, \"ccr\": {ccr}, \"scheduler\": \"{family}\", \
                     \"store\": \"{store}\", \"seeded\": {seeded}, \"schedule_length\": {}, \
                     \"optimal\": {}, \
                     \"expanded\": {}, \"generated\": {}, \"peak_live_states\": {}, \
                     \"peak_live_records\": {}, \"reclaimed_records\": {}, \
                     \"replayed_deltas\": {}, \"path_cache_hits\": {}, \
                     \"max_open_size\": {}, \"time_ms\": {ms:.3}, \"timed_out\": {timed_out}}}",
                    r.schedule_length,
                    r.is_optimal(),
                    r.stats.expanded,
                    r.stats.generated,
                    r.stats.peak_live_states,
                    r.stats.peak_live_records,
                    r.stats.reclaimed_records,
                    r.stats.replayed_deltas,
                    r.stats.path_cache_hits,
                    r.stats.max_open_size,
                ));
                if !timed_out {
                    lengths.push((store, r.schedule_length, r.stats.expanded));
                    // Seeding must never change the answer, only the work
                    // (aeps is excluded: ε > 0 may legitimately return a
                    // within-bound, non-optimal length).
                    if family != "aeps" {
                        match optimum {
                            None => optimum = Some(r.schedule_length),
                            Some(len) => assert_eq!(
                                len, r.schedule_length,
                                "{family} (seeded={seeded}): optimum changed"
                            ),
                        }
                    }
                }
            }
            // The store is a pure memory/time trade: completed runs must
            // agree on the optimum and on the expansion counts.
            if lengths.len() == 2 {
                assert_eq!(lengths[0].1, lengths[1].1, "{family}: stores disagree on the optimum");
                assert_eq!(
                    lengths[0].2, lengths[1].2,
                    "{family}: stores disagree on expansion counts"
                );
            }
        }
    }

    match csv.write("ablation_serial.csv") {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write results CSV: {e}"),
    }
    match write_json_rows("BENCH_serial.json", &json_rows) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write results JSON: {e}"),
    }
}

//! Disabled-overhead regression guard for the `optsched-obs` event/span
//! layer (the PR 10 observability contract).
//!
//! The contract: with collection *disabled* (the default — no `--trace-out`,
//! no `trace_path`), every instrumentation site costs one relaxed atomic
//! load, so an instrumented build must run the paper workload at the same
//! speed as an uninstrumented one.  This binary measures the same seeded
//! serial A\* search (v = 10, CCR = 1 — the tier-1 reference cell) best-of-N
//! twice in one process — collection disabled, then enabled — and asserts:
//!
//! * disabled: the ring drains **zero** events (nothing was recorded);
//! * enabled: the same search records events (the sites actually fire);
//! * `disabled_ms <= 1.05 × enabled_ms` — tracing-disabled wall-clock within
//!   5% of the instrumented-and-collecting run (the CI regression bound:
//!   disabled collection must not be the slower mode);
//! * `enabled_ms <= 1.5 × disabled_ms` — even *enabled* collection stays
//!   cheap (ring writes are two relaxed stores and an index bump).
//!
//! One JSON row goes to `results/BENCH_obs.json`; assertion failures exit
//! non-zero, so CI runs the binary directly.
//!
//! Usage: `cargo run --release -p optsched-bench --bin bench_obs --
//!         [--sizes 10] [--tpes 3] [--seed N]`

use std::time::Instant;

use optsched::registry::{SchedulerRegistry, SchedulerSpec};
use optsched_bench::{workload_problem, write_json_rows, ExperimentOptions};
use optsched_core::SchedulingProblem;

/// Best-of-N wall-clock of the seeded exact A\* search, plus the result's
/// schedule length (asserted identical across modes: instrumentation must
/// never change the search).
fn best_of(problem: &SchedulingProblem, reps: usize) -> (f64, u64) {
    let spec = SchedulerSpec { seed_incumbent: true, ..Default::default() };
    let registry = SchedulerRegistry::with_spec(spec);
    let scheduler = registry.get("astar").expect("astar is registered");
    let mut best_ms = f64::INFINITY;
    let mut length = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let r = scheduler.run(problem).result;
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
        length = r.schedule_length;
    }
    (best_ms, length)
}

fn main() {
    let mut opts = ExperimentOptions::parse(std::env::args().skip(1));
    if opts.sizes == ExperimentOptions::default().sizes {
        opts.sizes = vec![10];
    }
    let size = opts.sizes[0];
    let ccr = 1.0;
    let reps = 8;
    let problem = workload_problem(size, ccr, &opts);

    // Disabled first (the process default), so the enabled run cannot leave
    // stragglers behind: the disabled drain must come up empty *after* a
    // full search ran with collection off.
    assert!(!optsched_obs::enabled(), "collection must start disabled");
    let (disabled_ms, disabled_len) = best_of(&problem, reps);
    let disabled_events = optsched_obs::drain();
    assert!(
        disabled_events.is_empty(),
        "disabled collection recorded {} event(s); the enable flag must gate every site",
        disabled_events.len()
    );

    optsched_obs::set_enabled(true);
    let (enabled_ms, enabled_len) = best_of(&problem, reps);
    optsched_obs::set_enabled(false);
    let enabled_events = optsched_obs::drain();

    assert_eq!(disabled_len, enabled_len, "instrumentation must not change the search");
    assert!(
        !enabled_events.is_empty(),
        "enabled collection recorded nothing; the run_search sites are dead"
    );

    let disabled_over_enabled = disabled_ms / enabled_ms.max(1e-9);
    let enabled_over_disabled = enabled_ms / disabled_ms.max(1e-9);
    println!(
        "v = {size}, CCR = {ccr}, seeded exact astar, best of {reps}: \
         disabled {disabled_ms:.2} ms, enabled {enabled_ms:.2} ms \
         ({} events), disabled/enabled {disabled_over_enabled:.3}",
        enabled_events.len()
    );

    let row = format!(
        "{{\"size\": {size}, \"ccr\": {ccr}, \"reps\": {reps}, \
         \"disabled_ms\": {disabled_ms:.3}, \"enabled_ms\": {enabled_ms:.3}, \
         \"enabled_events\": {}, \"schedule_length\": {disabled_len}}}",
        enabled_events.len()
    );
    match write_json_rows("BENCH_obs.json", &[row]) {
        Ok(path) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write BENCH_obs.json: {e}");
            std::process::exit(1);
        }
    }

    // The regression bounds, after the measurement row is safely written.
    if disabled_over_enabled > 1.05 {
        eprintln!(
            "bench_obs: FAILED: disabled {disabled_ms:.2} ms > 1.05 x enabled {enabled_ms:.2} ms \
             — the disabled path must cost one relaxed load, not more than the collecting run"
        );
        std::process::exit(1);
    }
    if enabled_over_disabled > 1.5 {
        eprintln!(
            "bench_obs: FAILED: enabled {enabled_ms:.2} ms > 1.5 x disabled {disabled_ms:.2} ms \
             — ring-buffer collection has become a hot-path cost"
        );
        std::process::exit(1);
    }
}

//! Criterion micro-version of Figure 6: wall-clock time of the serial A*
//! versus the parallel A* on 2, 4 and 8 PPE threads for one medium random
//! graph (CCR = 1), in both duplicate-detection modes (the paper's private
//! CLOSED lists vs. the sharded global table) and both per-PPE state stores
//! (the default delta arena vs. the eager clone-per-generation baseline).
//! The experiment binary `figure6` produces the full speedup curves per CCR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use optsched_bench::{workload_problem, ExperimentOptions};
use optsched_core::{AStarScheduler, StoreKind};
use optsched_parallel::{DuplicateDetection, ParallelAStarScheduler, ParallelConfig};

fn bench_parallel(c: &mut Criterion) {
    let opts = ExperimentOptions::default();
    let problem = workload_problem(11, 1.0, &opts);

    let mut group = c.benchmark_group("parallel_speedup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("serial", |b| {
        b.iter(|| black_box(AStarScheduler::new(&problem).run().schedule_length))
    });
    for (label, mode, store) in [
        ("parallel", DuplicateDetection::ShardedGlobal, StoreKind::DeltaArena),
        ("parallel_local_closed", DuplicateDetection::Local, StoreKind::DeltaArena),
        ("parallel_eager_store", DuplicateDetection::ShardedGlobal, StoreKind::EagerClone),
    ] {
        for q in [2usize, 4, 8] {
            group.bench_with_input(BenchmarkId::new(label, q), &q, |b, &q| {
                b.iter(|| {
                    let cfg = ParallelConfig::exact(q)
                        .with_duplicate_detection(mode)
                        .with_store(store);
                    black_box(
                        ParallelAStarScheduler::new(&problem, cfg).run().schedule_length(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

//! Criterion micro-version of the pruning ablation: serial A* with no
//! pruning, each technique alone, and all techniques, on one CCR = 1 graph.
//! The experiment binary `ablation_pruning` covers more sizes and CCRs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use optsched_bench::{workload_problem, ExperimentOptions};
use optsched_core::{AStarScheduler, PruningConfig};

fn bench_pruning(c: &mut Criterion) {
    let opts = ExperimentOptions::default();
    let problem = workload_problem(10, 1.0, &opts);
    let none = PruningConfig::none();

    let configs = [
        ("none", none),
        ("proc_iso", PruningConfig { processor_isomorphism: true, ..none }),
        ("node_equiv", PruningConfig { node_equivalence: true, ..none }),
        ("upper_bound", PruningConfig { upper_bound_pruning: true, ..none }),
        ("priority", PruningConfig { priority_ordering: true, ..none }),
        ("all", PruningConfig::all()),
    ];

    let mut group = c.benchmark_group("pruning_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, cfg) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(AStarScheduler::new(&problem).with_pruning(cfg).run().schedule_length)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);

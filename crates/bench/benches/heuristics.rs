//! Criterion benches of the polynomial-time building blocks: level
//! computation, the upper-bound list heuristic and the Chen & Yu bound
//! evaluation, on graphs far larger than the optimal searches can handle.
//! These are the `O(v + e)` / `O(v log v)` paths whose cheapness the paper's
//! cost-function argument relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use optsched_bench::workload_graph;
use optsched_listsched::{upper_bound_schedule, list_schedule, ListConfig, ProcessorPolicy};
use optsched_procnet::ProcNetwork;
use optsched_taskgraph::{GraphLevels, LevelKind};

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("levels");
    for size in [100usize, 500, 2000] {
        let graph = workload_graph(size, 1.0, 1);
        group.bench_with_input(BenchmarkId::new("compute", size), &graph, |b, g| {
            b.iter(|| black_box(GraphLevels::compute(g).critical_path_length()))
        });
    }
    group.finish();
}

fn bench_list_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_scheduling");
    let net = ProcNetwork::fully_connected(8);
    for size in [100usize, 500] {
        let graph = workload_graph(size, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("upper_bound", size), &graph, |b, g| {
            b.iter(|| black_box(upper_bound_schedule(g, &net).makespan()))
        });
        group.bench_with_input(BenchmarkId::new("insertion_eft", size), &graph, |b, g| {
            b.iter(|| {
                black_box(
                    list_schedule(
                        g,
                        &net,
                        ListConfig {
                            priority: LevelKind::BLevel,
                            policy: ProcessorPolicy::EarliestFinish,
                            insertion: true,
                        },
                    )
                    .makespan(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_levels, bench_list_scheduling);
criterion_main!(benches);

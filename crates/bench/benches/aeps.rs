//! Criterion micro-version of Figure 7: time of the serial Aε* scheduler for
//! ε ∈ {0 (exact), 0.2, 0.5} on one random graph per CCR.  The experiment
//! binary `figure7` produces the full deviation / time-ratio series on the
//! parallel scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use optsched_bench::{workload_problem, ExperimentOptions, CCRS};
use optsched_core::AEpsScheduler;

fn bench_aeps(c: &mut Criterion) {
    let opts = ExperimentOptions::default();
    let size = 11;
    let mut group = c.benchmark_group("aeps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for &ccr in &CCRS {
        let problem = workload_problem(size, ccr, &opts);
        for eps in [0.0, 0.2, 0.5] {
            group.bench_with_input(
                BenchmarkId::new(format!("ccr{ccr}"), format!("eps{eps}")),
                &problem,
                |b, p| b.iter(|| black_box(AEpsScheduler::new(p, eps).run().schedule_length)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aeps);
criterion_main!(benches);

//! Criterion micro-version of Table 1: time per complete scheduling run for
//! the Chen & Yu branch-and-bound, A* without pruning and A* with pruning on
//! one small random graph per CCR.  The experiment binary `table1` sweeps the
//! larger sizes; this bench exists so `cargo bench` tracks regressions of the
//! three code paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use optsched_bench::{workload_problem, ExperimentOptions, CCRS};
use optsched_core::{AStarScheduler, ChenYuScheduler, PruningConfig};

fn bench_table1(c: &mut Criterion) {
    let opts = ExperimentOptions::default();
    let size = 9;
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for &ccr in &CCRS {
        let problem = workload_problem(size, ccr, &opts);
        group.bench_with_input(BenchmarkId::new("chen_yu", ccr), &problem, |b, p| {
            b.iter(|| black_box(ChenYuScheduler::new(p).run().schedule_length))
        });
        group.bench_with_input(BenchmarkId::new("astar_full", ccr), &problem, |b, p| {
            b.iter(|| {
                black_box(
                    AStarScheduler::new(p)
                        .with_pruning(PruningConfig::none())
                        .run()
                        .schedule_length,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("astar_pruned", ccr), &problem, |b, p| {
            b.iter(|| black_box(AStarScheduler::new(p).run().schedule_length))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! The global service runtime: **one** worker pool shared by every
//! connection of every transport.
//!
//! The previous pool (`pool.rs` before this runtime existed) spawned a full
//! worker pool per accepted connection — N connections cost N × workers
//! threads and convoyed each other's requests behind their private queues.
//! The runtime inverts that shape:
//!
//! ```text
//!  conn 0 reader ─┐                        ┌─ worker 0 ─┐
//!  conn 1 reader ─┼──▶ shared injector ────┼─ worker 1 ─┼──▶ per-conn writers
//!  conn 2 reader ─┘    (MPMC channel)      └─ worker W ─┘    (seq-reordered)
//! ```
//!
//! * **Readers** parse one JSON line at a time, run *admission control*
//!   (below) and tag every accepted request with their connection id and a
//!   per-connection sequence number before pushing it onto the shared
//!   injector.  Malformed lines and shed requests are answered by the
//!   reader directly — they never occupy a worker.
//! * **Workers** (exactly [`ServiceConfig::workers`] threads, however many
//!   connections exist) pull from the shared injector: an idle worker takes
//!   the next job immediately, so one expensive exact request occupies one
//!   worker while cheap requests flow through the others — the
//!   work-stealing property that per-connection (or per-worker) FIFO queues
//!   cannot give.  Jobs whose cache identity is already being solved are
//!   *coalesced*: they park on the in-flight entry and are answered right
//!   after the leader completes (from the then-warm cache), so duplicate
//!   instances cost one search no matter how they race.
//! * **Writers** (one per connection) buffer worker replies by sequence
//!   number and emit them in request arrival order, so every connection
//!   observes FIFO responses even though the shared pool completes out of
//!   order, and one connection's replies can never reach another.
//!
//! **Admission control.**  The number of admitted-but-unanswered requests is
//! bounded by [`ServiceConfig::admission_budget`] across all connections
//! (a CAS reservation — see [`ServiceMetrics::try_reserve_pending`]).  At or
//! beyond [`ServiceConfig::degrade_threshold`] pending requests, an admitted
//! request is rewritten to deadline-clamped `wastar` (response marked
//! `degraded`); with the budget exhausted it is refused outright with a
//! structured `overloaded` response (`shed`).  Either way the caller gets
//! exactly one response per request and the queue cannot grow unboundedly.
//!
//! **Shutdown.**  [`ServiceRuntime::shutdown`] closes the injector and joins
//! the workers, which first drain every job still queued — a graceful drain,
//! asserted by the soak test.  All [`Connection`]s must be finished first
//! (they hold injector handles).

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use optsched_obs as obs;
use parking_lot::Mutex;

use crate::metrics::Admission;
use crate::protocol::{AdminRequest, Request, Response, StatsReport};
use crate::service::SchedulingService;

/// In-flight coalescing key: requests with equal cache identity are answered
/// by one search.  The trailing byte is the resolved plan band (direct /
/// auto-exact / auto-anytime / auto-race), so an `auto` request only ever
/// coalesces with requests its portfolio resolution actually matches.
type FlightKey = (u64, String, u64, u8);

/// One admitted, tagged request travelling to a worker.
struct Job {
    /// Per-connection arrival sequence number — the writer's ordering key
    /// and the fallback response id.
    seq: u64,
    request: Request,
    /// Set when admission control degraded this request.
    degraded: bool,
    /// When admission control accepted the request.  A `deadline_ms` is a
    /// promise measured from here, not from when a worker frees up: the
    /// worker subtracts the queue wait from the search budget (see
    /// [`answer`]), so a request that waited out its whole deadline gets an
    /// immediate anytime answer instead of a full search.
    admitted: Instant,
    /// Reply route back to the owning connection's writer.
    reply: Sender<Reply>,
    /// The owning connection's tracing track (timeline row).
    track: u64,
}

/// One reply tagged with its per-connection sequence number.
#[derive(Debug)]
pub struct Reply {
    /// The request's per-connection arrival sequence number.
    pub seq: u64,
    /// What the reply carries.
    pub body: ReplyBody,
}

/// The payload of a [`Reply`]: a scheduling response, or the answer to an
/// admin verb.
#[derive(Debug)]
pub enum ReplyBody {
    /// A scheduling (or structured-error) response.
    Response(Response),
    /// The answer to a `{"type": "stats"}` admin line.
    Stats(StatsReport),
}

impl Reply {
    /// The scheduling response, if this reply is one.
    pub fn response(&self) -> Option<&Response> {
        match &self.body {
            ReplyBody::Response(r) => Some(r),
            ReplyBody::Stats(_) => None,
        }
    }

    /// Consumes the reply into its scheduling response, if it is one.
    pub fn into_response(self) -> Option<Response> {
        match self.body {
            ReplyBody::Response(r) => Some(r),
            ReplyBody::Stats(_) => None,
        }
    }

    /// The stats report, if this reply is one.
    pub fn stats(&self) -> Option<&StatsReport> {
        match &self.body {
            ReplyBody::Response(_) => None,
            ReplyBody::Stats(s) => Some(s),
        }
    }
}

/// State shared between the runtime, its workers and every connection.
struct Shared {
    service: SchedulingService,
    /// Cache identities currently being solved, each with the jobs parked
    /// behind the solver ("singleflight"): a duplicate arriving while its
    /// original is mid-search waits for that search instead of racing it.
    in_flight: Mutex<HashMap<FlightKey, Vec<Job>>>,
}

/// The global worker pool.  Create one per process (or per listener) with
/// [`ServiceRuntime::start`]; open any number of concurrent [`Connection`]s
/// against it; [`ServiceRuntime::shutdown`] drains and joins.
pub struct ServiceRuntime {
    shared: Arc<Shared>,
    /// The runtime's injector handle; every connection clones it, and
    /// dropping all clones (shutdown + finished connections) hangs the
    /// workers up.
    injector: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl ServiceRuntime {
    /// Starts the pool: exactly `service.config().workers` (≥ 1) worker
    /// threads pulling from one shared injector.  The service handle is
    /// cloned — cache, metrics and configuration stay shared with the
    /// caller's handle.
    pub fn start(service: &SchedulingService) -> ServiceRuntime {
        // A configured trace path turns event/span collection on for the
        // runtime's lifetime; shutdown drains the rings into the file.
        if service.config().trace_path.is_some() {
            obs::set_enabled(true);
        }
        let workers = service.config().workers.max(1);
        let shared = Arc::new(Shared {
            service: service.clone(),
            in_flight: Mutex::new(HashMap::new()),
        });
        let (injector, jobs) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let jobs = jobs.clone();
                std::thread::spawn(move || worker_loop(&shared, &jobs))
            })
            .collect();
        ServiceRuntime { shared, injector, workers: handles }
    }

    /// The configured pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The service this runtime answers for (shared cache/metrics handle).
    pub fn service(&self) -> &SchedulingService {
        &self.shared.service
    }

    /// Opens a programmatic connection: a submission handle plus the
    /// receiver its replies arrive on (unordered, tagged with `seq`; the
    /// IO transports reorder — see [`ServiceRuntime::serve_connection`]).
    /// The receiver disconnects once the handle is dropped *and* every
    /// admitted request has been answered.
    pub fn open(&self) -> (Connection, Receiver<Reply>) {
        let (reply_tx, reply_rx) = unbounded::<Reply>();
        (
            Connection {
                shared: Arc::clone(&self.shared),
                injector: self.injector.clone(),
                reply: reply_tx,
                seq: 0,
                track: if obs::enabled() { obs::next_track() } else { 0 },
            },
            reply_rx,
        )
    }

    /// Serves one JSON-lines connection over the shared pool: requests in on
    /// `input` (one per line; empty lines skipped), responses out on
    /// `output` in request arrival order.  Returns the connection's tally.
    ///
    /// The calling thread is the writer; a scoped thread reads.  A response
    /// is flushed as soon as it *and every response before it* is done, so a
    /// slow request delays its successors' output but their searches still
    /// proceed concurrently on the pool.
    pub fn serve_connection<R, W>(&self, input: R, output: &mut W) -> io::Result<PoolSummary>
    where
        R: BufRead + Send,
        W: Write,
    {
        let (mut conn, replies) = self.open();
        let track = conn.track;
        std::thread::scope(|scope| -> io::Result<PoolSummary> {
            let reader = scope.spawn(move || -> io::Result<()> {
                for line in input.lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    conn.submit_line(&line);
                }
                Ok(()) // dropping `conn` closes this connection's reply route
            });

            // Writer: reorder worker completions back into arrival order.
            let mut summary = PoolSummary::default();
            let mut pending_out: BTreeMap<u64, ReplyBody> = BTreeMap::new();
            let mut next_seq = 0u64;
            let mut io_result: io::Result<()> = Ok(());
            while let Ok(reply) = replies.recv() {
                pending_out.insert(reply.seq, reply.body);
                while let Some(body) = pending_out.remove(&next_seq) {
                    let seq = next_seq;
                    next_seq += 1;
                    let line = match &body {
                        ReplyBody::Response(resp) => {
                            summary.tally(resp);
                            serde_json::to_string(resp)
                        }
                        ReplyBody::Stats(report) => {
                            // An admin reply is one response line like any
                            // other for the one-line-per-request contract.
                            summary.responses += 1;
                            serde_json::to_string(report)
                        }
                    };
                    if io_result.is_ok() {
                        let _write_span = obs::span("write", track).with_arg("seq", seq);
                        io_result = line
                            .map_err(io::Error::other)
                            .and_then(|line| writeln!(output, "{line}"))
                            .and_then(|()| output.flush());
                        // A dead client stops the writing, not the draining:
                        // the loop keeps consuming replies so the pool's
                        // pending accounting settles, then reports the error.
                    }
                }
            }
            debug_assert!(pending_out.is_empty(), "every admitted seq must be answered");
            let read_result = reader.join().expect("connection reader panicked");
            io_result?;
            read_result?;
            Ok(summary)
        })
    }

    /// Closes the injector and joins the workers after they drain every job
    /// still queued.  Call once all connections are finished (their handles
    /// keep the injector open).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.workers.is_empty() {
            return; // already shut down (Drop after an explicit shutdown)
        }
        // Replace the held injector with a dangling one so the workers'
        // receive side disconnects as soon as the connections are done.
        let (dangling, _) = unbounded::<Job>();
        drop(std::mem::replace(&mut self.injector, dangling));
        for handle in self.workers.drain(..) {
            handle.join().expect("service worker panicked");
        }
        if let Some(path) = &self.shared.service.config().trace_path {
            obs::set_enabled(false);
            match obs::save_chrome_trace(path) {
                Ok(n) => eprintln!("trace: wrote {n} events to {path}"),
                Err(e) => eprintln!("trace: failed to write {path}: {e}"),
            }
        }
    }
}

impl Drop for ServiceRuntime {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The submission half of one connection (see [`ServiceRuntime::open`]).
/// Dropping it signals end-of-input for the connection.
pub struct Connection {
    shared: Arc<Shared>,
    injector: Sender<Job>,
    reply: Sender<Reply>,
    seq: u64,
    /// The connection's tracing track: its requests' read/queue-wait/search/
    /// write spans share one timeline row.
    track: u64,
}

impl Connection {
    /// Parses and submits one JSON line.  Malformed lines and admin verbs
    /// (`{"type": "stats"}`) are answered by the reader immediately (no
    /// worker involved).  Returns what admission control decided (`None` for
    /// non-scheduling lines), and the sequence number the reply will carry.
    pub fn submit_line(&mut self, line: &str) -> (u64, Option<Admission>) {
        let started = Instant::now();
        let _read_span = obs::span("read", self.track);
        match serde_json::from_str::<Request>(line) {
            Ok(request) => {
                let (seq, admission) = self.submit_at(request, started);
                (seq, Some(admission))
            }
            Err(parse_err) => {
                let seq = self.next_seq();
                // A scheduling request can never reach this branch (it parsed
                // above), so a line carrying `"type"` is an admin verb.
                if let Ok(admin) = serde_json::from_str::<AdminRequest>(line) {
                    if admin.verb == "stats" {
                        let report =
                            self.shared.service.stats_report(admin.id.unwrap_or(seq));
                        self.shared
                            .service
                            .metrics()
                            .responses
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = self.reply.send(Reply { seq, body: ReplyBody::Stats(report) });
                    } else {
                        let id = admin.id.unwrap_or(seq);
                        let response =
                            Response::error(id, format!("unknown admin verb `{}`", admin.verb));
                        self.deliver_timed(seq, started, response);
                    }
                    return (seq, None);
                }
                let response = Response::error(seq, format!("malformed request: {parse_err}"));
                self.deliver_timed(seq, started, response);
                (seq, None)
            }
        }
    }

    /// Runs admission control on one parsed request and either enqueues it
    /// (possibly degraded) or answers it shed, returning the decision and
    /// the reply's sequence number.
    pub fn submit(&mut self, request: Request) -> (u64, Admission) {
        self.submit_at(request, Instant::now())
    }

    fn submit_at(&mut self, mut request: Request, started: Instant) -> (u64, Admission) {
        let seq = self.next_seq();
        let metrics = self.shared.service.metrics();
        let (budget, degrade_threshold, degrade_deadline_ms) = {
            let config = self.shared.service.config();
            (config.admission_budget, config.degrade_threshold, config.degrade_deadline_ms)
        };
        metrics.submitted.fetch_add(1, Ordering::Relaxed);

        if !metrics.try_reserve_pending(budget) {
            metrics.shed.fetch_add(1, Ordering::Relaxed);
            obs::instant("shed", self.track, "seq", seq);
            let id = request.id.unwrap_or(seq);
            self.deliver_timed(seq, started, Response::overloaded(id, budget));
            return (seq, Admission::Shed);
        }

        // Past the degrade threshold, the backlog must drain at heuristic
        // speed: the request loses its algorithm choice and becomes
        // deadline-clamped wastar.  (`pending` was just raised past the
        // threshold check value, hence `>`.)
        let pending = metrics.pending.load(Ordering::Relaxed);
        let degraded = pending > degrade_threshold;
        if degraded {
            metrics.degraded.fetch_add(1, Ordering::Relaxed);
            obs::instant("degraded", self.track, "seq", seq);
            request.algorithm = Some("wastar".to_string());
            request.deadline_ms = Some(
                request
                    .deadline_ms
                    .map_or(degrade_deadline_ms, |d| d.min(degrade_deadline_ms)),
            );
        }

        // Admission is timed from submission entry (`started`), so the queue
        // wait charged against the deadline includes the reader's own work.
        let job = Job {
            seq,
            request,
            degraded,
            admitted: started,
            reply: self.reply.clone(),
            track: self.track,
        };
        // A failed send means the runtime already shut down; answer shed so
        // the caller still gets its one structured response per request.
        if let Err(send_err) = self.injector.send(job) {
            metrics.release_pending();
            metrics.shed.fetch_add(1, Ordering::Relaxed);
            let id = send_err.0.request.id.unwrap_or(seq);
            self.deliver_timed(seq, started, Response::overloaded(id, budget));
            return (seq, Admission::Shed);
        }
        (seq, if degraded { Admission::Degraded } else { Admission::Enqueued })
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Sends a reader-generated (malformed/shed/admin-error) reply to this
    /// connection's writer — through the same elapsed-time helper and
    /// end-to-end histogram as worker-answered responses, so *every*
    /// response is timed uniformly.
    fn deliver_timed(&self, seq: u64, started: Instant, mut response: Response) {
        let metrics = self.shared.service.metrics();
        metrics.stamp_elapsed(started, &mut response);
        metrics.observe_e2e(started);
        metrics.responses.fetch_add(1, Ordering::Relaxed);
        let _ = self.reply.send(Reply { seq, body: ReplyBody::Response(response) });
    }
}

/// What one connection processed, for callers that assert on the outcome
/// (the `batch` front end, the CI smoke test, and the load/soak tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSummary {
    /// Responses written (one per non-empty input line).
    pub responses: u64,
    /// Responses with `ok == false` (malformed requests, unknown
    /// algorithms, shed requests, …).
    pub errors: u64,
    /// Responses served from the memoizing result cache.
    pub cache_hits: u64,
    /// Requests refused by admission control (`overloaded`).
    pub shed: u64,
    /// Requests degraded to deadline-clamped `wastar` under overload.
    pub degraded: u64,
}

impl PoolSummary {
    /// Accounts one response.
    fn tally(&mut self, resp: &Response) {
        self.responses += 1;
        if !resp.ok {
            self.errors += 1;
        }
        if resp.cache_hit {
            self.cache_hits += 1;
        }
        if resp.shed {
            self.shed += 1;
        }
        if resp.degraded {
            self.degraded += 1;
        }
    }
}

/// One worker: pull a job from the shared injector, solve it (or park it
/// behind an identical in-flight job), answer the parked duplicates once the
/// leader completes.
fn worker_loop(shared: &Shared, jobs: &Receiver<Job>) {
    shared.service.metrics().workers_spawned.fetch_add(1, Ordering::Relaxed);
    while let Ok(job) = jobs.recv() {
        // A request whose parameters fail resolution has no identity to
        // coalesce on; answer it directly (the structured parameter error).
        let key = match shared.service.cache_identity(&job.request) {
            Ok(key) => key,
            Err(_) => {
                answer(shared, job, false);
                continue;
            }
        };
        let job = {
            let mut in_flight = shared.in_flight.lock();
            match in_flight.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    // An identical request is mid-search on another worker:
                    // park this one; the leader answers it on completion
                    // (from the then-memoized result).
                    entry.get_mut().push(job);
                    continue;
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(Vec::new());
                    job
                }
            }
        };
        answer(shared, job, false);
        // Everything that parked behind this search is a warm-cache answer
        // now (or, for non-memoized deadline runs, a cheap re-run).
        let waiters = shared.in_flight.lock().remove(&key).unwrap_or_default();
        for waiter in waiters {
            answer(shared, waiter, true);
        }
    }
}

/// Solves one job and routes the reply to its connection.
///
/// The job's `deadline_ms` is re-based to the time *remaining* since
/// admission before the search starts: queue wait spends the caller's
/// deadline exactly like search time does, so an admitted request that went
/// stale behind a backlog stops at its original deadline with the anytime
/// incumbent rather than running its full budget late.
fn answer(shared: &Shared, job: Job, coalesced: bool) {
    let metrics = shared.service.metrics();
    let waited = job.admitted.elapsed();
    metrics.observe_queue_wait(waited);
    if obs::enabled() {
        // Reconstruct the wait as a span ending now: the ring only sees
        // completed spans, so the guard pattern cannot cover a wait that
        // started on another thread.  Coalesced waiters waited on the
        // leader's search, not the injector, hence the distinct name.
        let waited_us = u64::try_from(waited.as_micros()).unwrap_or(u64::MAX);
        obs::record(obs::Event {
            name: if coalesced { "coalesce_wait" } else { "queue_wait" },
            parent: "",
            kind: obs::EventKind::Span,
            ts_us: obs::now_us().saturating_sub(waited_us),
            dur_us: waited_us,
            track: job.track,
            arg_name: "seq",
            arg: job.seq,
        });
    }
    let mut request = job.request;
    if let Some(deadline) = request.deadline_ms {
        let waited_ms = u64::try_from(waited.as_millis()).unwrap_or(u64::MAX);
        request.deadline_ms = Some(deadline.saturating_sub(waited_ms));
    }
    let mut response = {
        let _search_span = obs::span("search", job.track).with_arg("seq", job.seq);
        shared.service.handle_request(&request, job.seq)
    };
    response.degraded = job.degraded;
    metrics.observe_peak_live_records(response.peak_live_records);
    metrics.observe_e2e(job.admitted);
    metrics.responses.fetch_add(1, Ordering::Relaxed);
    // The send fails only if the connection's writer already went away (a
    // dead client); the request is still accounted as answered.
    let _ = job.reply.send(Reply { seq: job.seq, body: ReplyBody::Response(response) });
    metrics.release_pending();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Instance;
    use crate::service::ServiceConfig;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn example_request(id: u64) -> Request {
        let mut req = Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)));
        req.id = Some(id);
        req
    }

    #[test]
    fn open_connection_round_trip() {
        let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
        let runtime = ServiceRuntime::start(&service);
        let (mut conn, replies) = runtime.open();
        let (seq, admission) = conn.submit(example_request(7));
        assert_eq!(seq, 0);
        assert_eq!(admission, Admission::Enqueued);
        drop(conn);
        let got: Vec<Reply> = replies.iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 0);
        let resp = got[0].response().expect("scheduling reply");
        assert!(resp.ok);
        assert_eq!(resp.id, 7);
        assert!(
            resp.peak_live_records > 0,
            "a solved (non-cached) response reports its store footprint"
        );
        runtime.shutdown();
        let snap = service.metrics_snapshot();
        assert_eq!(snap.pending, 0);
        assert_eq!(
            snap.peak_live_records, resp.peak_live_records,
            "the service gauge tracks the worst per-request footprint"
        );
    }

    #[test]
    fn zero_budget_sheds_with_a_structured_response() {
        let service = SchedulingService::new(ServiceConfig {
            workers: 1,
            admission_budget: 0,
            ..Default::default()
        });
        let runtime = ServiceRuntime::start(&service);
        let (mut conn, replies) = runtime.open();
        let (_, admission) = conn.submit(example_request(3));
        assert_eq!(admission, Admission::Shed);
        drop(conn);
        let got: Vec<Reply> = replies.iter().collect();
        assert_eq!(got.len(), 1);
        let resp = got[0].response().expect("scheduling reply");
        assert!(!resp.ok);
        assert!(resp.shed && resp.is_overloaded());
        assert_eq!(resp.id, 3);
        assert!(resp.error.as_deref().unwrap().starts_with("overloaded"));
        runtime.shutdown();
        assert_eq!(service.metrics_snapshot().shed, 1);
    }

    #[test]
    fn degrade_threshold_rewrites_to_deadline_clamped_wastar() {
        // Threshold 0: every admitted request is beyond it and degrades.
        let service = SchedulingService::new(ServiceConfig {
            workers: 1,
            degrade_threshold: 0,
            degrade_deadline_ms: 0,
            ..Default::default()
        });
        let runtime = ServiceRuntime::start(&service);
        let (mut conn, replies) = runtime.open();
        let (_, admission) = conn.submit(example_request(1));
        assert_eq!(admission, Admission::Degraded);
        drop(conn);
        let got: Vec<Reply> = replies.iter().collect();
        assert_eq!(got.len(), 1);
        let resp = got[0].response().expect("scheduling reply");
        assert!(resp.ok, "{:?}", resp.error);
        assert!(resp.degraded);
        assert_eq!(resp.algorithm.as_deref(), Some("wastar"));
        runtime.shutdown();
        let snap = service.metrics_snapshot();
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.pending, 0);
    }

    /// A request whose parameters fail resolution (no coalescing identity)
    /// still gets exactly one structured error response and releases its
    /// pending slot.
    #[test]
    fn invalid_parameters_are_answered_without_coalescing() {
        let service = SchedulingService::new(ServiceConfig { workers: 1, ..Default::default() });
        let runtime = ServiceRuntime::start(&service);
        let (mut conn, replies) = runtime.open();
        let mut req = example_request(11);
        req.weight = Some(0.2);
        let (_, admission) = conn.submit(req);
        assert_eq!(admission, Admission::Enqueued);
        drop(conn);
        let got: Vec<Reply> = replies.iter().collect();
        assert_eq!(got.len(), 1);
        let resp = got[0].response().expect("scheduling reply");
        assert!(!resp.ok);
        assert_eq!(resp.id, 11);
        assert!(resp.error.as_deref().unwrap().contains("weight"), "{:?}", resp.error);
        runtime.shutdown();
        assert_eq!(service.metrics_snapshot().pending, 0);
    }

    /// Queue wait spends the deadline: a job whose admission timestamp lies
    /// a full deadline in the past is answered with the anytime incumbent,
    /// while the same request admitted just now gets its full search.
    #[test]
    fn queue_wait_counts_against_the_deadline() {
        use optsched_workload::{generate_random_dag, RandomDagConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(5);
        let graph =
            generate_random_dag(&RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() }, &mut rng);
        let mut request = Request::new(Instance::new(graph, ProcNetwork::ring(3)));
        request.algorithm = Some("astar".to_string());
        request.deadline_ms = Some(5_000);

        let service = SchedulingService::new(ServiceConfig::default());
        let shared =
            Arc::new(Shared { service, in_flight: Mutex::new(HashMap::new()) });
        let (reply_tx, reply_rx) = unbounded::<Reply>();

        // Admitted 10 s ago: the 5 s deadline has fully elapsed in the
        // queue, so the worker must answer without an optimality proof.
        let stale_admitted = Instant::now()
            .checked_sub(std::time::Duration::from_secs(10))
            .expect("host has been up for more than ten seconds");
        shared.service.metrics().try_reserve_pending(u64::MAX);
        answer(
            &shared,
            Job {
                seq: 0,
                request: request.clone(),
                degraded: false,
                admitted: stale_admitted,
                reply: reply_tx.clone(),
                track: 0,
            },
            false,
        );
        let stale =
            reply_rx.recv().expect("stale job answered").into_response().expect("scheduling reply");
        assert!(stale.ok, "{:?}", stale.error);
        assert_ne!(
            stale.quality.as_deref(),
            Some("optimal"),
            "an expired deadline must not run the full search"
        );

        // The same request admitted now has its whole deadline left.
        shared.service.metrics().try_reserve_pending(u64::MAX);
        answer(
            &shared,
            Job {
                seq: 1,
                request,
                degraded: false,
                admitted: Instant::now(),
                reply: reply_tx,
                track: 0,
            },
            false,
        );
        let fresh =
            reply_rx.recv().expect("fresh job answered").into_response().expect("scheduling reply");
        assert_eq!(fresh.quality.as_deref(), Some("optimal"), "{:?}", fresh.error);
    }

    /// The `{"type": "stats"}` admin line is answered by the reader with a
    /// stats report (no worker, no admission slot), and the report reflects
    /// the scheduling traffic that preceded it on the same runtime.
    #[test]
    fn stats_admin_verb_reports_runtime_counters() {
        let service = SchedulingService::new(ServiceConfig { workers: 1, ..Default::default() });
        let runtime = ServiceRuntime::start(&service);
        let (mut conn, replies) = runtime.open();
        let line = serde_json::to_string(&example_request(5)).unwrap();
        conn.submit_line(&line);
        // Wait for the scheduling response first, so the stats snapshot
        // deterministically includes it.
        let first = replies.recv().expect("scheduling reply arrives");
        assert!(first.response().expect("scheduling reply").ok);
        let (seq, admission) = conn.submit_line(r#"{"type": "stats", "id": 42}"#);
        assert_eq!(seq, 1);
        assert_eq!(admission, None, "admin lines bypass admission control");
        let (_, admission) = conn.submit_line(r#"{"type": "flush"}"#);
        assert_eq!(admission, None);
        drop(conn);
        let mut got: Vec<Reply> = replies.iter().collect();
        got.sort_by_key(|r| r.seq);
        assert_eq!(got.len(), 2);
        let report = got[0].stats().expect("stats reply");
        assert_eq!(report.id, 42);
        assert_eq!(report.submitted, 1, "admin lines are not submissions");
        assert!(report.e2e_count >= 1);
        assert!(report.e2e_p99_ms >= report.e2e_p50_ms);
        let unknown = got[1].response().expect("admin error is a response");
        assert!(!unknown.ok);
        assert!(unknown.error.as_deref().unwrap().contains("unknown admin verb"));
        runtime.shutdown();
        assert_eq!(service.metrics_snapshot().pending, 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let service = SchedulingService::new(ServiceConfig { workers: 1, ..Default::default() });
        let runtime = ServiceRuntime::start(&service);
        let (mut conn, replies) = runtime.open();
        for i in 0..8 {
            conn.submit(example_request(i));
        }
        drop(conn);
        runtime.shutdown(); // must answer all 8 before joining
        assert_eq!(replies.iter().count(), 8);
        assert_eq!(service.metrics_snapshot().pending, 0);
    }
}

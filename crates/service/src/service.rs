//! The request handler: parse → intern → cache → dispatch → validate → tag.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use optsched::registry::{SchedulerRegistry, SchedulerSpec};
use optsched_core::{SchedulingProblem, SearchLimits, SearchOutcome};
use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::cache::{CacheStats, CachedResult, ResultCache};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::portfolio::{self, PlanMode, ResolvedPlan};
use crate::protocol::{quality, Instance, Request, Response, StatsReport};
use crate::signature::CanonicalInstance;

/// Configuration of a [`SchedulingService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads of the global pool draining the shared request queue
    /// (shared by *all* connections — not a pool per connection).
    pub workers: usize,
    /// Lock stripes of the memoizing result cache.
    pub cache_shards: usize,
    /// Per-shard entry cap of the result cache (a full shard evicts its
    /// least-recently-used entry); clamped to at least one entry per shard.
    pub cache_capacity: usize,
    /// Optional time-to-live of memoized results, in milliseconds: an entry
    /// older than this is lazily expired on lookup instead of served.
    /// `None` disables expiry.
    pub cache_max_age_ms: Option<u64>,
    /// Admission budget: the hard bound on admitted-but-unanswered requests
    /// across all connections.  A request arriving with the budget exhausted
    /// is refused with a structured `overloaded` response (shed) — the
    /// service never queues unboundedly.
    pub admission_budget: u64,
    /// Degrade threshold (≤ `admission_budget`): a request admitted while at
    /// least this many requests are already pending is rewritten to
    /// deadline-clamped `wastar` (response marked `degraded: true`) so the
    /// backlog drains at heuristic speed instead of exact-search speed.
    /// Setting this equal to `admission_budget` disables degradation
    /// (pure shed).
    pub degrade_threshold: u64,
    /// The deadline (ms) clamped onto degraded requests.
    pub degrade_deadline_ms: u64,
    /// Seed the serial searches from the list-scheduling upper bound (the
    /// `seed_incumbent` knob of [`SchedulerSpec`]).  On by default in the
    /// service: callers pay for answers, not for faithful-to-1998 search
    /// trees.
    pub seed_incumbent: bool,
    /// Default ε for `aeps` requests that do not specify one.
    pub epsilon: f64,
    /// Heuristic weight for `wastar` — the service's deadline-pressure
    /// algorithm — when the request does not specify one.
    pub deadline_weight: f64,
    /// When set, the runtime enables event/span tracing for its lifetime and
    /// writes a Chrome trace-event JSON file (Perfetto-loadable) here on
    /// shutdown.  `None` (the default) keeps tracing disabled: every
    /// instrumentation site then costs one relaxed atomic load.
    pub trace_path: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            cache_shards: 8,
            cache_capacity: crate::cache::DEFAULT_SHARD_CAPACITY,
            cache_max_age_ms: None,
            admission_budget: 256,
            degrade_threshold: 192,
            degrade_deadline_ms: 25,
            seed_incumbent: true,
            epsilon: 0.2,
            deadline_weight: 1.5,
            trace_path: None,
        }
    }
}

/// The scheduling service: stateless request handling over a shared
/// memoizing result cache and shared runtime counters.
///
/// A `SchedulingService` is a cheap *handle*: cloning it shares the cache,
/// the metrics and the configuration, so the global worker pool, every
/// transport and the reporting front end all observe one state.
/// `&SchedulingService` is also `Sync`, so a single handle can serve many
/// threads directly.
#[derive(Clone)]
pub struct SchedulingService {
    config: ServiceConfig,
    cache: Arc<ResultCache>,
    metrics: Arc<ServiceMetrics>,
}

impl SchedulingService {
    /// A service with the given configuration and an empty cache.
    pub fn new(config: ServiceConfig) -> SchedulingService {
        let cache = Arc::new(ResultCache::with_max_age(
            config.cache_shards,
            config.cache_capacity,
            config.cache_max_age_ms.map(Duration::from_millis),
        ));
        SchedulingService { config, cache, metrics: Arc::new(ServiceMetrics::default()) }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Counter snapshot of the memoizing result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The shared runtime counters (admission control, shed/degrade, pool
    /// accounting).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// A point-in-time copy of the runtime counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Builds the `{"type": "stats"}` admin report: counters, latency
    /// percentiles (log2-bucket upper bounds) and cache occupancy.
    pub fn stats_report(&self, id: u64) -> StatsReport {
        let m = self.metrics.snapshot();
        let cache = self.cache_stats();
        StatsReport {
            id,
            submitted: m.submitted,
            responses: m.responses,
            shed: m.shed,
            degraded: m.degraded,
            pending: m.pending,
            peak_pending: m.peak_pending,
            peak_live_records: m.peak_live_records,
            queue_wait_count: m.queue_wait_count,
            queue_wait_p50_ms: m.queue_wait_p50_us as f64 / 1e3,
            queue_wait_p99_ms: m.queue_wait_p99_us as f64 / 1e3,
            e2e_count: m.e2e_count,
            e2e_p50_ms: m.e2e_p50_us as f64 / 1e3,
            e2e_p99_ms: m.e2e_p99_us as f64 / 1e3,
            cache_entries: cache.entries as u64,
            cache_hits: cache.hits,
            dropped_events: optsched_obs::dropped(),
        }
    }

    /// The algorithm this request resolves to: its explicit choice (with
    /// `auto` resolved by the portfolio), or the service default (`wastar`
    /// under deadline pressure, `astar` otherwise).
    ///
    /// Shorthand over [`portfolio::resolve`] for callers that only need the
    /// name; invalid parameters fall back to the name the portfolio would
    /// have reported before rejecting them.
    pub fn resolve_algorithm(&self, req: &Request) -> String {
        match portfolio::resolve(req, &self.config) {
            Ok(plan) => plan.algorithm,
            Err(_) => match &req.algorithm {
                Some(a) => a.clone(),
                None if req.deadline_ms.is_some() => "wastar".to_string(),
                None => "astar".to_string(),
            },
        }
    }

    /// The cache identity of a request — canonical signature, *resolved*
    /// algorithm, quality-relevant parameter bits and the plan-band byte.
    /// Two requests with equal identities are answered by one search (the
    /// runtime coalesces them in flight; the cache memoizes across time).
    ///
    /// The identity comes from the same [`portfolio::resolve`] call that
    /// [`handle_request`](SchedulingService::handle_request) dispatches on,
    /// so the two can never disagree — and a request with invalid ε/weight
    /// fails *here*, before anything coalesces on it.  The literal string
    /// `"auto"` never appears in an identity: an auto request keys on what
    /// the portfolio resolved it to, so a tight heuristic answer can never
    /// alias a generous exact one.
    pub(crate) fn cache_identity(&self, req: &Request) -> Result<(u64, String, u64, u8), String> {
        let plan = portfolio::resolve(req, &self.config)?;
        Ok((
            crate::signature::canonical_signature(&req.instance),
            plan.algorithm,
            plan.param_bits,
            plan.mode.band_byte(),
        ))
    }

    /// Parses and serves one JSON request line.  A malformed line yields a
    /// structured error response (`ok == false`) under `fallback_id` — the
    /// service never dies on bad input.
    pub fn handle_line(&self, line: &str, fallback_id: u64) -> Response {
        match serde_json::from_str::<Request>(line) {
            Ok(req) => self.handle_request(&req, fallback_id),
            Err(e) => Response::error(fallback_id, format!("malformed request: {e}")),
        }
    }

    /// Serves one parsed request.
    ///
    /// The instance is interned under its canonical signature and the
    /// sharded result cache is consulted first; a miss runs the requested
    /// algorithm through the facade's [`SchedulerRegistry`] with the
    /// request's deadline threaded into [`SearchLimits::max_millis`].  Every
    /// response's schedule is validated against the instance before it is
    /// sent.
    pub fn handle_request(&self, req: &Request, fallback_id: u64) -> Response {
        let start = Instant::now();
        let mut response = self.handle_request_inner(req, fallback_id, start);
        // Every response — served, cache hit, or structured error — leaves
        // through the one elapsed-time helper, so `elapsed_ms` is never the
        // 0.0 placeholder some error paths used to carry.
        self.metrics.stamp_elapsed(start, &mut response);
        response
    }

    fn handle_request_inner(&self, req: &Request, fallback_id: u64, start: Instant) -> Response {
        let id = req.id.unwrap_or(fallback_id);
        let instance = &req.instance;

        // One resolution serves validation, dispatch and the cache identity
        // alike (the runtime's coalescer calls the same `resolve` through
        // `cache_identity`, so the two can never diverge).
        let plan = match portfolio::resolve(req, &self.config) {
            Ok(plan) => plan,
            Err(e) => return Response::error(id, e),
        };
        match plan.mode {
            PlanMode::Direct => {}
            PlanMode::AutoExact => {
                self.metrics.auto_exact.fetch_add(1, Ordering::Relaxed);
            }
            PlanMode::AutoAnytime => {
                self.metrics.auto_anytime.fetch_add(1, Ordering::Relaxed);
            }
            PlanMode::AutoRace => {
                self.metrics.auto_raced.fetch_add(1, Ordering::Relaxed);
            }
        }

        let canon = CanonicalInstance::of(instance);
        let signature = canon.signature();
        let sig_hex = format!("{signature:016x}");

        if let Some(cached) = self.cache.lookup(signature, &canon, &plan.algorithm, plan.param_bits)
        {
            // Validate even the memoized schedule against *this* request's
            // instance: canonical equality guarantees it fits, and the check
            // is cheap insurance against cache corruption.
            if cached.schedule.validate(&instance.graph, &instance.network).is_ok() {
                return Response {
                    id,
                    ok: true,
                    algorithm: Some(cached.algorithm),
                    plan: plan.mode.plan_tag().map(str::to_string),
                    quality: Some(cached.quality),
                    schedule_length: Some(cached.schedule_length),
                    schedule: Some(cached.schedule),
                    signature: Some(sig_hex),
                    cache_hit: true,
                    shed: false,
                    degraded: false,
                    // A hit reports the producing run's provenance, not
                    // zeros: dashboards can still see what the answer cost.
                    expanded: cached.expanded,
                    peak_live_records: cached.peak_live_records,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
                    error: None,
                };
            }
        }

        match plan.mode {
            PlanMode::AutoRace => self.run_race(req, &plan, &canon, signature, sig_hex, id, start),
            _ => self.run_plan(req, &plan, &canon, signature, sig_hex, id, start),
        }
    }

    /// Runs a resolved single-search plan (direct, auto-exact or
    /// auto-anytime) and builds the response.
    #[allow(clippy::too_many_arguments)]
    fn run_plan(
        &self,
        req: &Request,
        plan: &ResolvedPlan,
        canon: &CanonicalInstance,
        signature: u64,
        sig_hex: String,
        id: u64,
        start: Instant,
    ) -> Response {
        let instance = &req.instance;
        let problem = SchedulingProblem::new(instance.graph.clone(), instance.network.clone());
        // Only the exact auto band probes the cache for a structurally near
        // incumbent: the generous deadline is what makes the (possibly
        // useless) donor worth validating.
        let warm = if plan.mode == PlanMode::AutoExact {
            self.warm_start_candidate(signature, canon, instance, problem.upper_bound(), None)
        } else {
            None
        };

        let spec = SchedulerSpec {
            limits: SearchLimits {
                max_millis: req.deadline_ms,
                max_expansions: req.max_expansions,
                ..Default::default()
            },
            epsilon: plan.epsilon,
            weight: plan.weight,
            seed_incumbent: self.config.seed_incumbent,
            warm_start: warm,
            ..Default::default()
        };
        let registry = SchedulerRegistry::with_spec(spec);
        let Some(scheduler) = registry.get(&plan.algorithm) else {
            return Response::error(
                id,
                format!(
                    "unknown algorithm `{}` (expected {}|auto)",
                    plan.algorithm,
                    registry.names().join("|")
                ),
            );
        };

        let run = scheduler.run(&problem);
        let Some(schedule) = run.result.schedule else {
            return Response::error(id, format!("`{}` produced no schedule", plan.algorithm));
        };
        if let Err(e) = schedule.validate(&instance.graph, &instance.network) {
            return Response::error(id, format!("internal error: invalid schedule: {e}"));
        }

        let length = schedule.makespan();
        let completed =
            matches!(run.result.outcome, SearchOutcome::Optimal | SearchOutcome::Exhausted);
        // `parallel` always runs exact here: requests cannot set
        // `ParallelConfig::epsilon` (if that knob is ever exposed, its ε must
        // also join `param_bits` so approximate and exact parallel answers
        // never share a cache slot).
        let bounded_suboptimal = (plan.algorithm == "aeps" && plan.epsilon > 0.0)
            || (plan.algorithm == "wastar" && plan.weight > 1.0);
        let tag = quality_tag(run.result.outcome, length, problem.upper_bound(), bounded_suboptimal);

        // Memoize completed runs only: they carry their full guarantee and
        // are deterministic.  A deadline-truncated incumbent is *not*
        // memoized — a later unconstrained request deserves the real search.
        if completed {
            self.memoize(
                signature,
                canon,
                &plan.algorithm,
                plan.param_bits,
                &schedule,
                length,
                tag,
                run.result.stats.expanded,
                run.result.stats.peak_live_records,
            );
        }

        Response {
            id,
            ok: true,
            algorithm: Some(plan.algorithm.clone()),
            plan: plan.mode.plan_tag().map(str::to_string),
            quality: Some(tag.to_string()),
            schedule_length: Some(length),
            schedule: Some(schedule),
            signature: Some(sig_hex),
            cache_hit: false,
            shed: false,
            degraded: false,
            expanded: run.result.stats.expanded,
            peak_live_records: run.result.stats.peak_live_records,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            error: None,
        }
    }

    /// The mid-band staged race: a short weighted-A\* leg secures a good
    /// feasible answer, then the remaining budget runs the exact algorithm
    /// warm-started from that leg (and from the cache's nearest structural
    /// match, whichever validates better).  The exact leg starts from the
    /// race leg's incumbent, so the final answer is never worse than what
    /// plain `wastar` would have returned from the same budget split.
    #[allow(clippy::too_many_arguments)]
    fn run_race(
        &self,
        req: &Request,
        plan: &ResolvedPlan,
        canon: &CanonicalInstance,
        signature: u64,
        sig_hex: String,
        id: u64,
        start: Instant,
    ) -> Response {
        let instance = &req.instance;
        let problem = SchedulingProblem::new(instance.graph.clone(), instance.network.clone());
        // The mid band only exists for requests with a deadline.
        let total = req.deadline_ms.unwrap_or(0);
        let leg_budget = (total / 4).max(1);

        // Leg 1: calibrated weighted A*, a quarter of the budget.
        let leg_spec = SchedulerSpec {
            limits: SearchLimits {
                max_millis: Some(leg_budget),
                max_expansions: req.max_expansions,
                ..Default::default()
            },
            epsilon: plan.epsilon,
            weight: plan.weight,
            seed_incumbent: self.config.seed_incumbent,
            ..Default::default()
        };
        let leg_registry = SchedulerRegistry::with_spec(leg_spec);
        let leg_run =
            leg_registry.get("wastar").expect("wastar is always registered").run(&problem);
        let leg_schedule = leg_run.result.schedule;
        if let Some(leg) = &leg_schedule {
            // A completed leg carries its full w-bounded guarantee: memoize
            // it under its *own* identity so direct `wastar` requests with
            // this weight benefit too.
            if matches!(leg_run.result.outcome, SearchOutcome::Optimal | SearchOutcome::Exhausted)
            {
                let leg_len = leg.makespan();
                let leg_tag = quality_tag(
                    leg_run.result.outcome,
                    leg_len,
                    problem.upper_bound(),
                    plan.weight > 1.0,
                );
                self.memoize(
                    signature,
                    canon,
                    "wastar",
                    plan.weight.to_bits(),
                    leg,
                    leg_len,
                    leg_tag,
                    leg_run.result.stats.expanded,
                    leg_run.result.stats.peak_live_records,
                );
            }
        }

        // Leg 2: the exact algorithm on whatever budget is left, starting
        // from the best incumbent the race has (leg schedule or a validated
        // cache near-match).
        let elapsed_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
        let remaining = total.saturating_sub(elapsed_ms);
        let warm = self.warm_start_candidate(
            signature,
            canon,
            instance,
            problem.upper_bound(),
            leg_schedule.as_ref(),
        );
        let exact_spec = SchedulerSpec {
            limits: SearchLimits {
                max_millis: Some(remaining),
                max_expansions: req.max_expansions,
                ..Default::default()
            },
            epsilon: plan.epsilon,
            weight: plan.weight,
            seed_incumbent: self.config.seed_incumbent,
            warm_start: warm,
            ..Default::default()
        };
        let registry = SchedulerRegistry::with_spec(exact_spec);
        let Some(scheduler) = registry.get(&plan.algorithm) else {
            return Response::error(
                id,
                format!(
                    "unknown algorithm `{}` (expected {}|auto)",
                    plan.algorithm,
                    registry.names().join("|")
                ),
            );
        };
        let run = scheduler.run(&problem);
        let Some(schedule) = run.result.schedule else {
            return Response::error(id, format!("`{}` produced no schedule", plan.algorithm));
        };
        if let Err(e) = schedule.validate(&instance.graph, &instance.network) {
            return Response::error(id, format!("internal error: invalid schedule: {e}"));
        }

        let length = schedule.makespan();
        let completed =
            matches!(run.result.outcome, SearchOutcome::Optimal | SearchOutcome::Exhausted);
        let tag = quality_tag(run.result.outcome, length, problem.upper_bound(), false);
        if completed {
            // The race proved optimality inside the deadline: memoize under
            // the exact identity, where generous requests will look.
            self.memoize(
                signature,
                canon,
                &plan.algorithm,
                plan.param_bits,
                &schedule,
                length,
                tag,
                run.result.stats.expanded,
                run.result.stats.peak_live_records,
            );
        }

        Response {
            id,
            ok: true,
            algorithm: Some(plan.algorithm.clone()),
            plan: plan.mode.plan_tag().map(str::to_string),
            quality: Some(tag.to_string()),
            schedule_length: Some(length),
            schedule: Some(schedule),
            signature: Some(sig_hex),
            cache_hit: false,
            shed: false,
            degraded: false,
            // The race's cost is both legs' cost.
            expanded: leg_run.result.stats.expanded + run.result.stats.expanded,
            peak_live_records: leg_run
                .result
                .stats
                .peak_live_records
                .max(run.result.stats.peak_live_records),
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
            error: None,
        }
    }

    /// Picks the warm-start incumbent for an exact auto search: the better
    /// of a validated cache nearest-match donor and the race leg's schedule
    /// (when there is one).  `auto_warm_starts` counts only the cases where
    /// the *cache* donor wins and would actually tighten the list-seeded
    /// incumbent — i.e. where the cache changed the search.
    fn warm_start_candidate(
        &self,
        signature: u64,
        canon: &CanonicalInstance,
        instance: &Instance,
        upper_bound: Cost,
        leg: Option<&Schedule>,
    ) -> Option<Schedule> {
        let donor = self
            .cache
            .nearest_match(signature, canon)
            .map(|c| c.schedule)
            .filter(|s| s.validate(&instance.graph, &instance.network).is_ok());
        let donor_wins = match (&donor, leg) {
            (Some(d), Some(l)) => d.makespan() < l.makespan(),
            (Some(_), None) => true,
            _ => false,
        };
        if donor_wins {
            let d = donor.expect("donor_wins implies a donor");
            if d.makespan() < upper_bound {
                self.metrics.auto_warm_starts.fetch_add(1, Ordering::Relaxed);
            }
            Some(d)
        } else {
            leg.cloned().or(donor)
        }
    }

    /// Inserts a completed run into the memoizing cache with its provenance.
    #[allow(clippy::too_many_arguments)]
    fn memoize(
        &self,
        signature: u64,
        canon: &CanonicalInstance,
        algorithm: &str,
        param_bits: u64,
        schedule: &Schedule,
        length: Cost,
        tag: &str,
        expanded: u64,
        peak_live_records: u64,
    ) {
        self.cache.insert(
            signature,
            canon,
            algorithm,
            param_bits,
            CachedResult {
                schedule: schedule.clone(),
                schedule_length: length,
                quality: tag.to_string(),
                algorithm: algorithm.to_string(),
                expanded,
                peak_live_records,
            },
        );
    }
}

/// The quality tag of a run: only a proven optimum is `optimal`; a completed
/// bounded-suboptimal run (`aeps` with ε > 0, `wastar` with w > 1) is
/// `anytime`, as is any limit-truncated incumbent that improved on the list
/// schedule; the untouched list incumbent is `heuristic`.
fn quality_tag(
    outcome: SearchOutcome,
    length: Cost,
    upper_bound: Cost,
    bounded_suboptimal: bool,
) -> &'static str {
    match outcome {
        SearchOutcome::Heuristic => quality::HEURISTIC,
        SearchOutcome::LimitReached | SearchOutcome::TargetReached => {
            if length < upper_bound {
                quality::ANYTIME
            } else {
                quality::HEURISTIC
            }
        }
        SearchOutcome::Optimal | SearchOutcome::Exhausted => {
            if bounded_suboptimal {
                quality::ANYTIME
            } else {
                quality::OPTIMAL
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Instance;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn example_request() -> Request {
        Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)))
    }

    #[test]
    fn default_request_is_answered_optimally() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let resp = svc.handle_request(&example_request(), 0);
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.algorithm.as_deref(), Some("astar"));
        assert_eq!(resp.quality.as_deref(), Some(quality::OPTIMAL));
        assert_eq!(resp.schedule_length, Some(14));
        assert!(!resp.cache_hit);
        assert!(resp.signature.is_some());
    }

    #[test]
    fn repeated_instances_hit_the_cache() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let first = svc.handle_request(&example_request(), 0);
        let second = svc.handle_request(&example_request(), 1);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        // A hit carries the producing run's provenance, not zeros.
        assert_eq!(second.expanded, first.expanded);
        assert!(second.expanded > 0);
        assert_eq!(second.peak_live_records, first.peak_live_records);
        assert_eq!(first.schedule_length, second.schedule_length);
        assert_eq!(first.signature, second.signature);
        let stats = svc.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn deadline_requests_default_to_wastar_and_stay_feasible() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let mut req = example_request();
        req.deadline_ms = Some(0); // the harshest deadline there is
        let resp = svc.handle_request(&req, 0);
        assert!(resp.ok);
        assert_eq!(resp.algorithm.as_deref(), Some("wastar"));
        let tag = resp.quality.as_deref().unwrap();
        assert!(tag == quality::ANYTIME || tag == quality::HEURISTIC, "{tag}");
        // The schedule is feasible even at 0 ms (the pre-seeded incumbent).
        let inst = &req.instance;
        resp.schedule.unwrap().validate(&inst.graph, &inst.network).unwrap();
    }

    #[test]
    fn truncated_runs_are_not_memoized() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let mut req = example_request();
        req.deadline_ms = Some(0);
        let truncated = svc.handle_request(&req, 0);
        assert!(truncated.ok);
        assert_ne!(truncated.quality.as_deref(), Some(quality::OPTIMAL));
        // A later unconstrained wastar request must not see a cached stub...
        let mut full = example_request();
        full.algorithm = Some("wastar".to_string());
        let answered = svc.handle_request(&full, 1);
        assert!(!answered.cache_hit, "deadline stubs must not be memoized");
        // ...but its own (completed) answer is memoized.
        let again = svc.handle_request(&full, 2);
        assert!(again.cache_hit);
    }

    #[test]
    fn unknown_algorithms_and_bad_params_are_structured_errors() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let mut req = example_request();
        req.algorithm = Some("quantum".to_string());
        let resp = svc.handle_request(&req, 9);
        assert!(!resp.ok);
        assert_eq!(resp.id, 9);
        assert!(resp.error.as_deref().unwrap().contains("unknown algorithm"));

        let mut req = example_request();
        req.weight = Some(0.2);
        req.algorithm = Some("wastar".to_string());
        assert!(!svc.handle_request(&req, 0).ok);
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        let svc = SchedulingService::new(ServiceConfig::default());
        for line in ["this is not json", "{\"id\": 1}", "[1,2,3]", "{\"instance\": 5}"] {
            let resp = svc.handle_line(line, 42);
            assert!(!resp.ok, "{line}");
            assert_eq!(resp.id, 42);
            assert!(resp.error.is_some());
        }
    }

    #[test]
    fn list_requests_are_tagged_heuristic() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let mut req = example_request();
        req.algorithm = Some("list".to_string());
        let resp = svc.handle_request(&req, 0);
        assert!(resp.ok);
        assert_eq!(resp.quality.as_deref(), Some(quality::HEURISTIC));
        assert!(resp.schedule_length.unwrap() >= 14);
    }

    #[test]
    fn bounded_suboptimal_completions_are_tagged_anytime() {
        let svc = SchedulingService::new(ServiceConfig::default());
        let mut req = example_request();
        req.algorithm = Some("wastar".to_string());
        req.weight = Some(2.0);
        let resp = svc.handle_request(&req, 0);
        assert!(resp.ok);
        assert_eq!(resp.quality.as_deref(), Some(quality::ANYTIME));
        assert!(resp.schedule_length.unwrap() <= 28, "2 x optimal bound");
    }
}

//! The `algorithm: "auto"` portfolio: cheap instance features, a deadline
//! band, and the plan that resolves both into a concrete algorithm.
//!
//! `auto` is a *service-level* contract: "give me the best schedule you can
//! justify inside my deadline".  The portfolio reads a handful of O(V + E)
//! features off the instance (node count, CCR, level structure, topology
//! class), predicts very roughly how long a seeded exact search would take,
//! and sorts the request into one of three deadline bands:
//!
//! * **Generous** (no deadline, or ≥ 4× the prediction) — run a seeded
//!   exact search ([`PlanMode::AutoExact`]); the answer is provably optimal.
//! * **Tight** (below the prediction, including 0 ms) — run weighted A\*
//!   with a feature-calibrated weight ([`PlanMode::AutoAnytime`]); the
//!   answer is the best incumbent the budget allowed, never infeasible.
//! * **Mid** (in between) — a staged race ([`PlanMode::AutoRace`]): a short
//!   weighted-A\* leg secures a good feasible answer, then the remaining
//!   budget warm-starts an exact search from it (and from the cache's
//!   nearest structural match, when one validates).
//!
//! The resolved plan — never the literal string `"auto"` — is what the
//! cache and the in-flight coalescer key on, so a tight heuristic answer
//! can never be served to a generous request.  The prediction constants
//! below were fitted against the offline corpus run checked in at
//! `results/BENCH_auto.json` (see `crates/bench/src/bin/bench_auto.rs`).

use std::collections::VecDeque;

use optsched_procnet::Topology;

use crate::protocol::{plan, Instance, Request};
use crate::service::ServiceConfig;

/// Cheap structural features of an instance, the portfolio's entire input.
///
/// Everything here is O(V + E) to compute — the point is to *route* the
/// request, not to solve it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// Task count `v`.
    pub nodes: usize,
    /// Precedence-edge count.
    pub edges: usize,
    /// Processor count.
    pub procs: usize,
    /// Communication-to-computation ratio of the graph.
    pub ccr: f64,
    /// Whether the target network is fully connected (anything else makes
    /// the cost model's data-ready times, and so the search, lumpier).
    pub fully_connected: bool,
    /// Number of precedence levels (longest path in hops, plus one).
    pub levels: usize,
    /// Largest number of tasks on one level — the width that drives the
    /// branching factor of the search.
    pub max_level_width: usize,
}

impl InstanceFeatures {
    /// Extracts the features from an instance.
    pub fn of(instance: &Instance) -> InstanceFeatures {
        let graph = &instance.graph;
        let n = graph.num_nodes();
        // Hop-depth layering by a Kahn walk: depth(entry) = 0, depth(v) =
        // 1 + max over predecessors.
        let mut indeg = vec![0usize; n];
        for u in graph.node_ids() {
            for &(v, _) in graph.successors(u) {
                indeg[v.index()] += 1;
            }
        }
        let mut depth = vec![0usize; n];
        let mut queue: VecDeque<_> = graph.entry_nodes().into_iter().collect();
        while let Some(u) = queue.pop_front() {
            for &(v, _) in graph.successors(u) {
                depth[v.index()] = depth[v.index()].max(depth[u.index()] + 1);
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        let levels = depth.iter().max().map_or(0, |d| d + 1);
        let mut widths = vec![0usize; levels];
        for &d in &depth {
            widths[d] += 1;
        }
        InstanceFeatures {
            nodes: n,
            edges: graph.num_edges(),
            procs: instance.network.num_procs(),
            ccr: graph.ccr(),
            fully_connected: matches!(instance.network.topology(), Some(Topology::FullyConnected)),
            levels,
            max_level_width: widths.iter().copied().max().unwrap_or(0),
        }
    }

    /// A rough wall-clock prediction (ms, ≥ 1) for a *seeded exact* search
    /// of this instance — the yardstick the deadline is banded against.
    ///
    /// The shape is a calibrated guess, not a model: exact search cost is
    /// dominated by an exponential in the node count past the trivial sizes,
    /// inflated by communication weight (CCR), by wide levels (branching)
    /// and by non-fully-connected targets (lumpier data-ready times).
    /// High-CCR instances grow *faster per node* than the linear `ccr_factor`
    /// captures — communication weight multiplies the near-tied data-ready
    /// alternatives at every branching level — so past the CCR crossover the
    /// prediction also compounds a per-level tail factor over the levels
    /// that actually branch (bounded by the level width).  The constants
    /// were sanity-checked against `results/BENCH_auto.json`: corpus cells
    /// land within a factor of a few of the measurement in both directions
    /// (the old linear-only shape under-predicted the wide high-CCR tail by
    /// ~20×).  Banding tolerates the remaining spread — the generous band
    /// starts at 4× the prediction, and a mis-banded request still gets a
    /// feasible (race or anytime) answer, never an infeasible one.
    pub fn predicted_exact_ms(&self) -> u64 {
        let extra_nodes = (self.nodes as f64 - 6.0).max(0.0);
        let base = 0.05 * 6f64.powf(extra_nodes);
        let ccr_factor = 1.0 + 0.25 * self.ccr.min(8.0);
        let tail_factor = if self.ccr >= 2.0 {
            // Compound over the branching levels: narrow graphs (small
            // max_level_width) have few near-tied alternatives per level and
            // stay close to the linear shape; wide ones balloon.
            let tail_steps = extra_nodes.min(self.max_level_width.saturating_sub(2) as f64);
            (1.0 + 0.1 * (self.ccr - 2.0).min(8.0)).powf(tail_steps)
        } else {
            1.0
        };
        let width_factor = 1.0 + 0.15 * self.max_level_width.saturating_sub(2) as f64;
        let topo_factor = if self.fully_connected { 1.0 } else { 1.3 };
        (base * ccr_factor * tail_factor * width_factor * topo_factor).ceil().max(1.0) as u64
    }

    /// The exact algorithm the portfolio runs when the deadline affords one.
    ///
    /// Chen & Yu's depth-first branch-and-bound holds only the current path,
    /// which on communication-heavy instances (high CCR, where the A\*
    /// frontier balloons with near-tied data-ready alternatives) makes it
    /// the cheaper prover; computation-dominated instances stay with A\*'s
    /// best-first order.  The crossover matches the corpus run in
    /// `results/BENCH_auto.json`.
    pub fn exact_algorithm(&self) -> &'static str {
        if self.ccr >= 2.0 {
            "chenyu"
        } else {
            "astar"
        }
    }

    /// The weighted-A\* weight for the tight band, starting from the
    /// service's configured deadline weight.
    ///
    /// Larger instances need a greedier search to reach *any* complete
    /// schedule inside a tight budget, so past 10 nodes the weight is raised
    /// to at least 2.0.  At or below 10 nodes the base weight is returned
    /// unchanged — deliberately, so `auto` in the tight band is bit-identical
    /// to a plain `wastar` request on small instances.
    pub fn calibrated_weight(&self, base: f64) -> f64 {
        if self.nodes > 10 {
            base.max(2.0)
        } else {
            base
        }
    }
}

/// Where a request's deadline falls relative to the predicted exact cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineBand {
    /// No deadline, or at least [`GENEROUS_FACTOR`] × the prediction.
    Generous,
    /// Between the prediction and [`GENEROUS_FACTOR`] × it.
    Mid,
    /// Below the prediction (0 ms is always tight, since predictions are
    /// ≥ 1 ms).
    Tight,
}

/// A deadline at least this many times the predicted exact cost counts as
/// generous: the exact search gets the whole budget.
pub const GENEROUS_FACTOR: u64 = 4;

impl DeadlineBand {
    /// Bands `deadline_ms` against `predicted_ms` (which is ≥ 1).
    pub fn of(deadline_ms: Option<u64>, predicted_ms: u64) -> DeadlineBand {
        match deadline_ms {
            None => DeadlineBand::Generous,
            Some(d) if d >= predicted_ms.saturating_mul(GENEROUS_FACTOR) => DeadlineBand::Generous,
            Some(d) if d >= predicted_ms => DeadlineBand::Mid,
            Some(_) => DeadlineBand::Tight,
        }
    }
}

/// How a request's algorithm was resolved — the discriminant that joins the
/// cache/coalescing identity so plan bands never alias each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PlanMode {
    /// The request named its algorithm (or took the non-`auto` default).
    Direct = 0,
    /// `auto`, generous band: seeded exact search.
    AutoExact = 1,
    /// `auto`, tight band: calibrated weighted A\*.
    AutoAnytime = 2,
    /// `auto`, mid band: staged race (weighted-A\* leg, then warm-started
    /// exact).
    AutoRace = 3,
}

impl PlanMode {
    /// The identity byte of this mode (part of the coalescing key).
    pub fn band_byte(self) -> u8 {
        self as u8
    }

    /// The response's `plan` tag; `None` for direct requests.
    pub fn plan_tag(self) -> Option<&'static str> {
        match self {
            PlanMode::Direct => None,
            PlanMode::AutoExact => Some(plan::AUTO_EXACT),
            PlanMode::AutoAnytime => Some(plan::AUTO_ANYTIME),
            PlanMode::AutoRace => Some(plan::AUTO_RACED),
        }
    }
}

/// A fully resolved request plan: the concrete algorithm plus the validated
/// parameters — everything identity-relevant, with `"auto"` already gone.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPlan {
    /// Registry name of the algorithm to run (for [`PlanMode::AutoRace`],
    /// the *exact* algorithm of the second leg — what the response reports).
    pub algorithm: String,
    /// How the algorithm was chosen.
    pub mode: PlanMode,
    /// Validated ε (explicit or the service default).
    pub epsilon: f64,
    /// Validated weighted-A\* weight; for the auto anytime/race bands this
    /// is already feature-calibrated.
    pub weight: f64,
    /// Quality-relevant parameter bits for the cache identity (ε bits for
    /// `aeps`, `w` bits for `wastar`, 0 otherwise — exact auto bands use 0
    /// so they intern with direct exact results).
    pub param_bits: u64,
}

/// Resolves a request into its concrete plan, validating ε and the weight
/// *before* anything keys on them (the runtime coalesces on this resolution,
/// so an invalid parameter must fail here, not after a search was shared).
pub fn resolve(req: &Request, config: &ServiceConfig) -> Result<ResolvedPlan, String> {
    let epsilon = req.epsilon.unwrap_or(config.epsilon);
    let weight = req.weight.unwrap_or(config.deadline_weight);
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(format!("epsilon must be a non-negative number, got {epsilon}"));
    }
    if !weight.is_finite() || weight < 1.0 {
        return Err(format!("weight must be a finite number >= 1, got {weight}"));
    }

    let named = match &req.algorithm {
        Some(a) => a.as_str(),
        None if req.deadline_ms.is_some() => "wastar",
        None => "astar",
    };
    if named != "auto" {
        let param_bits = match named {
            "aeps" => epsilon.to_bits(),
            "wastar" => weight.to_bits(),
            _ => 0,
        };
        return Ok(ResolvedPlan {
            algorithm: named.to_string(),
            mode: PlanMode::Direct,
            epsilon,
            weight,
            param_bits,
        });
    }

    let features = InstanceFeatures::of(&req.instance);
    let predicted = features.predicted_exact_ms();
    match DeadlineBand::of(req.deadline_ms, predicted) {
        DeadlineBand::Generous => Ok(ResolvedPlan {
            algorithm: features.exact_algorithm().to_string(),
            mode: PlanMode::AutoExact,
            epsilon,
            weight,
            param_bits: 0,
        }),
        DeadlineBand::Tight => {
            let w = features.calibrated_weight(weight);
            Ok(ResolvedPlan {
                algorithm: "wastar".to_string(),
                mode: PlanMode::AutoAnytime,
                epsilon,
                weight: w,
                param_bits: w.to_bits(),
            })
        }
        DeadlineBand::Mid => {
            let w = features.calibrated_weight(weight);
            Ok(ResolvedPlan {
                algorithm: features.exact_algorithm().to_string(),
                mode: PlanMode::AutoRace,
                epsilon,
                weight: w,
                param_bits: 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, GraphBuilder};

    fn example_instance() -> Instance {
        Instance::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn features_capture_the_level_structure() {
        // The paper example: 6 nodes, entry n1, hop levels of widths
        // 1/3/1/1 (n1; n2 n3 n4; n5; n6).
        let f = InstanceFeatures::of(&example_instance());
        assert_eq!(f.nodes, 6);
        assert_eq!(f.procs, 3);
        assert_eq!(f.levels, 4);
        assert_eq!(f.max_level_width, 3);
        assert!(!f.fully_connected, "a ring is not fully connected");
        assert!(f.ccr > 0.0);

        let chain = {
            let mut b = GraphBuilder::new();
            let n0 = b.add_node(2);
            let n1 = b.add_node(2);
            let n2 = b.add_node(2);
            b.add_edge(n0, n1, 1).unwrap();
            b.add_edge(n1, n2, 1).unwrap();
            Instance::new(b.build().unwrap(), ProcNetwork::fully_connected(2))
        };
        let cf = InstanceFeatures::of(&chain);
        assert_eq!((cf.levels, cf.max_level_width), (3, 1));
        assert!(cf.fully_connected);
    }

    #[test]
    fn banding_is_monotone_in_the_deadline() {
        let f = InstanceFeatures::of(&example_instance());
        let p = f.predicted_exact_ms();
        assert!(p >= 1);
        assert_eq!(DeadlineBand::of(None, p), DeadlineBand::Generous);
        assert_eq!(DeadlineBand::of(Some(p * GENEROUS_FACTOR), p), DeadlineBand::Generous);
        assert_eq!(DeadlineBand::of(Some(p), p), DeadlineBand::Mid);
        assert_eq!(DeadlineBand::of(Some(0), p), DeadlineBand::Tight, "0 ms is always tight");
    }

    #[test]
    fn auto_resolves_per_band_and_never_keeps_the_literal() {
        let config = ServiceConfig::default();
        let mut req = Request::new(example_instance());
        req.algorithm = Some("auto".to_string());

        let generous = resolve(&req, &config).unwrap();
        assert_eq!(generous.mode, PlanMode::AutoExact);
        assert_ne!(generous.algorithm, "auto");
        assert_eq!(generous.param_bits, 0, "exact auto interns with direct exact entries");

        req.deadline_ms = Some(0);
        let tight = resolve(&req, &config).unwrap();
        assert_eq!(tight.mode, PlanMode::AutoAnytime);
        assert_eq!(tight.algorithm, "wastar");
        assert_eq!(tight.param_bits, tight.weight.to_bits());

        let p = InstanceFeatures::of(&req.instance).predicted_exact_ms();
        req.deadline_ms = Some(p.saturating_mul(2));
        let mid = resolve(&req, &config).unwrap();
        assert_eq!(mid.mode, PlanMode::AutoRace);
        assert_ne!(mid.algorithm, "auto");
    }

    /// On small instances (≤ 10 nodes) the calibrated weight equals the
    /// base weight, so auto-tight is bit-identical to plain `wastar` — the
    /// property the service's dominance test relies on.
    #[test]
    fn small_instances_keep_the_base_weight() {
        let f = InstanceFeatures::of(&example_instance());
        assert_eq!(f.calibrated_weight(1.5), 1.5);
        let big = InstanceFeatures { nodes: 24, ..f };
        assert_eq!(big.calibrated_weight(1.5), 2.0);
        assert_eq!(big.calibrated_weight(3.0), 3.0, "a larger explicit weight is kept");
    }

    #[test]
    fn invalid_parameters_fail_at_resolution() {
        let config = ServiceConfig::default();
        let mut req = Request::new(example_instance());
        req.epsilon = Some(-0.5);
        assert!(resolve(&req, &config).unwrap_err().contains("epsilon"));
        let mut req = Request::new(example_instance());
        req.weight = Some(0.2);
        assert!(resolve(&req, &config).unwrap_err().contains("weight"));
    }

    #[test]
    fn direct_requests_pass_through_untouched() {
        let config = ServiceConfig::default();
        let mut req = Request::new(example_instance());
        req.algorithm = Some("aeps".to_string());
        req.epsilon = Some(0.5);
        let plan = resolve(&req, &config).unwrap();
        assert_eq!(plan.mode, PlanMode::Direct);
        assert_eq!(plan.algorithm, "aeps");
        assert_eq!(plan.param_bits, 0.5f64.to_bits());
        assert!(plan.mode.plan_tag().is_none());
    }
}

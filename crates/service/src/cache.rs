//! The memoizing result cache: identical instances are solved once.
//!
//! Same lock-striping idiom as the parallel scheduler's sharded CLOSED table
//! (`crates/parallel/src/closed.rs`): the canonical instance signature picks
//! one of `N` independently locked shards, so concurrent workers answering
//! different instances almost never contend, and per-shard hit/miss counters
//! make the cache's effect observable.
//!
//! Entries are keyed by the *canonical form* of the instance (not just its
//! 64-bit signature) plus the algorithm and its quality-relevant parameter
//! (ε for `aeps`, `w` for `wastar`), compared on lookup — a signature
//! collision can therefore never serve the wrong schedule.  Only results
//! that carry their full guarantee (a completed run: `optimal`, or the
//! `anytime` completion of a bounded-suboptimal algorithm) are inserted;
//! deadline-truncated answers are not memoized, so a later unconstrained
//! request for the same instance still gets the real search.
//!
//! The cache is *bounded* two ways:
//!
//! * **LRU capacity** — each shard holds at most a configurable number of
//!   entries (see [`ResultCache::bounded`]); inserting into a full shard
//!   evicts the entry that was *used* (looked up or re-inserted) least
//!   recently, per a shard-local recency clock.  Eviction scans the shard
//!   (O(capacity)), which at the default 1024-entry shards is noise next to
//!   a single search; what matters is the policy — a hot entry is never the
//!   one dropped, which the old insertion-order eviction could not promise.
//! * **`max_age` TTL** — an optional time-to-live (see
//!   [`ResultCache::with_max_age`]).  Expiry is *lazy*: an entry older than
//!   `max_age` is removed by the lookup that finds it (counted as a miss
//!   plus an expiry, never served), and inserts purge expired entries
//!   before falling back to LRU eviction.  `Duration::ZERO` means nothing
//!   is ever served back — handy for tests and for running the service
//!   effectively cache-less.
//!
//! Evictions and expiries are counted and reported next to hits and misses.
//!
//! In front of each shard's mutex sits a write-once **atomic fingerprint
//! filter** (the atomic-slot idiom of the parallel CLOSED table's lock-free
//! backend, reduced to membership): a lookup whose key fingerprint was never
//! published returns its miss without locking the shard or cloning the
//! canonical instance — the common case for a service stream of fresh
//! instances.  Filter fast misses are counted as `filter_skips` (a subset of
//! misses).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::signature::CanonicalInstance;

/// Cache key: the interned instance plus the algorithm identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    canon: CanonicalInstance,
    algorithm: String,
    /// Quality-relevant parameter bits (ε or `w` as `f64::to_bits`; 0 for
    /// parameterless algorithms).
    param_bits: u64,
}

/// A memoized result: everything needed to answer a repeated instance
/// without re-search.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The schedule served for this instance.
    pub schedule: Schedule,
    /// Its makespan.
    pub schedule_length: Cost,
    /// The quality tag the original response carried.
    pub quality: String,
    /// The algorithm that produced it.
    pub algorithm: String,
    /// States expanded by the run that produced this result, so a cache hit
    /// can report the original run's provenance instead of zeros.
    pub expanded: u64,
    /// Peak live search records of the producing run.
    pub peak_live_records: u64,
}

/// One stored entry: the result plus its recency stamp (LRU) and insertion
/// time (TTL).
struct Entry {
    /// Shard-local recency clock value of the last use (lookup hit or
    /// insert); the LRU victim is the minimum.
    stamp: u64,
    /// When the entry was (re-)inserted; age beyond `max_age` expires it.
    inserted: Instant,
    result: CachedResult,
}

/// The locked interior of one shard: the entries plus the shard's
/// monotonically increasing recency clock.
#[derive(Default)]
struct ShardMap {
    entries: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// Slots probed around a fingerprint's home position before the filter gives
/// up and answers "maybe present".
const FILTER_PROBE_WINDOW: usize = 16;

/// A write-once atomic fingerprint index in front of a shard's mutex: the
/// same atomic-slot idiom as the parallel CLOSED table's lock-free backend,
/// reduced to a membership filter.  `maybe_contains` returning `false` is
/// authoritative (no entry with that fingerprint was ever published), so a
/// cold lookup — the common case for a service meeting fresh instances —
/// never takes the shard lock and never clones the canonical instance into a
/// key.  Slots are never cleared: fingerprints of evicted or expired entries
/// linger as false positives, which only cost the locked slow path, never a
/// wrong answer.
struct FpFilter {
    slots: Box<[AtomicU64]>,
    mask: usize,
    /// Set when a publish finds no free slot in its probe window; from then
    /// on the filter conservatively answers "maybe present" for everything.
    saturated: AtomicBool,
}

impl FpFilter {
    fn new(shard_capacity: usize) -> FpFilter {
        // 2x the entry cap keeps the load factor low enough that saturation
        // needs sustained churn well past capacity.
        let n = (shard_capacity * 2).next_power_of_two().max(64);
        FpFilter {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mask: n - 1,
            saturated: AtomicBool::new(false),
        }
    }

    /// False only if no entry with fingerprint `fp` was ever published.
    fn maybe_contains(&self, fp: u64) -> bool {
        if self.saturated.load(Ordering::Relaxed) {
            return true;
        }
        let mut idx = (fp as usize) & self.mask;
        for _ in 0..FILTER_PROBE_WINDOW {
            match self.slots[idx].load(Ordering::Acquire) {
                0 => return false,
                s if s == fp => return true,
                _ => idx = (idx + 1) & self.mask,
            }
        }
        true
    }

    /// Publishes `fp` (idempotent); saturates the filter if the probe window
    /// around its home slot is full.
    fn publish(&self, fp: u64) {
        let mut idx = (fp as usize) & self.mask;
        for _ in 0..FILTER_PROBE_WINDOW {
            match self.slots[idx].compare_exchange(0, fp, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(existing) if existing == fp => return,
                Err(_) => idx = (idx + 1) & self.mask,
            }
        }
        self.saturated.store(true, Ordering::Relaxed);
    }
}

struct Shard {
    map: Mutex<ShardMap>,
    filter: FpFilter,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    filter_skips: AtomicU64,
}

impl Shard {
    fn new(shard_capacity: usize) -> Shard {
        Shard {
            map: Mutex::default(),
            filter: FpFilter::new(shard_capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            filter_skips: AtomicU64::new(0),
        }
    }
}

/// Fingerprint of a cache key, computed without materialising the key (no
/// canonical-instance clone, no `String`).  `| 1` keeps it nonzero so 0 can
/// mean "empty slot" in the filter.
fn key_fingerprint(canon: &CanonicalInstance, algorithm: &str, param_bits: u64) -> u64 {
    let mut h = DefaultHasher::new();
    canon.hash(&mut h);
    algorithm.hash(&mut h);
    param_bits.hash(&mut h);
    h.finish() | 1
}

/// Aggregate counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of shards.
    pub num_shards: usize,
    /// Memoized results currently stored.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and usually led to a search + insert).  An
    /// expired entry counts as a miss *and* an expiry.
    pub misses: u64,
    /// Least-recently-used entries dropped because their shard hit its
    /// capacity.
    pub evictions: u64,
    /// Entries dropped because they outlived `max_age` (lazily, on the
    /// lookup or insert that found them stale).
    pub expired: u64,
    /// The subset of [`misses`](CacheStats::misses) answered by the lock-free
    /// fingerprint filter without taking a shard lock or building a key.
    pub filter_skips: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, lock-striped memoizing result cache with per-shard LRU
/// eviction and an optional `max_age` TTL.
pub struct ResultCache {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// Largest number of entries one shard retains (>= 1).
    shard_capacity: usize,
    /// Optional time-to-live; `None` disables expiry.
    max_age: Option<Duration>,
}

/// Default per-shard entry cap of [`ResultCache::new`]: with the service's
/// default 8 shards this bounds the cache at 8192 memoized schedules.
pub const DEFAULT_SHARD_CAPACITY: usize = 1024;

/// Smallest [`CanonicalInstance::similarity`] score a cached entry needs for
/// [`ResultCache::nearest_match`] to offer it as a warm-start donor.
pub const NEAR_MATCH_MIN_SIMILARITY: f64 = 0.75;

/// Largest number of entries one [`ResultCache::nearest_match`] probe will
/// visit across all shards, bounding the probe's cost on a hot cache.
pub const NEAR_MATCH_SCAN_LIMIT: usize = 512;

impl ResultCache {
    /// A cache with `num_shards` lock stripes (rounded up to a power of two,
    /// minimum 1), the [`DEFAULT_SHARD_CAPACITY`] per-shard entry cap and no
    /// TTL.
    pub fn new(num_shards: usize) -> ResultCache {
        ResultCache::bounded(num_shards, DEFAULT_SHARD_CAPACITY)
    }

    /// A cache retaining at most `shard_capacity` entries per shard
    /// (minimum 1); inserting into a full shard evicts its least-recently
    /// used entry.  No TTL.
    pub fn bounded(num_shards: usize, shard_capacity: usize) -> ResultCache {
        ResultCache::with_max_age(num_shards, shard_capacity, None)
    }

    /// A bounded cache whose entries additionally expire `max_age` after
    /// insertion (lazily, on the lookup that finds them stale).  An entry is
    /// expired once its age is ≥ `max_age`, so `Duration::ZERO` serves
    /// nothing back.
    pub fn with_max_age(
        num_shards: usize,
        shard_capacity: usize,
        max_age: Option<Duration>,
    ) -> ResultCache {
        let n = num_shards.max(1).next_power_of_two();
        let shard_capacity = shard_capacity.max(1);
        ResultCache {
            shards: (0..n).map(|_| Shard::new(shard_capacity)).collect(),
            mask: (n - 1) as u64,
            shard_capacity,
            max_age,
        }
    }

    fn shard(&self, signature: u64) -> &Shard {
        &self.shards[(signature & self.mask) as usize]
    }

    /// Looks a memoized result up, counting the hit/miss.  A hit refreshes
    /// the entry's LRU recency; an entry past `max_age` is removed, counted
    /// as expired, and reported as a miss — a stale result is never served.
    pub fn lookup(
        &self,
        signature: u64,
        canon: &CanonicalInstance,
        algorithm: &str,
        param_bits: u64,
    ) -> Option<CachedResult> {
        let shard = self.shard(signature);
        // Lock-free fast path: a fingerprint the filter has never seen
        // cannot be in the map (a racing insert of the same key publishes
        // its fingerprint before this lookup could have found the entry
        // under the lock anyway — the same benign solve-twice race the
        // locked path already tolerates).
        if !shard.filter.maybe_contains(key_fingerprint(canon, algorithm, param_bits)) {
            shard.filter_skips.fetch_add(1, Ordering::Relaxed);
            shard.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let key = CacheKey {
            canon: canon.clone(),
            algorithm: algorithm.to_string(),
            param_bits,
        };
        let mut m = shard.map.lock();
        let stamp = m.clock;
        m.clock += 1;
        let found = match m.entries.get_mut(&key) {
            Some(entry) if self.max_age.is_some_and(|ttl| entry.inserted.elapsed() >= ttl) => {
                m.entries.remove(&key);
                shard.expired.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(entry) => {
                entry.stamp = stamp;
                Some(entry.result.clone())
            }
            None => None,
        };
        drop(m);
        match &found {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a result.  Last writer wins (identical keys produce
    /// equivalent results, so a benign race between two workers solving the
    /// same fresh instance concurrently is harmless); re-inserting an
    /// existing key refreshes both its recency and its age.  When the insert
    /// overflows the shard's capacity, expired entries are purged first and
    /// the least-recently-used entry is evicted if the shard is still over.
    pub fn insert(
        &self,
        signature: u64,
        canon: &CanonicalInstance,
        algorithm: &str,
        param_bits: u64,
        result: CachedResult,
    ) {
        let key = CacheKey {
            canon: canon.clone(),
            algorithm: algorithm.to_string(),
            param_bits,
        };
        let shard = self.shard(signature);
        // Publish the fingerprint before the entry becomes visible so the
        // lock-free fast path can never fast-miss a key that is already in
        // the map.
        shard.filter.publish(key_fingerprint(canon, algorithm, param_bits));
        let mut m = shard.map.lock();
        let stamp = m.clock;
        m.clock += 1;
        m.entries.insert(key, Entry { stamp, inserted: Instant::now(), result });
        if m.entries.len() > self.shard_capacity {
            // A full shard sheds dead weight before live weight: purge
            // everything past its TTL, then fall back to the LRU victim.
            if let Some(ttl) = self.max_age {
                let before = m.entries.len();
                m.entries.retain(|_, e| e.stamp == stamp || e.inserted.elapsed() < ttl);
                let purged = (before - m.entries.len()) as u64;
                shard.expired.fetch_add(purged, Ordering::Relaxed);
            }
            while m.entries.len() > self.shard_capacity {
                let oldest = m
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| k.clone())
                    .expect("an over-capacity shard is not empty");
                m.entries.remove(&oldest);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Finds the memoized result whose instance is structurally *nearest* to
    /// `canon` — a warm-start donor for `algorithm: "auto"`, not an answer.
    ///
    /// The probe scans the signature's home shard first (same instance,
    /// different algorithm/params, lands there), then the remaining shards,
    /// visiting at most [`NEAR_MATCH_SCAN_LIMIT`] entries in total.  Entries
    /// past `max_age` and entries below [`NEAR_MATCH_MIN_SIMILARITY`] are
    /// skipped.  The scan deliberately leaves all cache state alone: no
    /// hit/miss counters, no LRU refresh, no expiry removal — a probe must
    /// not perturb what the cache would otherwise do.
    ///
    /// The returned schedule comes from a *different* (or differently
    /// parameterised) problem; the caller **must** validate it against its
    /// own instance before adopting it as an incumbent.
    pub fn nearest_match(&self, signature: u64, canon: &CanonicalInstance) -> Option<CachedResult> {
        let home = (signature & self.mask) as usize;
        let mut best: Option<(f64, CachedResult)> = None;
        let mut scanned = 0usize;
        for offset in 0..self.shards.len() {
            if scanned >= NEAR_MATCH_SCAN_LIMIT {
                break;
            }
            let shard = &self.shards[(home + offset) & self.mask as usize];
            let m = shard.map.lock();
            for (key, entry) in m.entries.iter() {
                if scanned >= NEAR_MATCH_SCAN_LIMIT {
                    break;
                }
                scanned += 1;
                if self.max_age.is_some_and(|ttl| entry.inserted.elapsed() >= ttl) {
                    continue;
                }
                let score = canon.similarity(&key.canon);
                if score < NEAR_MATCH_MIN_SIMILARITY {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((best_score, _)) => score > *best_score,
                };
                if better {
                    best = Some((score, entry.result.clone()));
                }
            }
        }
        best.map(|(_, result)| result)
    }

    /// Counter snapshot across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats { num_shards: self.shards.len(), ..Default::default() };
        for shard in &self.shards {
            s.entries += shard.map.lock().entries.len();
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.evictions += shard.evictions.load(Ordering::Relaxed);
            s.expired += shard.expired.load(Ordering::Relaxed);
            s.filter_skips += shard.filter_skips.load(Ordering::Relaxed);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Instance;
    use crate::signature::canonical_signature;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn canon() -> (u64, CanonicalInstance) {
        let inst = Instance::new(paper_example_dag(), ProcNetwork::ring(3));
        (canonical_signature(&inst), CanonicalInstance::of(&inst))
    }

    fn dummy_result() -> CachedResult {
        CachedResult {
            schedule: Schedule::new(1, 1),
            schedule_length: 14,
            quality: "optimal".to_string(),
            algorithm: "astar".to_string(),
            expanded: 37,
            peak_live_records: 12,
        }
    }

    #[test]
    fn lookup_insert_lookup_counts_hits_and_misses() {
        let cache = ResultCache::new(8);
        let (sig, canon) = canon();
        assert!(cache.lookup(sig, &canon, "astar", 0).is_none());
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        let hit = cache.lookup(sig, &canon, "astar", 0).expect("inserted");
        assert_eq!(hit.schedule_length, 14);

        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.expired, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    /// The algorithm and its parameter are part of the identity: an `aeps`
    /// answer must not be served for an `astar` request, nor an ε = 0.5
    /// answer for an ε = 0.2 request.
    #[test]
    fn algorithm_and_params_separate_entries() {
        let cache = ResultCache::new(2);
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "aeps", 0.5f64.to_bits(), dummy_result());
        assert!(cache.lookup(sig, &canon, "astar", 0).is_none());
        assert!(cache.lookup(sig, &canon, "aeps", 0.2f64.to_bits()).is_none());
        assert!(cache.lookup(sig, &canon, "aeps", 0.5f64.to_bits()).is_some());
    }

    /// A forged signature pointing at the right shard still cannot alias a
    /// different canonical instance: lookup compares the canonical form.
    #[test]
    fn signature_collisions_cannot_serve_the_wrong_instance() {
        let cache = ResultCache::new(1); // one shard: every signature collides
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        let other = Instance::new(paper_example_dag(), ProcNetwork::ring(4));
        let other_canon = CanonicalInstance::of(&other);
        assert!(cache.lookup(sig, &other_canon, "astar", 0).is_none());
    }

    /// The cache is bounded: a shard at capacity evicts its least-recently
    /// *used* entry on the next insert, counts the eviction, and both
    /// lookups and re-inserts refresh recency.
    #[test]
    fn full_shard_evicts_the_least_recently_used_entry() {
        let cache = ResultCache::bounded(1, 2); // one shard, two entries
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "a", 0, dummy_result());
        cache.insert(sig, &canon, "b", 0, dummy_result());
        // Re-inserting "a" refreshes it in place, not as a third entry.
        cache.insert(sig, &canon, "a", 0, dummy_result());
        assert_eq!(cache.stats().evictions, 0);
        // Touching "b" by lookup makes *"a"* the LRU victim — the insertion
        // order (a before b) no longer decides.
        assert!(cache.lookup(sig, &canon, "b", 0).is_some());
        cache.insert(sig, &canon, "c", 0, dummy_result());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(sig, &canon, "a", 0).is_none(), "LRU entry evicted");
        assert!(cache.lookup(sig, &canon, "b", 0).is_some(), "recently used entry kept");
        assert!(cache.lookup(sig, &canon, "c", 0).is_some());
    }

    /// A zero capacity is clamped to one entry per shard — the cache
    /// degrades to remembering only the most recent result, never to
    /// dropping inserts on the floor.
    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let cache = ResultCache::bounded(1, 0);
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "a", 0, dummy_result());
        cache.insert(sig, &canon, "b", 0, dummy_result());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(sig, &canon, "b", 0).is_some());
    }

    /// `max_age = ZERO`: every entry is already stale at its first lookup —
    /// it is removed, counted expired + miss, and never served.
    #[test]
    fn zero_max_age_serves_nothing() {
        let cache = ResultCache::with_max_age(1, 8, Some(Duration::ZERO));
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        assert!(cache.lookup(sig, &canon, "astar", 0).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "expired entries are removed by the lookup");
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
    }

    /// A generous `max_age` behaves exactly like no TTL at all.
    #[test]
    fn long_max_age_still_serves() {
        let cache = ResultCache::with_max_age(1, 8, Some(Duration::from_secs(3600)));
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        assert!(cache.lookup(sig, &canon, "astar", 0).is_some());
        assert_eq!(cache.stats().expired, 0);
    }

    /// An over-capacity insert purges expired entries before evicting live
    /// ones: with everything stale, the purge (not LRU eviction) makes room.
    #[test]
    fn insert_purges_expired_entries_before_evicting() {
        let cache = ResultCache::with_max_age(1, 2, Some(Duration::ZERO));
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "a", 0, dummy_result());
        cache.insert(sig, &canon, "b", 0, dummy_result());
        cache.insert(sig, &canon, "c", 0, dummy_result());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "stale entries expire instead of evicting");
        assert!(stats.expired >= 2, "the earlier entries were purged, got {}", stats.expired);
        assert_eq!(stats.entries, 1, "only the just-inserted entry survives");
    }

    /// A cold lookup is answered by the fingerprint filter without taking
    /// the shard lock; once the key is inserted, the filter never hides it.
    #[test]
    fn cold_lookups_skip_the_lock_via_the_fingerprint_filter() {
        let cache = ResultCache::new(4);
        let (sig, canon) = canon();
        assert!(cache.lookup(sig, &canon, "astar", 0).is_none());
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.filter_skips, 1, "cold miss answered lock-free");
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        assert!(
            cache.lookup(sig, &canon, "astar", 0).is_some(),
            "filter never hides a published entry"
        );
        assert_eq!(cache.stats().filter_skips, 1, "warm lookup takes the locked path");
    }

    /// The nearest-match probe returns a same-instance entry stored under a
    /// *different* algorithm identity (the warm-start case), refuses
    /// structurally unrelated instances, and leaves every counter and the
    /// LRU state untouched.
    #[test]
    fn nearest_match_finds_structural_neighbours_without_counting() {
        let cache = ResultCache::new(4);
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "wastar", 1.5f64.to_bits(), dummy_result());
        let before = cache.stats();

        // Same instance, cached under wastar: a perfect (1.0) neighbour.
        let found = cache.nearest_match(sig, &canon).expect("same instance is nearest");
        assert_eq!(found.schedule_length, 14);
        assert_eq!(found.algorithm, "astar", "the donor carries its own provenance");

        // A structurally unrelated instance (different processor count)
        // scores 0.0 and must not be offered.
        let other = Instance::new(paper_example_dag(), ProcNetwork::ring(4));
        let other_canon = CanonicalInstance::of(&other);
        assert!(cache.nearest_match(canonical_signature(&other), &other_canon).is_none());

        // Probes are invisible: no hits, misses, or recency changes.
        assert_eq!(cache.stats(), before);
    }

    /// A TTL-expired entry is never offered as a donor (but the probe does
    /// not remove it either — expiry stays lazy on the lookup path).
    #[test]
    fn nearest_match_skips_expired_entries() {
        let cache = ResultCache::with_max_age(1, 8, Some(Duration::ZERO));
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        assert!(cache.nearest_match(sig, &canon).is_none());
        assert_eq!(cache.stats().entries, 1, "probe leaves the stale entry in place");
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(ResultCache::new(0).stats().num_shards, 1);
        assert_eq!(ResultCache::new(3).stats().num_shards, 4);
        assert_eq!(ResultCache::new(8).stats().num_shards, 8);
    }
}

//! The memoizing result cache: identical instances are solved once.
//!
//! Same lock-striping idiom as the parallel scheduler's sharded CLOSED table
//! (`crates/parallel/src/closed.rs`): the canonical instance signature picks
//! one of `N` independently locked shards, so concurrent workers answering
//! different instances almost never contend, and per-shard hit/miss counters
//! make the cache's effect observable.
//!
//! Entries are keyed by the *canonical form* of the instance (not just its
//! 64-bit signature) plus the algorithm and its quality-relevant parameter
//! (ε for `aeps`, `w` for `wastar`), compared on lookup — a signature
//! collision can therefore never serve the wrong schedule.  Only results
//! that carry their full guarantee (a completed run: `optimal`, or the
//! `anytime` completion of a bounded-suboptimal algorithm) are inserted;
//! deadline-truncated answers are not memoized, so a later unconstrained
//! request for the same instance still gets the real search.
//!
//! The cache is *bounded*: each shard holds at most a configurable number
//! of entries (see [`ResultCache::bounded`]) and inserting into a full
//! shard evicts that shard's oldest entry first (per-shard insertion
//! sequence numbers, no global clock), so a long-running service cannot
//! grow without limit no matter how diverse its request stream is.
//! Evictions are counted and reported next to hits and misses.

use std::collections::HashMap;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use optsched_schedule::Schedule;
use optsched_taskgraph::Cost;

use crate::signature::CanonicalInstance;

/// Cache key: the interned instance plus the algorithm identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    canon: CanonicalInstance,
    algorithm: String,
    /// Quality-relevant parameter bits (ε or `w` as `f64::to_bits`; 0 for
    /// parameterless algorithms).
    param_bits: u64,
}

/// A memoized result: everything needed to answer a repeated instance
/// without re-search.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The schedule served for this instance.
    pub schedule: Schedule,
    /// Its makespan.
    pub schedule_length: Cost,
    /// The quality tag the original response carried.
    pub quality: String,
    /// The algorithm that produced it.
    pub algorithm: String,
}

/// The locked interior of one shard: the entries, each stamped with this
/// shard's monotonically increasing insertion sequence (re-inserting an
/// existing key refreshes its stamp, making it the newest again).
#[derive(Default)]
struct ShardMap {
    entries: HashMap<CacheKey, (u64, CachedResult)>,
    next_seq: u64,
}

#[derive(Default)]
struct Shard {
    map: Mutex<ShardMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Aggregate counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of shards.
    pub num_shards: usize,
    /// Memoized results currently stored.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and usually led to a search + insert).
    pub misses: u64,
    /// Oldest-first entries dropped because their shard hit its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, lock-striped memoizing result cache.
pub struct ResultCache {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
    /// Largest number of entries one shard retains (>= 1).
    shard_capacity: usize,
}

/// Default per-shard entry cap of [`ResultCache::new`]: with the service's
/// default 8 shards this bounds the cache at 8192 memoized schedules.
pub const DEFAULT_SHARD_CAPACITY: usize = 1024;

impl ResultCache {
    /// A cache with `num_shards` lock stripes (rounded up to a power of two,
    /// minimum 1) and the [`DEFAULT_SHARD_CAPACITY`] per-shard entry cap.
    pub fn new(num_shards: usize) -> ResultCache {
        ResultCache::bounded(num_shards, DEFAULT_SHARD_CAPACITY)
    }

    /// A cache retaining at most `shard_capacity` entries per shard
    /// (minimum 1); inserting into a full shard evicts its oldest entry.
    pub fn bounded(num_shards: usize, shard_capacity: usize) -> ResultCache {
        let n = num_shards.max(1).next_power_of_two();
        ResultCache {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: (n - 1) as u64,
            shard_capacity: shard_capacity.max(1),
        }
    }

    fn shard(&self, signature: u64) -> &Shard {
        &self.shards[(signature & self.mask) as usize]
    }

    /// Looks a memoized result up, counting the hit/miss.
    pub fn lookup(
        &self,
        signature: u64,
        canon: &CanonicalInstance,
        algorithm: &str,
        param_bits: u64,
    ) -> Option<CachedResult> {
        let shard = self.shard(signature);
        let key = CacheKey {
            canon: canon.clone(),
            algorithm: algorithm.to_string(),
            param_bits,
        };
        let found = shard.map.lock().entries.get(&key).map(|(_, r)| r.clone());
        match &found {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a result.  Last writer wins (identical keys produce
    /// equivalent results, so a benign race between two workers solving the
    /// same fresh instance concurrently is harmless); when the insert
    /// overflows the shard's capacity, the shard's oldest entry is evicted.
    pub fn insert(
        &self,
        signature: u64,
        canon: &CanonicalInstance,
        algorithm: &str,
        param_bits: u64,
        result: CachedResult,
    ) {
        let key = CacheKey {
            canon: canon.clone(),
            algorithm: algorithm.to_string(),
            param_bits,
        };
        let shard = self.shard(signature);
        let mut m = shard.map.lock();
        let seq = m.next_seq;
        m.next_seq += 1;
        m.entries.insert(key, (seq, result));
        if m.entries.len() > self.shard_capacity {
            let oldest = m
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("an over-capacity shard is not empty");
            m.entries.remove(&oldest);
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats { num_shards: self.shards.len(), ..Default::default() };
        for shard in &self.shards {
            s.entries += shard.map.lock().entries.len();
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.evictions += shard.evictions.load(Ordering::Relaxed);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Instance;
    use crate::signature::canonical_signature;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn canon() -> (u64, CanonicalInstance) {
        let inst = Instance::new(paper_example_dag(), ProcNetwork::ring(3));
        (canonical_signature(&inst), CanonicalInstance::of(&inst))
    }

    fn dummy_result() -> CachedResult {
        CachedResult {
            schedule: Schedule::new(1, 1),
            schedule_length: 14,
            quality: "optimal".to_string(),
            algorithm: "astar".to_string(),
        }
    }

    #[test]
    fn lookup_insert_lookup_counts_hits_and_misses() {
        let cache = ResultCache::new(8);
        let (sig, canon) = canon();
        assert!(cache.lookup(sig, &canon, "astar", 0).is_none());
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        let hit = cache.lookup(sig, &canon, "astar", 0).expect("inserted");
        assert_eq!(hit.schedule_length, 14);

        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    /// The algorithm and its parameter are part of the identity: an `aeps`
    /// answer must not be served for an `astar` request, nor an ε = 0.5
    /// answer for an ε = 0.2 request.
    #[test]
    fn algorithm_and_params_separate_entries() {
        let cache = ResultCache::new(2);
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "aeps", 0.5f64.to_bits(), dummy_result());
        assert!(cache.lookup(sig, &canon, "astar", 0).is_none());
        assert!(cache.lookup(sig, &canon, "aeps", 0.2f64.to_bits()).is_none());
        assert!(cache.lookup(sig, &canon, "aeps", 0.5f64.to_bits()).is_some());
    }

    /// A forged signature pointing at the right shard still cannot alias a
    /// different canonical instance: lookup compares the canonical form.
    #[test]
    fn signature_collisions_cannot_serve_the_wrong_instance() {
        let cache = ResultCache::new(1); // one shard: every signature collides
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "astar", 0, dummy_result());
        let other = Instance::new(paper_example_dag(), ProcNetwork::ring(4));
        let other_canon = CanonicalInstance::of(&other);
        assert!(cache.lookup(sig, &other_canon, "astar", 0).is_none());
    }

    /// The cache is bounded: a shard at capacity evicts its oldest entry on
    /// the next insert (per-shard insertion order), counts the eviction, and
    /// re-inserting an existing key refreshes its age.
    #[test]
    fn full_shard_evicts_its_oldest_entry() {
        let cache = ResultCache::bounded(1, 2); // one shard, two entries
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "a", 0, dummy_result());
        cache.insert(sig, &canon, "b", 0, dummy_result());
        // Refreshing "a" makes it the newest entry, not a third one.
        cache.insert(sig, &canon, "a", 0, dummy_result());
        assert_eq!(cache.stats().evictions, 0);
        // A third distinct key overflows the shard: the oldest ("b") goes.
        cache.insert(sig, &canon, "c", 0, dummy_result());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(sig, &canon, "a", 0).is_some());
        assert!(cache.lookup(sig, &canon, "b", 0).is_none());
        assert!(cache.lookup(sig, &canon, "c", 0).is_some());
    }

    /// A zero capacity is clamped to one entry per shard — the cache
    /// degrades to remembering only the most recent result, never to
    /// dropping inserts on the floor.
    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let cache = ResultCache::bounded(1, 0);
        let (sig, canon) = canon();
        cache.insert(sig, &canon, "a", 0, dummy_result());
        cache.insert(sig, &canon, "b", 0, dummy_result());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(cache.lookup(sig, &canon, "b", 0).is_some());
    }

    #[test]
    fn shard_count_rounds_up_to_a_power_of_two() {
        assert_eq!(ResultCache::new(0).stats().num_shards, 1);
        assert_eq!(ResultCache::new(3).stats().num_shards, 4);
        assert_eq!(ResultCache::new(8).stats().num_shards, 8);
    }
}

//! Canonical instance interning: a topology- and label-stable identity for
//! scheduling instances.
//!
//! Two requests describe *the same* scheduling problem whenever they agree
//! on everything the cost model can observe: node weights, the weighted
//! precedence relation, processor speeds, the processor interconnect and the
//! communication model.  Node/processor labels, edge insertion order and
//! JSON field order are presentation details — they must not defeat the
//! service's memoizing cache.
//!
//! [`CanonicalInstance`] is that observable content in a normal form
//! (edges and links sorted), and [`canonical_signature`] is its stable
//! 64-bit FNV-1a hash.  The cache keys shards by the hash but stores the
//! canonical form itself and compares it on lookup, so a hash collision can
//! never serve the wrong schedule — the signature is an interning
//! accelerator, not a trust anchor.

use optsched_procnet::CommModel;
use optsched_taskgraph::Cost;

use crate::protocol::Instance;

/// The scheduling-relevant content of an [`Instance`], in normal form.
///
/// Everything the searches' cost model reads is here; labels and
/// presentation order are not.  Derives `Hash`/`Eq`, so it can key a map
/// directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalInstance {
    /// Per-node computation costs, in node-id order.
    node_weights: Vec<Cost>,
    /// Weighted edges `(src, dst, comm cost)`, sorted by `(src, dst)`.
    edges: Vec<(u32, u32, Cost)>,
    /// Per-processor cycle times, in processor-id order.
    cycle_times: Vec<u64>,
    /// Undirected processor links, each once with the smaller endpoint
    /// first, sorted.
    links: Vec<(usize, usize)>,
    /// Communication model discriminant.
    hop_scaled: bool,
}

impl CanonicalInstance {
    /// Normalises `instance` into its canonical form.
    pub fn of(instance: &Instance) -> CanonicalInstance {
        let graph = &instance.graph;
        let net = &instance.network;
        let mut edges: Vec<(u32, u32, Cost)> =
            graph.edges().iter().map(|e| (e.src.0, e.dst.0, e.weight)).collect();
        edges.sort_unstable();
        CanonicalInstance {
            node_weights: graph.node_ids().map(|n| graph.weight(n)).collect(),
            edges,
            cycle_times: net.proc_ids().map(|p| net.processor(p).cycle_time).collect(),
            links: net.links(),
            hop_scaled: net.comm_model() == CommModel::HopScaled,
        }
    }

    /// A cheap structural similarity in `[0, 1]` between two canonical
    /// forms, used by the result cache's nearest-signature probe to find a
    /// warm-start candidate for `algorithm: "auto"`.
    ///
    /// Instances with different node counts or processor counts score `0.0`
    /// outright: a schedule for one cannot even be *validated* against the
    /// other.  Otherwise the score blends position-wise node-weight
    /// agreement (0.3), weighted-edge-set overlap (0.5) and network equality
    /// (0.2).  `1.0` for equal canonical forms; the caller still has to
    /// validate any schedule it adopts — similarity ranks candidates, it
    /// proves nothing.
    pub fn similarity(&self, other: &CanonicalInstance) -> f64 {
        if self.node_weights.len() != other.node_weights.len()
            || self.cycle_times.len() != other.cycle_times.len()
        {
            return 0.0;
        }
        let nodes = self.node_weights.len().max(1);
        let same_weights =
            self.node_weights.iter().zip(&other.node_weights).filter(|(a, b)| a == b).count();
        let node_score = same_weights as f64 / nodes as f64;

        // Both edge lists are sorted, so the intersection is a single merge
        // walk; score by overlap relative to the larger edge set.
        let mut common = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.edges.len() && j < other.edges.len() {
            match self.edges[i].cmp(&other.edges[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let max_edges = self.edges.len().max(other.edges.len());
        let edge_score = if max_edges == 0 { 1.0 } else { common as f64 / max_edges as f64 };

        let net_score = if self.cycle_times == other.cycle_times
            && self.links == other.links
            && self.hop_scaled == other.hop_scaled
        {
            1.0
        } else {
            0.0
        };

        0.3 * node_score + 0.5 * edge_score + 0.2 * net_score
    }

    /// The stable 64-bit signature of this canonical form.
    pub fn signature(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.node_weights.len() as u64);
        for &w in &self.node_weights {
            h.write_u64(w);
        }
        h.write_u64(self.edges.len() as u64);
        for &(s, d, w) in &self.edges {
            h.write_u64(u64::from(s));
            h.write_u64(u64::from(d));
            h.write_u64(w);
        }
        h.write_u64(self.cycle_times.len() as u64);
        for &c in &self.cycle_times {
            h.write_u64(c);
        }
        h.write_u64(self.links.len() as u64);
        for &(a, b) in &self.links {
            h.write_u64(a as u64);
            h.write_u64(b as u64);
        }
        h.write_u64(u64::from(self.hop_scaled));
        h.finish()
    }
}

/// The canonical signature of an instance: `CanonicalInstance::of(i).signature()`.
///
/// Stable across processes and releases (hand-rolled FNV-1a, not the
/// randomised std hasher), insensitive to labels, edge insertion order and
/// JSON field order.
pub fn canonical_signature(instance: &Instance) -> u64 {
    CanonicalInstance::of(instance).signature()
}

/// Minimal FNV-1a, fixed offset/prime, so signatures are reproducible
/// everywhere (the std `DefaultHasher` is per-process randomised by design).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, GraphBuilder};

    fn example() -> Instance {
        Instance::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn signature_is_deterministic_and_discriminates() {
        let a = canonical_signature(&example());
        let b = canonical_signature(&example());
        assert_eq!(a, b);
        // A different network is a different instance.
        let other = Instance::new(paper_example_dag(), ProcNetwork::ring(4));
        assert_ne!(a, canonical_signature(&other));
        // A different comm model too.
        let hop = Instance::new(
            paper_example_dag(),
            ProcNetwork::ring(3).with_comm_model(optsched_procnet::CommModel::HopScaled),
        );
        assert_ne!(a, canonical_signature(&hop));
    }

    /// Labels are presentation, not content: stripping them must not change
    /// the signature (and the canonical forms compare equal, so the cache
    /// interns the two).
    #[test]
    fn signature_is_label_stable() {
        let labelled = paper_example_dag();
        let mut unlabelled = GraphBuilder::with_capacity(labelled.num_nodes());
        for n in labelled.node_ids() {
            unlabelled.add_node(labelled.weight(n));
        }
        for e in labelled.edges() {
            unlabelled.add_edge(e.src, e.dst, e.weight).unwrap();
        }
        let a = Instance::new(labelled, ProcNetwork::ring(3));
        let b = Instance::new(unlabelled.build().unwrap(), ProcNetwork::ring(3));
        assert_ne!(a.graph, b.graph, "labels differ, so the graphs are not equal");
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
        assert_eq!(CanonicalInstance::of(&a), CanonicalInstance::of(&b));
    }

    /// Edge insertion order is presentation too.
    #[test]
    fn signature_is_edge_order_stable() {
        let build = |flip: bool| {
            let mut b = GraphBuilder::new();
            let n0 = b.add_node(2);
            let n1 = b.add_node(3);
            let n2 = b.add_node(4);
            if flip {
                b.add_edge(n0, n2, 5).unwrap();
                b.add_edge(n0, n1, 1).unwrap();
            } else {
                b.add_edge(n0, n1, 1).unwrap();
                b.add_edge(n0, n2, 5).unwrap();
            }
            Instance::new(b.build().unwrap(), ProcNetwork::fully_connected(2))
        };
        assert_eq!(canonical_signature(&build(false)), canonical_signature(&build(true)));
        assert_eq!(
            CanonicalInstance::of(&build(false)),
            CanonicalInstance::of(&build(true))
        );
    }

    /// Weight changes *are* content.
    #[test]
    fn signature_tracks_costs() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(2);
        let n1 = b.add_node(3);
        b.add_edge(n0, n1, 1).unwrap();
        let base = Instance::new(b.build().unwrap(), ProcNetwork::fully_connected(2));

        let mut b2 = GraphBuilder::new();
        let m0 = b2.add_node(2);
        let m1 = b2.add_node(3);
        b2.add_edge(m0, m1, 9).unwrap(); // different comm cost
        let heavier = Instance::new(b2.build().unwrap(), ProcNetwork::fully_connected(2));
        assert_ne!(canonical_signature(&base), canonical_signature(&heavier));

        let slow = Instance::new(
            base.graph.clone(),
            ProcNetwork::fully_connected(2).with_cycle_times(&[1, 2]),
        );
        assert_ne!(canonical_signature(&base), canonical_signature(&slow));
    }

    /// Similarity: 1.0 for identical instances, 0.0 across node-count
    /// mismatches, and something in between for a single perturbed weight.
    #[test]
    fn similarity_ranks_structural_closeness() {
        let base = CanonicalInstance::of(&example());
        assert!((base.similarity(&base) - 1.0).abs() < 1e-12);

        // Different processor count: schedules are not even transferable.
        let other_net = CanonicalInstance::of(&Instance::new(
            paper_example_dag(),
            ProcNetwork::ring(4),
        ));
        assert_eq!(base.similarity(&other_net), 0.0);

        // Same shape, one node weight nudged: high but below 1.
        let g = paper_example_dag();
        let mut b = GraphBuilder::with_capacity(g.num_nodes());
        for n in g.node_ids() {
            let w = g.weight(n);
            b.add_node(if n.0 == 0 { w + 1 } else { w });
        }
        for e in g.edges() {
            b.add_edge(e.src, e.dst, e.weight).unwrap();
        }
        let nudged = CanonicalInstance::of(&Instance::new(
            b.build().unwrap(),
            ProcNetwork::ring(3),
        ));
        let s = base.similarity(&nudged);
        assert!(s > 0.9 && s < 1.0, "one-weight perturbation scored {s}");
        // Symmetric.
        assert!((nudged.similarity(&base) - s).abs() < 1e-12);
    }

    #[test]
    fn fnv_reference_values_are_stable() {
        // Pin the hash so accidental algorithm changes (which would silently
        // orphan every interned cache entry across a rolling deploy) are loud.
        let mut h = Fnv1a::new();
        h.write_u64(0);
        assert_eq!(h.finish(), 0xa8c7_f832_281a_39c5);
        assert_eq!(canonical_signature(&example()), canonical_signature(&example()));
    }
}

//! Runtime counters of the scheduling service: admission control, overload
//! shedding/degradation, and pool accounting — everything the `serve`/`batch`
//! front ends print in their periodic and final summaries, and everything the
//! overload tests assert on.
//!
//! All counters are relaxed atomics shared (via the service handle) between
//! the connection readers that admit requests, the pool workers that answer
//! them, and whoever is reporting.  `pending` is the admission-control
//! centrepiece: it is raised with a compare-and-swap that *refuses* to pass
//! the configured budget, so the number of admitted-but-unanswered requests
//! can never exceed the budget no matter how many connections submit
//! concurrently — the overflow is shed (or degraded) instead of queued.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use optsched_obs::{Histogram, HistogramSnapshot};

use crate::protocol::Response;

/// What admission control decided for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued for the requested algorithm, within budget.
    Enqueued,
    /// Queued, but beyond the degrade threshold: the request was rewritten
    /// to deadline-clamped `wastar` and its response will carry
    /// `degraded: true`.
    Degraded,
    /// Refused: the pending budget is exhausted; the caller gets an
    /// immediate structured `overloaded` error response.
    Shed,
}

/// Shared runtime counters (see the module docs).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests submitted (valid, non-empty lines; includes shed ones).
    pub submitted: AtomicU64,
    /// Responses produced (solved, shed, degraded and malformed-error alike).
    pub responses: AtomicU64,
    /// Requests refused with a structured `overloaded` error.
    pub shed: AtomicU64,
    /// Requests admitted beyond the degrade threshold and rewritten to
    /// deadline-clamped `wastar`.
    pub degraded: AtomicU64,
    /// Admitted requests not yet answered (≤ the admission budget, always).
    pub pending: AtomicU64,
    /// High-water mark of `pending`.
    pub peak_pending: AtomicU64,
    /// Worker threads the global pool has ever spawned — with one shared
    /// runtime this equals the configured pool size, *not* pool size ×
    /// connections.
    pub workers_spawned: AtomicU64,
    /// High-water mark of `peak_live_records` over every answered request —
    /// the worst per-request state-store footprint the service has seen.
    pub peak_live_records: AtomicU64,
    /// `algorithm: "auto"` requests resolved to the seeded exact band.
    pub auto_exact: AtomicU64,
    /// `auto` requests resolved to the tight-deadline anytime band.
    pub auto_anytime: AtomicU64,
    /// `auto` requests resolved to the mid-band staged race.
    pub auto_raced: AtomicU64,
    /// `auto` exact searches whose incumbent was warm-started by a cache
    /// near-match that validated *and* tightened the seeded bound.
    pub auto_warm_starts: AtomicU64,
    /// Injector-queue wait (admission → worker pickup), in microseconds.
    /// Histograms are *always on* (a relaxed `fetch_add` per response), unlike
    /// the event/span layer behind `optsched_obs::enabled()`.
    pub queue_wait_us: Histogram,
    /// End-to-end latency (admission → response delivered to the writer), in
    /// microseconds; includes queue wait, unlike `Response::elapsed_ms`.
    pub e2e_us: Histogram,
}

/// A point-in-time copy of [`ServiceMetrics`], for printing and asserting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests submitted (valid, non-empty lines; includes shed ones).
    pub submitted: u64,
    /// Responses produced.
    pub responses: u64,
    /// Requests refused with a structured `overloaded` error.
    pub shed: u64,
    /// Requests degraded to deadline-clamped `wastar`.
    pub degraded: u64,
    /// Admitted requests not yet answered.
    pub pending: u64,
    /// High-water mark of `pending`.
    pub peak_pending: u64,
    /// Worker threads the global pool has spawned.
    pub workers_spawned: u64,
    /// High-water mark of per-request `peak_live_records`.
    pub peak_live_records: u64,
    /// `auto` requests resolved to the seeded exact band.
    pub auto_exact: u64,
    /// `auto` requests resolved to the tight-deadline anytime band.
    pub auto_anytime: u64,
    /// `auto` requests resolved to the mid-band staged race.
    pub auto_raced: u64,
    /// `auto` searches that adopted a cache-derived warm start.
    pub auto_warm_starts: u64,
    /// Responses measured by the queue-wait histogram.
    pub queue_wait_count: u64,
    /// Queue-wait p50, in microseconds (log2-bucket upper bound, ≤ 2× true).
    pub queue_wait_p50_us: u64,
    /// Queue-wait p99, in microseconds (log2-bucket upper bound, ≤ 2× true).
    pub queue_wait_p99_us: u64,
    /// Responses measured by the end-to-end histogram.
    pub e2e_count: u64,
    /// End-to-end p50, in microseconds (log2-bucket upper bound, ≤ 2× true).
    pub e2e_p50_us: u64,
    /// End-to-end p99, in microseconds (log2-bucket upper bound, ≤ 2× true).
    pub e2e_p99_us: u64,
}

impl ServiceMetrics {
    /// Tries to reserve one pending slot under `budget`; returns false (and
    /// leaves the counter untouched) when the budget is exhausted.  The CAS
    /// loop makes the budget a hard bound under any number of concurrent
    /// admitting threads.
    pub fn try_reserve_pending(&self, budget: u64) -> bool {
        let mut current = self.pending.load(Ordering::Relaxed);
        loop {
            if current >= budget {
                return false;
            }
            match self.pending.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak_pending.fetch_max(current + 1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Releases one pending slot (the request was answered).
    pub fn release_pending(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Folds one answered request's `peak_live_records` into the gauge.
    pub fn observe_peak_live_records(&self, records: u64) {
        self.peak_live_records.fetch_max(records, Ordering::Relaxed);
    }

    /// The single elapsed-time helper every response path goes through:
    /// stamps `elapsed_ms` with the *handling* time (what the response's SLA
    /// semantics have always meant — queue wait is a property of the offered
    /// load, and is re-based out of the deadline before handling starts).
    pub fn stamp_elapsed(&self, handling_started: Instant, response: &mut Response) {
        response.elapsed_ms = handling_started.elapsed().as_secs_f64() * 1e3;
    }

    /// Records one response's end-to-end latency (admission → delivery).
    pub fn observe_e2e(&self, admitted: Instant) {
        let us = u64::try_from(admitted.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.e2e_us.record(us);
    }

    /// Records one admitted request's injector-queue wait.
    pub fn observe_queue_wait(&self, waited: std::time::Duration) {
        let us = u64::try_from(waited.as_micros()).unwrap_or(u64::MAX);
        self.queue_wait_us.record(us);
    }

    /// A point-in-time copy of the queue-wait histogram.
    pub fn queue_wait_histogram(&self) -> HistogramSnapshot {
        self.queue_wait_us.snapshot()
    }

    /// A point-in-time copy of the end-to-end latency histogram.
    pub fn e2e_histogram(&self) -> HistogramSnapshot {
        self.e2e_us.snapshot()
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let queue_wait = self.queue_wait_us.snapshot();
        let e2e = self.e2e_us.snapshot();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            pending: self.pending.load(Ordering::Relaxed),
            peak_pending: self.peak_pending.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            peak_live_records: self.peak_live_records.load(Ordering::Relaxed),
            auto_exact: self.auto_exact.load(Ordering::Relaxed),
            auto_anytime: self.auto_anytime.load(Ordering::Relaxed),
            auto_raced: self.auto_raced.load(Ordering::Relaxed),
            auto_warm_starts: self.auto_warm_starts.load(Ordering::Relaxed),
            queue_wait_count: queue_wait.count(),
            queue_wait_p50_us: queue_wait.percentile(50.0),
            queue_wait_p99_us: queue_wait.percentile(99.0),
            e2e_count: e2e.count(),
            e2e_p50_us: e2e.percentile(50.0),
            e2e_p99_us: e2e.percentile(99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_reservation_is_budget_bounded() {
        let m = ServiceMetrics::default();
        assert!(m.try_reserve_pending(2));
        assert!(m.try_reserve_pending(2));
        assert!(!m.try_reserve_pending(2), "third reservation exceeds the budget");
        m.release_pending();
        assert!(m.try_reserve_pending(2), "released slots are reusable");
        let snap = m.snapshot();
        assert_eq!(snap.pending, 2);
        assert_eq!(snap.peak_pending, 2);
    }

    #[test]
    fn zero_budget_sheds_everything() {
        let m = ServiceMetrics::default();
        assert!(!m.try_reserve_pending(0));
        assert_eq!(m.snapshot().pending, 0);
    }

    #[test]
    fn concurrent_reservations_never_pass_the_budget() {
        let m = ServiceMetrics::default();
        let budget = 16u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        if m.try_reserve_pending(budget) {
                            assert!(m.pending.load(Ordering::Relaxed) <= budget);
                            m.release_pending();
                        }
                    }
                });
            }
        });
        assert_eq!(m.snapshot().pending, 0);
        assert!(m.snapshot().peak_pending <= budget);
    }
}

//! # optsched-service — the deadline-aware scheduling service
//!
//! PRs 1–4 grew a fast, memory-lean optimal-scheduling *engine*; this crate
//! is the layer that lets many callers use it concurrently:
//!
//! * **Protocol** ([`protocol`]) — JSON lines in, JSON lines out.  A
//!   [`Request`] carries a full problem [`Instance`] (task graph + processor
//!   network in the validated wire formats), an algorithm name resolved
//!   through the facade's `SchedulerRegistry`, and optional
//!   `deadline_ms` / `max_expansions` budgets; a [`Response`] carries the
//!   validated schedule, its quality tag (`optimal` / `anytime` /
//!   `heuristic`), the canonical instance signature and the service-side
//!   accounting.  Malformed input yields a structured error response — the
//!   service never dies on bad bytes.
//! * **Instance interning** ([`signature`]) — a topology- and label-stable
//!   canonical form plus its 64-bit FNV signature identify instances by
//!   scheduling-relevant *content*, so presentation differences (labels,
//!   edge order, JSON field order) cannot defeat memoization.
//! * **Memoizing cache** ([`cache`]) — a sharded, lock-striped **LRU**
//!   result cache (the `crates/parallel/src/closed.rs` idiom) answers
//!   repeated instances without re-search; per-shard capacity evicts the
//!   least-recently-used entry, an optional `max_age` TTL lazily expires
//!   stale results on lookup, and only completed runs are memoized, so
//!   deadline-truncated answers never shadow a real search.
//! * **Anytime fallback** — the engine pre-seeds every search with the
//!   list-scheduling schedule and returns the best incumbent when a
//!   deadline (threaded into `SearchLimits::max_millis`) expires, so every
//!   response — even at a 0 ms deadline — is a feasible, validated
//!   schedule.  Requests under deadline pressure default to the weighted-A\*
//!   `wastar` algorithm, and the service switches the engine's
//!   `seed_incumbent` pruning on.
//! * **Algorithm portfolio** ([`portfolio`]) — `algorithm: "auto"` resolves
//!   a request from cheap instance features (node count, CCR, level widths,
//!   topology class) and its deadline band: generous deadlines run a seeded
//!   exact search, tight ones run feature-calibrated weighted A\*, and
//!   mid-band deadlines run a staged race (a weighted-A\* leg, then the
//!   remaining budget on an exact search warm-started from the leg and from
//!   the cache's nearest structural match).  Responses report the resolved
//!   algorithm plus a `plan` tag; the cache and coalescer key on the
//!   *resolved* plan, never the literal `auto`, so a tight heuristic answer
//!   can never serve a generous request.
//! * **Global runtime** ([`runtime`]) — **one** worker pool shared by every
//!   connection of every transport: per-connection readers tag requests with
//!   a sequence number and push them onto one shared MPMC injector, idle
//!   workers pull the next job (so an expensive request cannot convoy cheap
//!   ones behind a private queue), identical in-flight instances coalesce
//!   onto one search, and per-connection writers reorder completions back
//!   into request arrival order.  N concurrent connections cost
//!   [`ServiceConfig::workers`] threads, not N × workers.
//! * **Admission control** ([`metrics`]) — the number of
//!   admitted-but-unanswered requests is hard-bounded by
//!   [`ServiceConfig::admission_budget`] (a CAS reservation): past the
//!   degrade threshold requests are rewritten to deadline-clamped `wastar`
//!   (response marked `degraded`), and with the budget exhausted they are
//!   refused with a structured `overloaded` response (`shed`) — bounded
//!   memory and bounded queueing delay under any load.
//! * **Transports** ([`pool`]) — JSON lines over stdin/stdout
//!   ([`run_service`]) or a `std::net::TcpListener` ([`serve_tcp`]), both
//!   thin shells over the runtime.
//! * **Observability** — every response path goes through one elapsed-time
//!   helper; always-on log2 histograms record queue-wait and end-to-end
//!   latency (service-side p50/p99 in [`MetricsSnapshot`]); the admin line
//!   `{"type": "stats"}` answers with a [`StatsReport`] over the same
//!   JSON-lines connection; and a configured [`ServiceConfig::trace_path`]
//!   turns on the `optsched-obs` event/span layer and writes a Chrome
//!   trace-event file at shutdown.
//!
//! ```
//! use optsched_procnet::ProcNetwork;
//! use optsched_service::{Instance, Request, SchedulingService, ServiceConfig};
//! use optsched_taskgraph::paper_example_dag;
//!
//! let service = SchedulingService::new(ServiceConfig::default());
//! let req = Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)));
//! let first = service.handle_request(&req, 0);
//! assert_eq!(first.schedule_length, Some(14));
//! assert_eq!(first.quality.as_deref(), Some("optimal"));
//! // The same instance again: answered from the cache, no re-search.
//! assert!(service.handle_request(&req, 1).cache_hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod pool;
pub mod portfolio;
pub mod protocol;
pub mod runtime;
pub mod service;
pub mod signature;

pub use cache::{CacheStats, CachedResult, ResultCache, DEFAULT_SHARD_CAPACITY};
pub use metrics::{Admission, MetricsSnapshot, ServiceMetrics};
pub use pool::{run_service, serve_tcp, PoolSummary};
pub use portfolio::{DeadlineBand, InstanceFeatures, PlanMode, ResolvedPlan};
pub use protocol::{plan, quality, AdminRequest, Instance, Request, Response, StatsReport, OVERLOADED};
pub use runtime::{Connection, Reply, ReplyBody, ServiceRuntime};
pub use service::{SchedulingService, ServiceConfig};
pub use signature::{canonical_signature, CanonicalInstance};

//! The JSON-lines wire protocol of the scheduling service.
//!
//! One request per line in, one response per line out.  A request carries a
//! full problem [`Instance`] (task graph + processor network, in the
//! validated wire formats of `optsched-taskgraph`/`optsched-procnet`), the
//! registry name of the algorithm to run, and optional resource limits; a
//! response carries the schedule, its quality tag, and the service-side
//! accounting (cache hit, states expanded, elapsed time, plus the
//! admission-control `shed`/`degraded` markers).  Each connection's writer
//! delivers responses in request arrival order, whatever order the shared
//! worker pool finished them in; `id` still correlates across connections.

use serde::{Deserialize, Serialize};

use optsched_procnet::ProcNetwork;
use optsched_schedule::Schedule;
use optsched_taskgraph::{Cost, TaskGraph};
use optsched_workload::CorpusRequest;

/// One scheduling problem instance as it travels on the wire.
///
/// Deserialisation goes through the validated formats of the component
/// types, so a malformed instance (cyclic graph, dangling edge, unknown
/// link endpoint, zero-speed processor, …) is rejected at parse time with a
/// message naming the violated invariant — the service turns that into a
/// structured error response instead of scheduling garbage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// The task graph to schedule.
    pub graph: TaskGraph,
    /// The target processor network.
    pub network: ProcNetwork,
}

impl Instance {
    /// Bundles a graph and a network into an instance.
    pub fn new(graph: TaskGraph, network: ProcNetwork) -> Instance {
        Instance { graph, network }
    }
}

impl From<&CorpusRequest> for Request {
    /// Converts a workload-generated corpus entry into a wire request
    /// (fully connected processors, as the corpus generator assumes).
    fn from(c: &CorpusRequest) -> Request {
        Request {
            id: None,
            instance: Instance::new(c.graph.clone(), ProcNetwork::fully_connected(c.procs)),
            algorithm: Some(c.algorithm.clone()),
            deadline_ms: c.deadline_ms,
            max_expansions: None,
            epsilon: None,
            weight: None,
        }
    }
}

/// One scheduling request (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.  When absent
    /// the service assigns the request's submission sequence number.
    pub id: Option<u64>,
    /// The problem instance.
    pub instance: Instance,
    /// Registry name of the algorithm (`astar`, `wastar`, `aeps`, `chenyu`,
    /// `exhaustive`, `list`, `parallel`), or `auto` to let the service's
    /// portfolio pick one from the instance's features and the deadline (the
    /// response's `algorithm` reports what actually ran, `plan` which
    /// portfolio band chose it).  When absent the service picks `astar` — or
    /// `wastar`, its deadline-pressure algorithm, if the request carries a
    /// `deadline_ms`.
    pub algorithm: Option<String>,
    /// Wall-clock budget in milliseconds.  The search returns its best
    /// incumbent when the budget expires, so *every* deadline — even 0 ms —
    /// still yields a feasible schedule (tagged `anytime` or `heuristic`).
    pub deadline_ms: Option<u64>,
    /// Budget on expanded states (same anytime semantics as `deadline_ms`).
    pub max_expansions: Option<u64>,
    /// Approximation factor for `aeps` (default 0.2).
    pub epsilon: Option<f64>,
    /// Heuristic weight for `wastar` (default: the service's configured
    /// deadline-pressure weight).
    pub weight: Option<f64>,
}

impl Request {
    /// A plain request for `instance` with every knob at its default.
    pub fn new(instance: Instance) -> Request {
        Request {
            id: None,
            instance,
            algorithm: None,
            deadline_ms: None,
            max_expansions: None,
            epsilon: None,
            weight: None,
        }
    }
}

/// The quality guarantee a response's schedule carries.
pub mod quality {
    /// Proven optimal (or exhaustively certified).
    pub const OPTIMAL: &str = "optimal";
    /// Feasible and typically improved over the list heuristic, but without
    /// an optimality proof: a deadline/limit cut the search short, or a
    /// bounded-suboptimal algorithm (weighted A\*, `w > 1`) completed.
    pub const ANYTIME: &str = "anytime";
    /// The polynomial-time list-scheduling answer (also what a 0 ms deadline
    /// yields: the pre-seeded incumbent, untouched by search).
    pub const HEURISTIC: &str = "heuristic";
}

/// How `algorithm: "auto"` resolved a request (the response's `plan` tag).
pub mod plan {
    /// Generous or absent deadline: a seeded exact search.
    pub const AUTO_EXACT: &str = "auto_exact";
    /// Tight deadline: feature-calibrated weighted A\* (anytime).
    pub const AUTO_ANYTIME: &str = "auto_anytime";
    /// Mid-band deadline: a staged race — a weighted-A\* leg first, then the
    /// remaining budget on a warm-started exact search.
    pub const AUTO_RACED: &str = "auto_raced";
}

/// One scheduling response (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id (the request's `id`, or its submission sequence number).
    pub id: u64,
    /// True when the request was served; false for a structured error.
    pub ok: bool,
    /// Registry name of the algorithm that produced the schedule.
    pub algorithm: Option<String>,
    /// For `algorithm: "auto"` requests: which portfolio band resolved the
    /// request (see [`plan`]); `null` for directly named algorithms.
    pub plan: Option<String>,
    /// Quality tag: `"optimal"`, `"anytime"` or `"heuristic"` (see
    /// [`quality`]).
    pub quality: Option<String>,
    /// Makespan of the returned schedule.
    pub schedule_length: Option<Cost>,
    /// The schedule itself, validated against the instance before sending.
    pub schedule: Option<Schedule>,
    /// Canonical instance signature (hex), for observability and cache
    /// debugging: requests with equal signatures intern to one cache slot.
    pub signature: Option<String>,
    /// True when the response was served from the memoizing result cache.
    pub cache_hit: bool,
    /// True when admission control refused the request because the pending
    /// budget was exhausted (`ok == false`, `error` starts with
    /// [`OVERLOADED`]) — structured load shedding, not a failure of the
    /// request itself.
    pub shed: bool,
    /// True when admission control degraded the request to deadline-clamped
    /// `wastar` under overload: the response is a feasible schedule
    /// (`ok == true`), but from the cheap anytime path rather than the
    /// requested algorithm.
    pub degraded: bool,
    /// States the search expanded for this response.  On a cache hit this is
    /// the producing run's count (provenance), not new work.
    pub expanded: u64,
    /// Peak simultaneously-live state-store records of the search that
    /// produced this response (the producing run's value on a cache hit,
    /// 0 on an error) — the per-request memory proxy of the delta arena,
    /// surfaced so callers and dashboards can see what a request cost beyond
    /// wall-clock.
    pub peak_live_records: u64,
    /// Service-side wall-clock time for this request, in milliseconds.
    pub elapsed_ms: f64,
    /// Error message (only for `ok == false`).
    pub error: Option<String>,
}

/// Prefix of the `error` message of a shed (overloaded) response.
pub const OVERLOADED: &str = "overloaded";

impl Response {
    /// A structured error response: the service answers malformed or
    /// unserviceable requests instead of dying.
    pub fn error(id: u64, message: impl Into<String>) -> Response {
        Response {
            id,
            ok: false,
            algorithm: None,
            plan: None,
            quality: None,
            schedule_length: None,
            schedule: None,
            signature: None,
            cache_hit: false,
            shed: false,
            degraded: false,
            expanded: 0,
            peak_live_records: 0,
            elapsed_ms: 0.0,
            error: Some(message.into()),
        }
    }

    /// The structured shed response: admission control refused the request
    /// because `budget` requests are already pending.  The caller should
    /// retry later (or with a deadline, which the degrade path honours).
    pub fn overloaded(id: u64, budget: u64) -> Response {
        let mut resp =
            Response::error(id, format!("{OVERLOADED}: admission budget {budget} exhausted"));
        resp.shed = true;
        resp
    }

    /// True for responses refused by admission control.
    pub fn is_overloaded(&self) -> bool {
        self.shed
    }
}

/// An admin verb on the JSON-lines protocol: a line shaped
/// `{"type": "<verb>"}` instead of a scheduling request.  Today the only
/// verb is `stats`, which answers with a [`StatsReport`].  Admin lines are
/// recognised *after* a line fails to parse as a [`Request`] (they carry no
/// `instance`), so the scheduling fast path pays nothing for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminRequest {
    /// The verb (`"stats"`).
    pub verb: String,
    /// Optional correlation id, echoed in the report.
    pub id: Option<u64>,
}

// `type` is a Rust keyword and the vendored serde has no field renaming, so
// the admin shapes (de)serialise by hand.
impl serde::Deserialize for AdminRequest {
    fn from_value(v: &serde::Value) -> Result<AdminRequest, serde::Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("admin request: expected an object"))?;
        let verb = match serde::__field(pairs, "type") {
            serde::Value::String(s) => s.clone(),
            serde::Value::Null => {
                return Err(serde::Error::custom("admin request: missing `type`"))
            }
            other => {
                return Err(serde::Error::custom(format!(
                    "admin request: `type` must be a string, got {}",
                    other.type_name()
                )))
            }
        };
        let id = match serde::__field(pairs, "id") {
            serde::Value::Null => None,
            other => Some(other.as_u64().ok_or_else(|| {
                serde::Error::custom("admin request: `id` must be an unsigned integer")
            })?),
        };
        Ok(AdminRequest { verb, id })
    }
}

/// The answer to a `{"type": "stats"}` admin line: a point-in-time copy of
/// the service's counters, latency histograms (as p50/p99 of the log2
/// buckets — upper bounds, at most 2× the true value) and cache occupancy.
/// Serialised with `"type": "stats"` so clients can tell it apart from a
/// scheduling [`Response`] on the same connection.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Correlation id (the admin line's `id`, or its submission sequence).
    pub id: u64,
    /// Requests submitted (valid scheduling lines; includes shed ones).
    pub submitted: u64,
    /// Responses produced, admin replies included.
    pub responses: u64,
    /// Requests refused with a structured `overloaded` error.
    pub shed: u64,
    /// Requests degraded to deadline-clamped `wastar`.
    pub degraded: u64,
    /// Admitted requests not yet answered.
    pub pending: u64,
    /// High-water mark of `pending`.
    pub peak_pending: u64,
    /// High-water mark of per-request `peak_live_records`.
    pub peak_live_records: u64,
    /// Responses measured by the queue-wait histogram.
    pub queue_wait_count: u64,
    /// Injector-queue wait p50 in milliseconds.
    pub queue_wait_p50_ms: f64,
    /// Injector-queue wait p99 in milliseconds.
    pub queue_wait_p99_ms: f64,
    /// Responses measured by the end-to-end histogram.
    pub e2e_count: u64,
    /// End-to-end (admission → delivery) p50 in milliseconds.
    pub e2e_p50_ms: f64,
    /// End-to-end (admission → delivery) p99 in milliseconds.
    pub e2e_p99_ms: f64,
    /// Entries resident in the memoizing result cache.
    pub cache_entries: u64,
    /// Result-cache hits served so far.
    pub cache_hits: u64,
    /// Events dropped by the tracing rings (0 unless tracing is enabled and
    /// a drain raced a writer).
    pub dropped_events: u64,
}

impl serde::Serialize for StatsReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("type".to_string(), serde::Value::String("stats".to_string())),
            ("id".to_string(), serde::Value::U64(self.id)),
            ("submitted".to_string(), serde::Value::U64(self.submitted)),
            ("responses".to_string(), serde::Value::U64(self.responses)),
            ("shed".to_string(), serde::Value::U64(self.shed)),
            ("degraded".to_string(), serde::Value::U64(self.degraded)),
            ("pending".to_string(), serde::Value::U64(self.pending)),
            ("peak_pending".to_string(), serde::Value::U64(self.peak_pending)),
            ("peak_live_records".to_string(), serde::Value::U64(self.peak_live_records)),
            ("queue_wait_count".to_string(), serde::Value::U64(self.queue_wait_count)),
            ("queue_wait_p50_ms".to_string(), serde::Value::F64(self.queue_wait_p50_ms)),
            ("queue_wait_p99_ms".to_string(), serde::Value::F64(self.queue_wait_p99_ms)),
            ("e2e_count".to_string(), serde::Value::U64(self.e2e_count)),
            ("e2e_p50_ms".to_string(), serde::Value::F64(self.e2e_p50_ms)),
            ("e2e_p99_ms".to_string(), serde::Value::F64(self.e2e_p99_ms)),
            ("cache_entries".to_string(), serde::Value::U64(self.cache_entries)),
            ("cache_hits".to_string(), serde::Value::U64(self.cache_hits)),
            ("dropped_events".to_string(), serde::Value::U64(self.dropped_events)),
        ])
    }
}

impl serde::Deserialize for StatsReport {
    fn from_value(v: &serde::Value) -> Result<StatsReport, serde::Error> {
        let pairs = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("stats report: expected an object"))?;
        match serde::__field(pairs, "type") {
            serde::Value::String(s) if s == "stats" => {}
            _ => return Err(serde::Error::custom("stats report: missing `\"type\": \"stats\"`")),
        }
        let u = |name: &str| -> Result<u64, serde::Error> {
            serde::__field(pairs, name)
                .as_u64()
                .ok_or_else(|| serde::Error::custom(format!("stats report: bad field `{name}`")))
        };
        let f = |name: &str| -> Result<f64, serde::Error> {
            serde::__field(pairs, name)
                .as_f64()
                .ok_or_else(|| serde::Error::custom(format!("stats report: bad field `{name}`")))
        };
        Ok(StatsReport {
            id: u("id")?,
            submitted: u("submitted")?,
            responses: u("responses")?,
            shed: u("shed")?,
            degraded: u("degraded")?,
            pending: u("pending")?,
            peak_pending: u("peak_pending")?,
            peak_live_records: u("peak_live_records")?,
            queue_wait_count: u("queue_wait_count")?,
            queue_wait_p50_ms: f("queue_wait_p50_ms")?,
            queue_wait_p99_ms: f("queue_wait_p99_ms")?,
            e2e_count: u("e2e_count")?,
            e2e_p50_ms: f("e2e_p50_ms")?,
            e2e_p99_ms: f("e2e_p99_ms")?,
            cache_entries: u("cache_entries")?,
            cache_hits: u("cache_hits")?,
            dropped_events: u("dropped_events")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_taskgraph::paper_example_dag;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request {
            id: Some(7),
            instance: Instance::new(paper_example_dag(), ProcNetwork::ring(3)),
            algorithm: Some("wastar".to_string()),
            deadline_ms: Some(50),
            max_expansions: None,
            epsilon: None,
            weight: Some(1.5),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn minimal_request_defaults_every_knob() {
        // Only the instance is mandatory; everything else reads as None.
        let inst = Instance::new(paper_example_dag(), ProcNetwork::ring(3));
        let json = format!("{{\"instance\": {}}}", serde_json::to_string(&inst).unwrap());
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Request::new(inst));
    }

    #[test]
    fn requests_without_an_instance_fail_to_parse() {
        let err = serde_json::from_str::<Request>("{\"id\": 1}").unwrap_err();
        assert!(err.to_string().contains("instance"), "{err}");
    }

    #[test]
    fn error_response_shape() {
        let r = Response::error(3, "boom");
        assert!(!r.ok);
        assert_eq!(r.id, 3);
        let back: Response = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn admin_stats_lines_parse_and_reports_round_trip() {
        let admin: AdminRequest =
            serde_json::from_str("{\"type\": \"stats\", \"id\": 9}").unwrap();
        assert_eq!(admin, AdminRequest { verb: "stats".to_string(), id: Some(9) });
        let bare: AdminRequest = serde_json::from_str("{\"type\": \"stats\"}").unwrap();
        assert_eq!(bare.id, None);
        assert!(
            serde_json::from_str::<Request>("{\"type\": \"stats\"}").is_err(),
            "admin lines are not scheduling requests"
        );
        assert!(
            serde_json::from_str::<AdminRequest>("{\"id\": 1}").is_err(),
            "objects without `type` are not admin lines"
        );

        let report = StatsReport {
            id: 9,
            submitted: 10,
            responses: 11,
            shed: 1,
            degraded: 2,
            pending: 0,
            peak_pending: 4,
            peak_live_records: 123,
            queue_wait_count: 10,
            queue_wait_p50_ms: 0.255,
            queue_wait_p99_ms: 2.047,
            e2e_count: 10,
            e2e_p50_ms: 8.191,
            e2e_p99_ms: 32.767,
            cache_entries: 3,
            cache_hits: 5,
            dropped_events: 0,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"type\":\"stats\"") || json.contains("\"type\": \"stats\""));
        let back: StatsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn corpus_requests_convert() {
        use optsched_workload::{generate_request_corpus, RequestCorpusConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let corpus = generate_request_corpus(
            &RequestCorpusConfig { count: 4, ..Default::default() },
            &mut StdRng::seed_from_u64(7),
        );
        let reqs: Vec<Request> = corpus.iter().map(Request::from).collect();
        assert_eq!(reqs.len(), 4);
        for (c, r) in corpus.iter().zip(&reqs) {
            assert_eq!(r.instance.graph, c.graph);
            assert_eq!(r.instance.network.num_procs(), c.procs);
            assert_eq!(r.deadline_ms, c.deadline_ms);
        }
    }
}

//! The worker pool and the two transports: JSON-lines over arbitrary
//! reader/writer pairs (stdin/stdout for `optsched serve`, in-memory buffers
//! for tests) and a TCP listener.
//!
//! Shape: a dispatcher thread reads and parses request lines and deals them
//! onto one crossbeam channel per worker — routed by **canonical-signature
//! affinity**, so identical instances always queue behind each other on the
//! same worker and a repeated instance deterministically finds its
//! original's memoized result instead of racing it (round-robin dispatch
//! would make the cache hit a scheduling accident).  Each worker solves and
//! ships its [`Response`] to a single results channel; the calling thread
//! streams responses out as they complete (out of submission order — callers
//! correlate by `id`).  Malformed lines are answered by the dispatcher
//! directly.  All channels are unbounded, so no stage can deadlock another;
//! everything shuts down cleanly off end-of-input via channel disconnection.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::protocol::{Request, Response};
use crate::service::SchedulingService;
use crate::signature::canonical_signature;

/// One queued, already-parsed request.
struct Job {
    /// Submission sequence number — the fallback response id.
    seq: u64,
    request: Request,
}

/// What a [`run_service`] call processed, for callers that assert on the
/// outcome (the `batch` front end and the CI smoke test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSummary {
    /// Responses written (one per non-empty input line).
    pub responses: u64,
    /// Responses with `ok == false`.
    pub errors: u64,
    /// Responses served from the memoizing result cache.
    pub cache_hits: u64,
}

/// Runs the service over a JSON-lines stream until end-of-input: one request
/// per line in, one response per line out, solved on
/// [`ServiceConfig::workers`](crate::ServiceConfig) worker threads.
///
/// Responses are flushed as workers finish, so a slow request does not block
/// the answers behind it — but it does mean responses can arrive out of
/// submission order; correlate by `id`.  Empty lines are skipped.
pub fn run_service<R, W>(
    service: &SchedulingService,
    input: R,
    output: &mut W,
) -> io::Result<PoolSummary>
where
    R: BufRead + Send,
    W: Write,
{
    let workers = service.config().workers.max(1);

    let (resp_tx, resp_rx) = unbounded::<Response>();
    let mut job_txs: Vec<Sender<Job>> = Vec::with_capacity(workers);
    let mut job_rxs: Vec<Receiver<Job>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = unbounded::<Job>();
        job_txs.push(tx);
        job_rxs.push(rx);
    }

    std::thread::scope(|scope| -> io::Result<PoolSummary> {
        for rx in job_rxs {
            let resp_tx = resp_tx.clone();
            scope.spawn(move || {
                // `recv` blocks until the dispatcher hangs up; a failed send
                // means the writer already gave up — nothing left to do.
                while let Ok(job) = rx.recv() {
                    let _ = resp_tx.send(service.handle_request(&job.request, job.seq));
                }
            });
        }
        let dispatcher_resp_tx = resp_tx.clone();
        // The writer's receiver must observe disconnection once the workers
        // finish: drop the original sender now that every worker (and the
        // dispatcher) has a clone.
        drop(resp_tx);

        let dispatcher = scope.spawn(move || -> io::Result<()> {
            let mut seq: u64 = 0;
            for line in input.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<Request>(&line) {
                    Ok(request) => {
                        // Signature affinity: requests for one instance share
                        // a worker queue (FIFO), so a repeated instance runs
                        // *after* its original and hits the memoized result
                        // instead of racing the search for it.
                        let shard = canonical_signature(&request.instance) % workers as u64;
                        // A failed send means the pool is shutting down early.
                        let _ = job_txs[shard as usize].send(Job { seq, request });
                    }
                    Err(e) => {
                        let _ = dispatcher_resp_tx
                            .send(Response::error(seq, format!("malformed request: {e}")));
                    }
                }
                seq += 1;
            }
            Ok(()) // dropping job_txs (and the resp clone) hangs everyone up
        });

        let mut summary = PoolSummary::default();
        while let Ok(resp) = resp_rx.recv() {
            summary.responses += 1;
            if !resp.ok {
                summary.errors += 1;
            }
            if resp.cache_hit {
                summary.cache_hits += 1;
            }
            let line = serde_json::to_string(&resp).expect("responses serialise");
            writeln!(output, "{line}")?;
            output.flush()?;
        }
        dispatcher.join().expect("dispatcher thread panicked")?;
        Ok(summary)
    })
}

/// Serves the JSON-lines protocol over TCP: each accepted connection gets
/// the full worker pool treatment of [`run_service`], all connections
/// sharing one service (and therefore one memoizing cache).
///
/// `max_connections` bounds how many connections are accepted before the
/// function returns (`None` serves forever — the `optsched serve --listen`
/// mode); connections are handled concurrently.
pub fn serve_tcp(
    service: &SchedulingService,
    listener: &TcpListener,
    max_connections: Option<usize>,
) -> io::Result<()> {
    let mut accepted = 0usize;
    std::thread::scope(|scope| -> io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            scope.spawn(move || {
                let Ok(read_half) = stream.try_clone() else { return };
                let mut write_half = stream;
                // A dropped connection mid-stream is the client's business,
                // not a server failure.
                let _ = run_service(service, BufReader::new(read_half), &mut write_half);
            });
            accepted += 1;
            if max_connections.is_some_and(|max| accepted >= max) {
                break;
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Instance, Request};
    use crate::service::ServiceConfig;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn request_line(id: u64) -> String {
        let mut req = Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)));
        req.id = Some(id);
        serde_json::to_string(&req).unwrap()
    }

    #[test]
    fn pool_answers_every_line_and_skips_blanks() {
        let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
        let input = format!("{}\n\n{}\nnot json\n", request_line(10), request_line(11));
        let mut out = Vec::new();
        let summary = run_service(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.responses, 3);
        assert_eq!(summary.errors, 1, "the `not json` line answers a structured error");
        assert_eq!(summary.cache_hits, 1, "the repeated instance hits the cache");

        let text = String::from_utf8(out).unwrap();
        let responses: Vec<Response> =
            text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(responses.len(), 3);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        // Blank lines are skipped without consuming a sequence number, so
        // the malformed third request falls back to id 2.
        assert_eq!(ids, vec![2, 10, 11], "fallback id is the submission sequence number");
    }

    #[test]
    fn empty_input_is_an_empty_summary() {
        let service = SchedulingService::new(ServiceConfig::default());
        let mut out = Vec::new();
        let summary = run_service(&service, &b""[..], &mut out).unwrap();
        assert_eq!(summary, PoolSummary::default());
        assert!(out.is_empty());
    }
}

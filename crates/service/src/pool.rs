//! The stream transports of the service, built on the global
//! [`ServiceRuntime`]: JSON-lines over arbitrary reader/writer pairs
//! (stdin/stdout for `optsched serve`, in-memory buffers for tests) and a
//! TCP listener.
//!
//! Both transports are thin: all scheduling happens on the runtime's shared
//! worker pool ([`crate::runtime`] has the architecture).  [`run_service`]
//! starts a runtime, serves one connection, and drains it — the one-shot
//! shape.  [`serve_tcp`] starts **one** runtime before the accept loop and
//! serves every accepted connection over it, so N connections still cost
//! [`ServiceConfig::workers`](crate::ServiceConfig) threads (not N × workers)
//! and share the admission budget, the memoizing cache, and the metrics.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

pub use crate::runtime::PoolSummary;
use crate::runtime::ServiceRuntime;
use crate::service::SchedulingService;

/// Runs the service over a JSON-lines stream until end-of-input: one request
/// per line in, one response per line out, solved on
/// [`ServiceConfig::workers`](crate::ServiceConfig) worker threads which are
/// started for this stream and drained before returning.
///
/// Responses come back in request arrival order (the runtime's per-connection
/// writer reorders pool completions); empty lines are skipped.
pub fn run_service<R, W>(
    service: &SchedulingService,
    input: R,
    output: &mut W,
) -> io::Result<PoolSummary>
where
    R: BufRead + Send,
    W: Write,
{
    let runtime = ServiceRuntime::start(service);
    let summary = runtime.serve_connection(input, output);
    runtime.shutdown();
    summary
}

/// Serves the JSON-lines protocol over TCP: **one** global worker pool,
/// started before the accept loop, answers every connection — so concurrent
/// connections share the configured worker threads, the admission budget,
/// and the memoizing cache, and a flood of connections cannot multiply the
/// service's thread count.
///
/// `max_connections` bounds how many connections are accepted before the
/// function returns (`None` serves forever — the `optsched serve --listen`
/// mode); connections are handled concurrently, and the pool drains before
/// this returns.
pub fn serve_tcp(
    service: &SchedulingService,
    listener: &TcpListener,
    max_connections: Option<usize>,
) -> io::Result<()> {
    let runtime = ServiceRuntime::start(service);
    let mut accepted = 0usize;
    let served = std::thread::scope(|scope| -> io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let runtime = &runtime;
            scope.spawn(move || {
                let Ok(read_half) = stream.try_clone() else { return };
                let mut write_half = stream;
                // A dropped connection mid-stream is the client's business,
                // not a server failure.
                let _ = runtime.serve_connection(BufReader::new(read_half), &mut write_half);
            });
            accepted += 1;
            if max_connections.is_some_and(|max| accepted >= max) {
                break;
            }
        }
        Ok(())
    });
    runtime.shutdown();
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Instance, Request, Response};
    use crate::service::ServiceConfig;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn request_line(id: u64) -> String {
        let mut req = Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)));
        req.id = Some(id);
        serde_json::to_string(&req).unwrap()
    }

    #[test]
    fn pool_answers_every_line_in_arrival_order() {
        let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
        let input = format!("{}\n\n{}\nnot json\n", request_line(10), request_line(11));
        let mut out = Vec::new();
        let summary = run_service(&service, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.responses, 3);
        assert_eq!(summary.errors, 1, "the `not json` line answers a structured error");
        assert_eq!(summary.cache_hits, 1, "the repeated instance hits the cache");
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.degraded, 0);

        let text = String::from_utf8(out).unwrap();
        let responses: Vec<Response> =
            text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(responses.len(), 3);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        // Responses come back in request arrival order, whatever order the
        // pool finished them in.  Blank lines are skipped without consuming
        // a sequence number, so the malformed third request falls back to
        // id 2.
        assert_eq!(ids, vec![10, 11, 2], "arrival order; fallback id is the sequence number");
    }

    #[test]
    fn empty_input_is_an_empty_summary() {
        let service = SchedulingService::new(ServiceConfig::default());
        let mut out = Vec::new();
        let summary = run_service(&service, &b""[..], &mut out).unwrap();
        assert_eq!(summary, PoolSummary::default());
        assert!(out.is_empty());
    }
}

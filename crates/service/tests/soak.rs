//! Overload soak for the global runtime: 4× the admission budget, submitted
//! as fast as two connections can push, through a 2-worker pool.
//!
//! Invariants proven:
//!
//! * every submitted request gets **exactly one** structured response —
//!   solved, degraded or `overloaded`, never silence, never a duplicate;
//! * reply routing never crosses connections (each connection sees only its
//!   own ids);
//! * `pending` never exceeds the admission budget (`peak_pending` is the
//!   witness — the CAS reservation is a hard bound, not advisory);
//! * the pool spawns `workers` threads total, not `workers × connections`;
//! * shutdown drains clean: `pending == 0`, every worker joined.

use std::sync::atomic::Ordering;

use optsched_procnet::ProcNetwork;
use optsched_service::runtime::Reply;
use optsched_service::{
    Instance, Request, SchedulingService, ServiceConfig, ServiceRuntime,
};
use optsched_taskgraph::paper_example_dag;

/// A request with a connection-scoped id and a per-request `wastar` weight,
/// so every request has a distinct cache identity (no coalescing, no cache
/// hits): each one is a real unit of work and the backlog is genuine.
fn distinct_request(id: u64, i: u64) -> Request {
    let mut req = Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)));
    req.id = Some(id);
    req.algorithm = Some("wastar".to_string());
    req.weight = Some(1.0 + i as f64 * 0.001);
    req
}

#[test]
fn overload_soak_exactly_one_response_per_request() {
    const BUDGET: u64 = 8;
    const PER_CONN: u64 = 2 * BUDGET; // 2 connections × 2×budget = 4× budget
    let service = SchedulingService::new(ServiceConfig {
        workers: 2,
        admission_budget: BUDGET,
        degrade_threshold: BUDGET / 2,
        degrade_deadline_ms: 5,
        ..Default::default()
    });
    let runtime = ServiceRuntime::start(&service);

    // Two connections flood concurrently; each returns its own replies.
    let replies_per_conn: Vec<Vec<Reply>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|conn_idx| {
                let runtime = &runtime;
                scope.spawn(move || {
                    let (mut conn, replies) = runtime.open();
                    let base = 1000 * (conn_idx + 1);
                    for i in 0..PER_CONN {
                        conn.submit(distinct_request(base + i, conn_idx * PER_CONN + i));
                    }
                    drop(conn);
                    replies.iter().collect::<Vec<Reply>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    runtime.shutdown();

    let mut total_shed = 0u64;
    for (conn_idx, replies) in replies_per_conn.iter().enumerate() {
        let base = 1000 * (conn_idx as u64 + 1);
        // Exactly one response per request: every seq 0..PER_CONN, once.
        let mut seqs: Vec<u64> = replies.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (0..PER_CONN).collect::<Vec<_>>(),
            "connection {conn_idx}: every request answered exactly once"
        );
        for reply in replies {
            let resp = reply.response().expect("scheduling reply");
            // Routing isolation: only this connection's ids come back here.
            assert!(
                (base..base + PER_CONN).contains(&resp.id),
                "connection {conn_idx} received foreign id {}",
                resp.id
            );
            // Every response is structured: solved, degraded or shed.
            if resp.shed {
                total_shed += 1;
                assert!(!resp.ok);
                assert!(resp.error.as_deref().unwrap().starts_with("overloaded"));
            } else {
                assert!(resp.ok, "{:?}", resp.error);
                assert!(resp.schedule.is_some());
                if resp.degraded {
                    assert_eq!(resp.algorithm.as_deref(), Some("wastar"));
                }
            }
        }
    }

    let m = service.metrics_snapshot();
    assert!(
        m.peak_pending <= BUDGET,
        "pending must never exceed the admission budget (peak {}, budget {BUDGET})",
        m.peak_pending
    );
    assert_eq!(m.pending, 0, "shutdown drains clean");
    assert_eq!(m.shed, total_shed, "metrics agree with the responses");
    assert_eq!(
        m.workers_spawned, 2,
        "2 connections share one 2-worker pool, not 2 pools"
    );
    assert_eq!(m.submitted, 2 * PER_CONN);
    assert_eq!(m.responses, 2 * PER_CONN);
    // 4× the budget through a burst: shedding must actually have happened
    // (submission is far faster than solving).
    assert!(m.shed > 0, "4× budget as a burst must shed");
    // The latency histograms saw every response: admitted requests recorded
    // a queue wait, and *all* responses (shed included) recorded end-to-end.
    assert!(m.queue_wait_count > 0, "admitted requests record queue wait");
    assert_eq!(m.queue_wait_count, 2 * PER_CONN - m.shed);
    assert_eq!(m.e2e_count, 2 * PER_CONN, "every response is timed, shed included");
    assert!(m.e2e_p99_us >= m.e2e_p50_us);
}

#[test]
fn many_connections_still_cost_one_pool() {
    // The acceptance criterion in its purest form: N concurrent connections,
    // worker-thread count == configured pool size.
    let service = SchedulingService::new(ServiceConfig { workers: 3, ..Default::default() });
    let runtime = ServiceRuntime::start(&service);
    assert_eq!(runtime.workers(), 3);

    std::thread::scope(|scope| {
        for conn_idx in 0..5u64 {
            let runtime = &runtime;
            scope.spawn(move || {
                let input = format!(
                    "{}\n{}\n",
                    serde_json::to_string(&distinct_request(10 * conn_idx, conn_idx)).unwrap(),
                    serde_json::to_string(&distinct_request(10 * conn_idx + 1, 100 + conn_idx))
                        .unwrap()
                );
                let mut out = Vec::new();
                let summary =
                    runtime.serve_connection(input.as_bytes(), &mut out).expect("serve");
                assert_eq!(summary.responses, 2);
                assert_eq!(summary.errors, 0);
                let text = String::from_utf8(out).unwrap();
                let ids: Vec<u64> = text
                    .lines()
                    .map(|l| serde_json::from_str::<optsched_service::Response>(l).unwrap().id)
                    .collect();
                assert_eq!(ids, vec![10 * conn_idx, 10 * conn_idx + 1], "in order, own ids only");
            });
        }
    });
    runtime.shutdown();

    let m = service.metrics_snapshot();
    assert_eq!(
        m.workers_spawned, 3,
        "5 concurrent connections spawned no extra workers: one global pool of 3"
    );
    assert_eq!(m.pending, 0);
    assert_eq!(service.metrics().pending.load(Ordering::Relaxed), 0);
}

//! End-to-end service test — the PR's acceptance criterion.
//!
//! A mixed corpus of ≥ 20 requests (varying sizes, CCRs, algorithms,
//! deadlines, with repeated instances) is pushed through the full JSON-lines
//! pipeline on 2 worker threads, and every response is checked against the
//! engine run directly:
//!
//! * every response is a feasible schedule that passes validation,
//! * every `optimal`-tagged response matches the conformance optimum
//!   (serial A* on the same instance),
//! * the repeated instances are served from the memoizing cache
//!   (`cache_hit` responses exist and the cache's hit counter is > 0),
//! * the deadline-constrained requests return an `anytime`/`heuristic`
//!   answer instead of an error.
//!
//! A second test drives the same corpus through the TCP transport.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use rand::rngs::StdRng;
use rand::SeedableRng;

use optsched::prelude::*;
use optsched_service::{
    quality, run_service, serve_tcp, Request, Response, SchedulingService, ServiceConfig,
};
use optsched_workload::{generate_request_corpus, CorpusRequest, RequestCorpusConfig};

/// The deterministic mixed corpus: ≥ 20 requests over 4 algorithm families,
/// with duplicates and tight deadlines guaranteed by the generator.
fn corpus() -> Vec<CorpusRequest> {
    let cfg = RequestCorpusConfig { count: 24, ..Default::default() };
    let corpus = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(1998));
    assert!(corpus.len() >= 20);
    assert!(corpus.iter().any(|c| c.duplicate_of.is_some()));
    assert!(corpus.iter().any(|c| c.deadline_ms.is_some()));
    corpus
}

/// Wire requests with their submission index as id.
fn request_lines(corpus: &[CorpusRequest]) -> String {
    let mut lines = String::new();
    for (i, c) in corpus.iter().enumerate() {
        let mut req = Request::from(c);
        req.id = Some(i as u64);
        lines.push_str(&serde_json::to_string(&req).expect("requests serialise"));
        lines.push('\n');
    }
    lines
}

/// Checks the acceptance criteria for one batch of responses (indexed by id).
fn check_responses(corpus: &[CorpusRequest], responses: &HashMap<u64, Response>) {
    assert_eq!(responses.len(), corpus.len(), "one response per request");
    let mut cache_hits = 0u64;
    for (i, c) in corpus.iter().enumerate() {
        let resp = &responses[&(i as u64)];
        assert!(resp.ok, "request {i}: {:?}", resp.error);
        assert_eq!(resp.algorithm.as_deref(), Some(c.algorithm.as_str()), "request {i}");

        // Feasibility: every schedule validates against its instance.
        let net = ProcNetwork::fully_connected(c.procs);
        let schedule = resp.schedule.as_ref().unwrap_or_else(|| panic!("request {i}: no schedule"));
        schedule.validate(&c.graph, &net).unwrap_or_else(|e| panic!("request {i}: {e}"));
        assert_eq!(Some(schedule.makespan()), resp.schedule_length, "request {i}");

        // Quality contract, checked against the engine run directly.
        let problem = SchedulingProblem::new(c.graph.clone(), net);
        let tag = resp.quality.as_deref().unwrap_or_else(|| panic!("request {i}: no quality tag"));
        match tag {
            quality::OPTIMAL => {
                let optimum = AStarScheduler::new(&problem).run().schedule_length;
                assert_eq!(
                    resp.schedule_length,
                    Some(optimum),
                    "request {i}: optimal-tagged response off the conformance optimum"
                );
            }
            quality::ANYTIME | quality::HEURISTIC => {
                // No optimality claim, but never worse than list scheduling.
                assert!(
                    resp.schedule_length.unwrap() <= problem.upper_bound(),
                    "request {i}"
                );
            }
            other => panic!("request {i}: unknown quality tag `{other}`"),
        }

        // Deadline-constrained requests must *answer* — a schedule and a
        // tag, never an error shape.  (That an expired deadline cannot claim
        // `optimal` is enforced by `zero_deadline_requests_still_get_feasible
        // _schedules` below, where the deadline is guaranteed to expire;
        // here a 1 ms budget may legitimately complete and prove optimality.)
        if c.deadline_ms.is_some() {
            assert!(resp.error.is_none(), "request {i}: deadline answered with an error");
            assert!(resp.schedule.is_some(), "request {i}: deadline answered without a schedule");
            if tag == quality::OPTIMAL {
                // An optimal claim under a deadline is only legal if the
                // search genuinely completed — which the match above already
                // cross-checked against the conformance optimum.
                assert!(resp.cache_hit || resp.expanded > 0, "request {i}: empty optimal claim");
            }
        }
        if resp.cache_hit {
            cache_hits += 1;
        }
    }
    assert!(cache_hits > 0, "the repeated instances must be served from the cache");
}

#[test]
fn mixed_corpus_end_to_end_over_the_stream_transport() {
    let corpus = corpus();
    let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
    let input = request_lines(&corpus);

    let mut out = Vec::new();
    let summary = run_service(&service, input.as_bytes(), &mut out).expect("pool run");
    assert_eq!(summary.responses, corpus.len() as u64);
    assert_eq!(summary.errors, 0);
    assert!(summary.cache_hits > 0, "duplicate instances must hit the cache");

    let ordered: Vec<Response> = String::from_utf8(out)
        .expect("utf8 output")
        .lines()
        .map(|l| serde_json::from_str(l).expect("response parses"))
        .collect();
    // The per-connection writer reorders pool completions back into request
    // arrival order — ids were assigned 0..n in submission order, so that is
    // exactly the output order, whatever order the workers finished in.
    let output_ids: Vec<u64> = ordered.iter().map(|r| r.id).collect();
    assert_eq!(
        output_ids,
        (0..corpus.len() as u64).collect::<Vec<_>>(),
        "responses must arrive in request submission order"
    );
    let responses: HashMap<u64, Response> = ordered.into_iter().map(|r| (r.id, r)).collect();
    check_responses(&corpus, &responses);

    // The service-side counters agree with what the responses showed.
    let stats = service.cache_stats();
    assert!(stats.hits > 0, "cache hit counter must be > 0");
    assert_eq!(stats.hits, summary.cache_hits);
    assert!(stats.entries > 0);
    assert!(stats.hit_rate() > 0.0);
}

/// A deadline of 0 ms — no time at all — still yields a feasible, validated
/// schedule, not an error (the anytime fallback contract at its harshest).
#[test]
fn zero_deadline_requests_still_get_feasible_schedules() {
    let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
    let corpus = corpus();
    for (i, c) in corpus.iter().enumerate().take(4) {
        let mut req = Request::from(c);
        req.deadline_ms = Some(0);
        req.algorithm = None; // deadline pressure: the service picks wastar
        let resp = service.handle_request(&req, i as u64);
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.algorithm.as_deref(), Some("wastar"));
        let net = ProcNetwork::fully_connected(c.procs);
        resp.schedule.as_ref().unwrap().validate(&c.graph, &net).unwrap();
        let tag = resp.quality.as_deref().unwrap();
        assert!(
            tag == quality::ANYTIME || tag == quality::HEURISTIC,
            "0 ms cannot prove optimality, got {tag}"
        );
    }
}

#[test]
fn mixed_corpus_end_to_end_over_tcp() {
    let corpus = corpus();
    let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let service = &service;
        let listener = &listener;
        let server = scope.spawn(move || serve_tcp(service, listener, Some(1)));

        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        stream.write_all(request_lines(&corpus).as_bytes()).expect("send requests");
        // Half-close the write side so the server sees end-of-input and
        // drains its pool.
        stream.shutdown(std::net::Shutdown::Write).expect("shutdown write half");

        let mut responses: HashMap<u64, Response> = HashMap::new();
        let mut order: Vec<u64> = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).expect("read response") == 0 {
                break;
            }
            let r: Response = serde_json::from_str(line.trim()).expect("response parses");
            order.push(r.id);
            responses.insert(r.id, r);
        }
        // In-arrival-order delivery holds over TCP too.
        assert_eq!(order, (0..corpus.len() as u64).collect::<Vec<_>>());
        check_responses(&corpus, &responses);
        server.join().expect("server thread").expect("serve_tcp");
    });

    assert!(service.cache_stats().hits > 0);
}

//! Fault-injection net for the global service runtime: misbehaving clients —
//! disconnects mid-request, a half-written JSON line followed by a stall,
//! floods of malformed lines — must never wedge the shared pool, leak a
//! worker thread, or disturb another connection's replies.
//!
//! Every test here ends with the same three invariants:
//!
//! * `serve_tcp` **returns** (no wedged reader, writer or worker),
//! * `workers_spawned == configured pool size` (one global pool, no
//!   per-connection pools, no replacement threads spawned after faults),
//! * `pending == 0` (admission slots of dead clients were released — the
//!   budget is not leaked to future requests).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use optsched_procnet::ProcNetwork;
use optsched_service::{serve_tcp, Instance, Request, Response, SchedulingService, ServiceConfig};
use optsched_taskgraph::paper_example_dag;

fn request_line(id: u64) -> String {
    let mut req = Request::new(Instance::new(paper_example_dag(), ProcNetwork::ring(3)));
    req.id = Some(id);
    serde_json::to_string(&req).unwrap()
}

/// Reads responses until the server closes the connection.
fn read_responses(stream: &TcpStream) -> Vec<Response> {
    let mut out = Vec::new();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return out;
        }
        out.push(serde_json::from_str(line.trim()).expect("response parses"));
    }
}

/// A well-behaved client sends `ids` and expects exactly its own responses,
/// in order, all ok.
fn well_behaved_client(addr: std::net::SocketAddr, ids: &[u64]) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for &id in ids {
        stream.write_all(request_line(id).as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send newline");
    }
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let responses = read_responses(&stream);
    let got: Vec<u64> = responses.iter().map(|r| r.id).collect();
    assert_eq!(got, ids, "a well-behaved client gets exactly its own ids, in order");
    for r in &responses {
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.schedule_length, Some(14));
    }
}

#[test]
fn misbehaving_clients_do_not_wedge_the_pool_or_starve_others() {
    let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let service = &service;
        let listener = &listener;
        let server = scope.spawn(move || serve_tcp(service, listener, Some(4)));

        // Fault 1: disconnect mid-request — half a JSON object, no newline,
        // immediate teardown.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"{\"id\": 1, \"instance\": {\"graph\"").expect("send half");
            // Dropping the stream closes both halves abruptly.
        });

        // Fault 2: half a line, then a stall, then teardown — the reader
        // must survive blocking on a client that never finishes its line.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"{\"id\": 2, ").expect("send half");
            std::thread::sleep(Duration::from_millis(100));
        });

        // Fault 3: a flood of malformed lines — every one must be answered
        // with a structured error under its arrival sequence number; the
        // connection works fine afterwards.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            for _ in 0..20 {
                s.write_all(b"this is not json\n").expect("send garbage");
            }
            s.write_all(request_line(777).as_bytes()).expect("send valid");
            s.write_all(b"\n").expect("send newline");
            s.shutdown(std::net::Shutdown::Write).expect("half-close");
            let responses = read_responses(&s);
            assert_eq!(responses.len(), 21, "every line gets exactly one response");
            for (seq, r) in responses.iter().take(20).enumerate() {
                assert!(!r.ok);
                assert_eq!(r.id, seq as u64, "fallback id is the arrival sequence number");
                assert!(r.error.as_deref().unwrap().contains("malformed request"));
            }
            let last = responses.last().unwrap();
            assert!(last.ok, "{:?}", last.error);
            assert_eq!(last.id, 777);
        });

        // The victim: a well-behaved client sharing the pool with all three
        // faults must be completely unaffected.
        let victim = scope.spawn(move || well_behaved_client(addr, &[10, 11, 12]));

        victim.join().expect("victim client");
        server.join().expect("server thread").expect("serve_tcp returns cleanly");
    });

    let m = service.metrics_snapshot();
    assert_eq!(
        m.workers_spawned, 2,
        "one global pool: 4 connections still cost `workers` threads, and faults spawn none"
    );
    assert_eq!(m.pending, 0, "dead clients must not leak admission slots");
    assert!(m.responses >= 24 + 2, "faulted requests were still answered internally");
}

#[test]
fn disconnect_after_submit_releases_the_admission_slots() {
    // A client that submits real work and vanishes before reading: the pool
    // must still solve (or drain) its requests, release every admission
    // slot, and keep serving a later connection.
    let service = SchedulingService::new(ServiceConfig { workers: 2, ..Default::default() });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");

    std::thread::scope(|scope| {
        let service = &service;
        let listener = &listener;
        let server = scope.spawn(move || serve_tcp(service, listener, Some(2)));

        {
            let mut s = TcpStream::connect(addr).expect("connect");
            for id in 0..6 {
                s.write_all(request_line(id).as_bytes()).expect("send");
                s.write_all(b"\n").expect("send newline");
            }
            // Drop without reading a single response.
        }

        well_behaved_client(addr, &[100, 101]);
        server.join().expect("server thread").expect("serve_tcp");
    });

    let m = service.metrics_snapshot();
    assert_eq!(m.pending, 0, "the vanished client's slots were released");
    assert_eq!(m.workers_spawned, 2);
}

//! End-to-end tests of `algorithm: "auto"` — the deadline-aware portfolio.
//!
//! The contract under test:
//!
//! * no deadline (generous band) → a seeded exact search whose answers
//!   reproduce the pinned optima,
//! * `deadline_ms: 0` (tight band) → always a feasible schedule, never an
//!   error, tagged with the `auto_anytime` plan,
//! * a mid-band deadline → the staged race (`auto_raced`), still feasible
//!   and never worse than the list upper bound,
//! * dominance: `auto` never returns a longer schedule than a plain
//!   `wastar` request for the same instance and deadline,
//! * the cache keys on the *resolved* plan: an exact auto answer interns
//!   with direct exact requests, and a completed `wastar` entry can
//!   warm-start a later generous auto search (counted in
//!   `auto_warm_starts`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use optsched_core::SchedulingProblem;
use optsched_procnet::ProcNetwork;
use optsched_service::{
    plan, quality, Instance, InstanceFeatures, Request, SchedulingService, ServiceConfig,
};
use optsched_taskgraph::paper_example_dag;
use optsched_workload::{generate_random_dag, RandomDagConfig};

fn auto_request(instance: Instance, deadline_ms: Option<u64>) -> Request {
    let mut req = Request::new(instance);
    req.algorithm = Some("auto".to_string());
    req.deadline_ms = deadline_ms;
    req
}

fn random_instance(nodes: usize, ccr: f64, seed: u64) -> Instance {
    let graph = generate_random_dag(
        &RandomDagConfig { nodes, ccr, ..Default::default() },
        &mut StdRng::seed_from_u64(seed),
    );
    Instance::new(graph, ProcNetwork::fully_connected(3))
}

/// Generous band: `auto` with no deadline reproduces the pinned optima —
/// the paper example's 14, and serial A*'s answer on random instances
/// (including a high-CCR one, which routes to the Chen & Yu prover).
#[test]
fn auto_without_a_deadline_reproduces_the_pinned_optima() {
    let svc = SchedulingService::new(ServiceConfig::default());
    let resp = svc.handle_request(
        &auto_request(Instance::new(paper_example_dag(), ProcNetwork::ring(3)), None),
        0,
    );
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.schedule_length, Some(14));
    assert_eq!(resp.quality.as_deref(), Some(quality::OPTIMAL));
    assert_eq!(resp.plan.as_deref(), Some(plan::AUTO_EXACT));
    assert_ne!(resp.algorithm.as_deref(), Some("auto"), "the literal never reaches a response");

    for (seed, ccr) in [(1u64, 0.5), (2, 1.0), (3, 10.0)] {
        let instance = random_instance(9, ccr, seed);
        let auto_svc = SchedulingService::new(ServiceConfig::default());
        let auto = auto_svc.handle_request(&auto_request(instance.clone(), None), 0);
        assert!(auto.ok, "ccr={ccr}: {:?}", auto.error);
        assert_eq!(auto.quality.as_deref(), Some(quality::OPTIMAL), "ccr={ccr}");

        let mut exact = Request::new(instance);
        exact.algorithm = Some("astar".to_string());
        let reference = SchedulingService::new(ServiceConfig::default()).handle_request(&exact, 0);
        assert_eq!(auto.schedule_length, reference.schedule_length, "ccr={ccr}");
    }
    assert!(svc.metrics_snapshot().auto_exact >= 1);
}

/// Tight band: a 0 ms deadline is always feasible — the anytime plan's
/// pre-seeded incumbent — and never an error.
#[test]
fn auto_with_a_zero_deadline_is_always_feasible() {
    let svc = SchedulingService::new(ServiceConfig::default());
    for (seed, ccr) in [(10u64, 0.1), (11, 1.0), (12, 10.0)] {
        let instance = random_instance(10, ccr, seed);
        let resp = svc.handle_request(&auto_request(instance.clone(), Some(0)), seed);
        assert!(resp.ok, "ccr={ccr}: {:?}", resp.error);
        assert_eq!(resp.plan.as_deref(), Some(plan::AUTO_ANYTIME));
        assert_eq!(resp.algorithm.as_deref(), Some("wastar"));
        resp.schedule
            .expect("feasible schedule even at 0 ms")
            .validate(&instance.graph, &instance.network)
            .unwrap();
    }
    assert_eq!(svc.metrics_snapshot().auto_anytime, 3);
}

/// Mid band: the staged race answers with the `auto_raced` plan, a feasible
/// schedule no longer than the list upper bound, and reports the exact
/// algorithm of its second leg.
#[test]
fn auto_mid_band_races_and_stays_feasible() {
    let instance = Instance::new(paper_example_dag(), ProcNetwork::ring(3));
    let predicted = InstanceFeatures::of(&instance).predicted_exact_ms();
    let svc = SchedulingService::new(ServiceConfig::default());
    let resp = svc.handle_request(&auto_request(instance.clone(), Some(predicted * 2)), 0);
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(resp.plan.as_deref(), Some(plan::AUTO_RACED));
    assert_ne!(resp.algorithm.as_deref(), Some("auto"));
    let schedule = resp.schedule.expect("the race always has an incumbent");
    schedule.validate(&instance.graph, &instance.network).unwrap();
    let ub = SchedulingProblem::new(instance.graph.clone(), instance.network.clone()).upper_bound();
    assert!(schedule.makespan() <= ub, "{} > list bound {ub}", schedule.makespan());
    assert_eq!(svc.metrics_snapshot().auto_raced, 1);
}

/// Dominance: for the same instance and deadline, `auto` never returns a
/// longer schedule than a plain `wastar` request.  Checked at the three
/// deterministic deadlines — none (both complete), 0 ms (both return the
/// identical pre-seeded incumbent) and a generous 10 s (no truncation on
/// any plausible machine) — so the comparison cannot flake on wall-clock.
#[test]
fn auto_is_never_worse_than_plain_wastar() {
    for seed in [21u64, 22, 23] {
        for ccr in [0.5, 1.0, 10.0] {
            for deadline in [None, Some(0u64), Some(10_000)] {
                let instance = random_instance(9, ccr, seed);
                let auto_resp = SchedulingService::new(ServiceConfig::default())
                    .handle_request(&auto_request(instance.clone(), deadline), 0);
                let mut wastar_req = Request::new(instance);
                wastar_req.algorithm = Some("wastar".to_string());
                wastar_req.deadline_ms = deadline;
                let wastar_resp = SchedulingService::new(ServiceConfig::default())
                    .handle_request(&wastar_req, 0);
                assert!(auto_resp.ok && wastar_resp.ok);
                assert!(
                    auto_resp.schedule_length <= wastar_resp.schedule_length,
                    "seed={seed} ccr={ccr} deadline={deadline:?}: auto {:?} > wastar {:?}",
                    auto_resp.schedule_length,
                    wastar_resp.schedule_length,
                );
            }
        }
    }
}

/// Cache identity: an exact auto answer is memoized under the *resolved*
/// exact algorithm, so a direct request for that algorithm hits it — and a
/// repeated auto request hits it too, still tagged with its plan.
#[test]
fn auto_answers_intern_under_the_resolved_identity() {
    let instance = random_instance(8, 0.5, 31);
    let svc = SchedulingService::new(ServiceConfig::default());
    let first = svc.handle_request(&auto_request(instance.clone(), None), 0);
    assert!(first.ok && !first.cache_hit);
    let resolved = first.algorithm.clone().expect("resolved algorithm reported");
    assert_ne!(resolved, "auto");

    let mut direct = Request::new(instance.clone());
    direct.algorithm = Some(resolved);
    let second = svc.handle_request(&direct, 1);
    assert!(second.cache_hit, "direct exact request hits the auto-produced entry");
    assert_eq!(second.schedule_length, first.schedule_length);
    assert_eq!(second.plan, None, "a direct request carries no plan tag");

    let third = svc.handle_request(&auto_request(instance, None), 2);
    assert!(third.cache_hit);
    assert_eq!(third.plan.as_deref(), Some(plan::AUTO_EXACT));
    assert_eq!(third.expanded, first.expanded, "hits carry the producing run's provenance");
}

/// Tight answers must never serve a generous request: a 0 ms auto answer
/// lives under the anytime identity, so the same instance asked with no
/// deadline still runs (and proves) the real search.
#[test]
fn tight_answers_never_serve_generous_requests() {
    let instance = random_instance(8, 1.0, 41);
    let svc = SchedulingService::new(ServiceConfig::default());
    let tight = svc.handle_request(&auto_request(instance.clone(), Some(0)), 0);
    assert!(tight.ok);
    assert_ne!(tight.quality.as_deref(), Some(quality::OPTIMAL));
    let generous = svc.handle_request(&auto_request(instance, None), 1);
    assert!(!generous.cache_hit, "a tight heuristic answer must not alias the exact band");
    assert_eq!(generous.quality.as_deref(), Some(quality::OPTIMAL));
}

/// Warm start: a completed `wastar` result in the cache seeds a later
/// generous auto search on the same instance — counted in
/// `auto_warm_starts` — and the exact answer is never worse than the donor.
#[test]
fn cached_near_matches_warm_start_generous_auto_searches() {
    // Find an instance whose list bound is *not* already optimal, so the
    // wastar donor genuinely tightens the incumbent (and is counted).
    for seed in 50u64..70 {
        let instance = random_instance(10, 1.0, seed);
        let problem =
            SchedulingProblem::new(instance.graph.clone(), instance.network.clone());
        let svc = SchedulingService::new(ServiceConfig::default());
        let mut donor_req = Request::new(instance.clone());
        donor_req.algorithm = Some("wastar".to_string());
        let donor = svc.handle_request(&donor_req, 0);
        assert!(donor.ok);
        let donor_len = donor.schedule_length.unwrap();
        if donor_len >= problem.upper_bound() {
            continue; // the donor would not tighten anything; try another seed
        }

        let auto = svc.handle_request(&auto_request(instance, None), 1);
        assert!(auto.ok, "{:?}", auto.error);
        assert!(!auto.cache_hit, "the exact band has no entry yet");
        assert_eq!(auto.quality.as_deref(), Some(quality::OPTIMAL));
        assert!(auto.schedule_length.unwrap() <= donor_len, "warm start only ever tightens");
        assert!(
            svc.metrics_snapshot().auto_warm_starts >= 1,
            "the adopted donor is counted"
        );
        return;
    }
    panic!("no seed in 50..70 produced a donor below the list bound");
}

//! Weighted directed-acyclic task-graph substrate for the `optsched` workspace.
//!
//! A parallel program whose task processing times, data dependencies and
//! synchronisations are known a priori is modelled as a node- and
//! edge-weighted directed acyclic graph (DAG): nodes are indivisible,
//! non-preemptible tasks with a *computation cost*, and edges carry the
//! *communication cost* paid when the two endpoint tasks run on different
//! processors (intra-processor communication is free).
//!
//! This crate provides:
//!
//! * [`TaskGraph`] — an immutable, validated DAG with O(1) access to
//!   predecessors/successors, built through [`GraphBuilder`];
//! * [`levels`] — the classic scheduling attributes: *t-level* (top level),
//!   *b-level* (bottom level), *static level*, ALAP times, the critical path
//!   and the communication-to-computation ratio (CCR);
//! * [`topo`] — topological orderings and reachability queries;
//! * [`dot`] — Graphviz export for debugging and documentation;
//! * serde support on every public type so graphs can be stored as JSON.
//!
//! # Example
//!
//! The 6-node graph of Figure 1(a) of Kwok & Ahmad (ICPP'98):
//!
//! ```
//! use optsched_taskgraph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new();
//! let n: Vec<NodeId> = [2u64, 3, 3, 4, 5, 2].iter().map(|&w| b.add_node(w)).collect();
//! b.add_edge(n[0], n[1], 1).unwrap();
//! b.add_edge(n[0], n[2], 1).unwrap();
//! b.add_edge(n[0], n[3], 2).unwrap();
//! b.add_edge(n[1], n[4], 1).unwrap();
//! b.add_edge(n[2], n[4], 1).unwrap();
//! b.add_edge(n[3], n[5], 4).unwrap();
//! b.add_edge(n[4], n[5], 5).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 6);
//! assert_eq!(g.critical_path_length(), 19);
//! ```

#![warn(missing_docs)]

pub mod dot;
pub mod error;
pub mod graph;
pub mod levels;
pub mod topo;

pub use error::GraphError;
pub use graph::{paper_example_dag, Cost, EdgeData, GraphBuilder, NodeData, NodeId, TaskGraph};
pub use levels::{GraphLevels, LevelKind};
pub use topo::TopoOrder;

//! Topological orderings and reachability queries.

use crate::graph::{NodeId, TaskGraph};

/// A topological ordering of a [`TaskGraph`].
///
/// Produced by Kahn's algorithm; among nodes whose predecessors are all
/// emitted, the one with the smallest id is emitted first, so the order is
/// deterministic for a given graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoOrder {
    order: Vec<NodeId>,
    /// `position[i]` = index of node `i` in `order`.
    position: Vec<usize>,
}

impl TopoOrder {
    /// Computes a topological order, or `None` if the graph contains a cycle.
    ///
    /// (Graphs built through [`crate::GraphBuilder`] are always acyclic; the
    /// `Option` exists because the builder itself uses this function for its
    /// cycle check.)
    pub fn compute(g: &TaskGraph) -> Option<TopoOrder> {
        let v = g.num_nodes();
        let mut indeg: Vec<usize> = (0..v).map(|i| g.in_degree(NodeId(i as u32))).collect();
        // Min-id-first frontier for determinism. A BinaryHeap over Reverse
        // would be O(v log v); with the small frontier sizes typical of task
        // graphs a sorted Vec used as a stack is simpler and fast enough.
        let mut ready: Vec<NodeId> =
            (0..v as u32).map(NodeId).filter(|&n| indeg[n.index()] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // descending; pop() yields min
        let mut order = Vec::with_capacity(v);
        while let Some(n) = ready.pop() {
            order.push(n);
            for &(c, _) in g.successors(n) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    // Insert keeping descending order.
                    let pos = ready.partition_point(|&x| x > c);
                    ready.insert(pos, c);
                }
            }
        }
        if order.len() != v {
            return None;
        }
        let mut position = vec![0usize; v];
        for (i, &n) in order.iter().enumerate() {
            position[n.index()] = i;
        }
        Some(TopoOrder { order, position })
    }

    /// The nodes in topological order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `n` within the order (0 = first).
    pub fn position(&self, n: NodeId) -> usize {
        self.position[n.index()]
    }

    /// Iterate in reverse topological order (exits first).
    pub fn reverse(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().rev().copied()
    }
}

/// Returns, for every node, the set of nodes reachable from it (its
/// descendants), as a vector of boolean masks indexed `[from][to]`.
///
/// O(v·e / 64) using word-parallel bitsets; intended for analyses and tests,
/// not for the inner search loop.
pub fn descendants(g: &TaskGraph) -> Vec<Vec<bool>> {
    let v = g.num_nodes();
    let topo = TopoOrder::compute(g).expect("TaskGraph is always acyclic");
    let mut reach = vec![vec![false; v]; v];
    for n in topo.reverse() {
        for &(c, _) in g.successors(n) {
            reach[n.index()][c.index()] = true;
            let (head, tail) = split_two(&mut reach, n.index(), c.index());
            for (a, b) in head.iter_mut().zip(tail.iter()) {
                *a = *a || *b;
            }
        }
    }
    reach
}

/// Splits `m` to obtain simultaneous `&mut m[i]` and `&m[j]` (i != j).
fn split_two(m: &mut [Vec<bool>], i: usize, j: usize) -> (&mut Vec<bool>, &Vec<bool>) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = m.split_at_mut(j);
        (&mut a[i], &b[0])
    } else {
        let (a, b) = m.split_at_mut(i);
        (&mut b[0], &a[j])
    }
}

/// True if `ancestor` can reach `descendant` through directed edges.
pub fn reaches(g: &TaskGraph, ancestor: NodeId, descendant: NodeId) -> bool {
    if ancestor == descendant {
        return true;
    }
    let mut stack = vec![ancestor];
    let mut seen = vec![false; g.num_nodes()];
    seen[ancestor.index()] = true;
    while let Some(n) = stack.pop() {
        for &(c, _) in g.successors(n) {
            if c == descendant {
                return true;
            }
            if !seen[c.index()] {
                seen[c.index()] = true;
                stack.push(c);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_dag, GraphBuilder};

    #[test]
    fn topo_order_respects_precedence() {
        let g = paper_example_dag();
        let topo = TopoOrder::compute(&g).unwrap();
        for e in g.edges() {
            assert!(
                topo.position(e.src) < topo.position(e.dst),
                "edge {} -> {} violated",
                e.src,
                e.dst
            );
        }
        assert_eq!(topo.order().len(), g.num_nodes());
    }

    #[test]
    fn topo_order_is_deterministic_min_id_first() {
        // Two independent chains: ids interleave deterministically.
        let mut b = GraphBuilder::new();
        let a0 = b.add_node(1);
        let a1 = b.add_node(1);
        let b0 = b.add_node(1);
        let b1 = b.add_node(1);
        b.add_edge(a0, a1, 0).unwrap();
        b.add_edge(b0, b1, 0).unwrap();
        let g = b.build().unwrap();
        let topo = TopoOrder::compute(&g).unwrap();
        assert_eq!(topo.order(), &[a0, a1, b0, b1]);
    }

    #[test]
    fn reverse_iterates_exits_first() {
        let g = paper_example_dag();
        let topo = TopoOrder::compute(&g).unwrap();
        let first_in_reverse = topo.reverse().next().unwrap();
        assert_eq!(first_in_reverse, *topo.order().last().unwrap());
    }

    #[test]
    fn reachability_on_example() {
        let g = paper_example_dag();
        assert!(reaches(&g, NodeId(0), NodeId(5)));
        assert!(reaches(&g, NodeId(1), NodeId(5)));
        assert!(!reaches(&g, NodeId(3), NodeId(4)));
        assert!(reaches(&g, NodeId(2), NodeId(2)));
        assert!(!reaches(&g, NodeId(5), NodeId(0)));
    }

    #[test]
    fn descendants_matches_reaches() {
        let g = paper_example_dag();
        let d = descendants(&g);
        for a in g.node_ids() {
            for b in g.node_ids() {
                if a == b {
                    continue;
                }
                assert_eq!(d[a.index()][b.index()], reaches(&g, a, b), "{a} -> {b}");
            }
        }
    }
}

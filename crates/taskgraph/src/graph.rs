//! Core DAG representation: nodes, weighted edges, and the [`GraphBuilder`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;

/// Time/cost unit used throughout the workspace.
///
/// Computation costs, communication costs, start/finish times and schedule
/// lengths are all expressed in the same (abstract) integer time unit, exactly
/// as in the paper's examples.
pub type Cost = u64;

/// Identifier of a task node.
///
/// Node ids are dense indices `0..v` assigned in insertion order, so they can
/// be used directly to index per-node vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Per-node payload: the computation cost and an optional human-readable label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeData {
    /// Computation cost `w(n)`: time a reference processor needs to execute the task.
    pub weight: Cost,
    /// Optional label used by the DOT exporter and the CLI.
    pub label: Option<String>,
}

/// A directed, weighted edge `(src, dst)` of the DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeData {
    /// Source (parent) node.
    pub src: NodeId,
    /// Destination (child) node.
    pub dst: NodeId,
    /// Communication cost `c(src, dst)` paid when the endpoints run on
    /// different processors.
    pub weight: Cost,
}

/// An immutable, validated, node- and edge-weighted DAG.
///
/// Construct one through [`GraphBuilder`]; the builder rejects self-loops,
/// duplicate edges, dangling endpoints and cyclic graphs, so every
/// `TaskGraph` in existence is a well-formed DAG.
///
/// # Wire format
///
/// `TaskGraph` (de)serialises as `{"nodes": [...], "edges": [...]}` — the
/// canonical parts only, *not* the derived adjacency lists.  Deserialisation
/// rebuilds the graph through [`GraphBuilder`], so a document carrying a
/// self-loop, a duplicate or dangling edge, or a cycle is rejected with a
/// [`GraphError`] message instead of producing an inconsistent graph (the
/// old derive-based format accepted arbitrary `succs`/`preds`; documents in
/// that format still parse — the extra fields are ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    /// `succs[i]` = (child id, edge weight) pairs, sorted by child id.
    succs: Vec<Vec<(NodeId, Cost)>>,
    /// `preds[i]` = (parent id, edge weight) pairs, sorted by parent id.
    preds: Vec<Vec<(NodeId, Cost)>>,
}

impl TaskGraph {
    /// Number of task nodes `v`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `e`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids in increasing order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The computation cost `w(n)` of a node.
    #[inline]
    pub fn weight(&self, n: NodeId) -> Cost {
        self.nodes[n.index()].weight
    }

    /// The node payload.
    #[inline]
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[EdgeData] {
        &self.edges
    }

    /// Successors (children) of `n` with the corresponding edge weights,
    /// sorted by child id.
    #[inline]
    pub fn successors(&self, n: NodeId) -> &[(NodeId, Cost)] {
        &self.succs[n.index()]
    }

    /// Predecessors (parents) of `n` with the corresponding edge weights,
    /// sorted by parent id.
    #[inline]
    pub fn predecessors(&self, n: NodeId) -> &[(NodeId, Cost)] {
        &self.preds[n.index()]
    }

    /// Communication cost of the edge `(src, dst)`, or `None` if no such edge exists.
    pub fn edge_weight(&self, src: NodeId, dst: NodeId) -> Option<Cost> {
        self.succs[src.index()]
            .binary_search_by_key(&dst, |&(c, _)| c)
            .ok()
            .map(|i| self.succs[src.index()][i].1)
    }

    /// In-degree (number of parents) of `n`.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.preds[n.index()].len()
    }

    /// Out-degree (number of children) of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succs[n.index()].len()
    }

    /// Entry nodes: nodes without parents.
    pub fn entry_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.in_degree(n) == 0).collect()
    }

    /// Exit nodes: nodes without children.
    pub fn exit_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.out_degree(n) == 0).collect()
    }

    /// Sum of all computation costs.
    pub fn total_computation(&self) -> Cost {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// Sum of all communication costs.
    pub fn total_communication(&self) -> Cost {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Communication-to-computation ratio: average edge weight divided by
    /// average node weight. Returns `0.0` for graphs with no edges.
    pub fn ccr(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        let avg_comm = self.total_communication() as f64 / self.edges.len() as f64;
        let avg_comp = self.total_computation() as f64 / self.nodes.len() as f64;
        if avg_comp == 0.0 {
            0.0
        } else {
            avg_comm / avg_comp
        }
    }

    /// Length of the critical path (longest path including node *and* edge
    /// weights from an entry to an exit node). Equals the maximum b-level.
    pub fn critical_path_length(&self) -> Cost {
        let levels = crate::levels::GraphLevels::compute(self);
        levels.critical_path_length()
    }

    /// A sequential lower bound on any schedule length: the critical path.
    pub fn schedule_length_lower_bound(&self) -> Cost {
        // Even on infinitely many processors, the critical path (with zeroed
        // edge costs when co-located) cannot be beaten by less than the
        // static-level of the entry nodes; the safe universal lower bound is
        // the *static* critical path (no edge costs), which is what optimal
        // searches use for sanity checks.
        let levels = crate::levels::GraphLevels::compute(self);
        levels
            .static_levels()
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Two nodes are *equivalent* in the sense of Definition 3 of the paper:
    /// same predecessor set, same successor set, same weight, and the same
    /// communication costs on the corresponding edges.
    ///
    /// Scheduling either node first leads to the same schedule length, so an
    /// optimal search only needs to keep one of the two resulting states.
    pub fn nodes_equivalent(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.weight(a) == self.weight(b)
            && self.preds[a.index()] == self.preds[b.index()]
            && self.succs[a.index()] == self.succs[b.index()]
    }

    /// Returns every equivalence class (per [`TaskGraph::nodes_equivalent`])
    /// with more than one member. Used by the node-equivalence pruning rule.
    pub fn equivalence_classes(&self) -> Vec<Vec<NodeId>> {
        // Group by (weight, preds, succs); BTreeMap keeps output deterministic.
        type EquivalenceKey = (Cost, Vec<(NodeId, Cost)>, Vec<(NodeId, Cost)>);
        let mut groups: BTreeMap<EquivalenceKey, Vec<NodeId>> = BTreeMap::new();
        for n in self.node_ids() {
            let key = (
                self.weight(n),
                self.preds[n.index()].clone(),
                self.succs[n.index()].clone(),
            );
            groups.entry(key).or_default().push(n);
        }
        groups.into_values().filter(|v| v.len() > 1).collect()
    }
}

impl serde::Serialize for TaskGraph {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("edges".to_string(), self.edges.to_value()),
        ])
    }
}

impl serde::Deserialize for TaskGraph {
    fn from_value(v: &serde::Value) -> Result<TaskGraph, serde::Error> {
        let pairs = v.as_object().ok_or_else(|| {
            serde::Error::custom(format!(
                "expected an object for `TaskGraph`, found {}",
                v.type_name()
            ))
        })?;
        let nodes = Vec::<NodeData>::from_value(serde::__field(pairs, "nodes"))
            .map_err(|e| serde::Error::custom(format!("field `nodes` of `TaskGraph`: {e}")))?;
        let edges = Vec::<EdgeData>::from_value(serde::__field(pairs, "edges"))
            .map_err(|e| serde::Error::custom(format!("field `edges` of `TaskGraph`: {e}")))?;
        // Rebuild through the builder so every invariant (dense ids, no
        // self-loops/duplicates/dangling edges, acyclicity) is re-validated.
        let mut b = GraphBuilder::with_capacity(nodes.len());
        for n in nodes {
            match n.label {
                Some(label) => b.add_labeled_node(n.weight, label),
                None => b.add_node(n.weight),
            };
        }
        for e in &edges {
            b.add_edge(e.src, e.dst, e.weight)
                .map_err(|err| serde::Error::custom(format!("invalid `TaskGraph` edges: {err}")))?;
        }
        b.build().map_err(|err| serde::Error::custom(format!("invalid `TaskGraph`: {err}")))
    }
}

/// Incremental builder for [`TaskGraph`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with room reserved for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self { nodes: Vec::with_capacity(nodes), edges: Vec::new() }
    }

    /// Adds a task with computation cost `weight`; returns its id.
    pub fn add_node(&mut self, weight: Cost) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { weight, label: None });
        id
    }

    /// Adds a labelled task with computation cost `weight`; returns its id.
    pub fn add_labeled_node(&mut self, weight: Cost, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { weight, label: Some(label.into()) });
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a directed edge `src -> dst` with communication cost `weight`.
    ///
    /// Fails immediately on unknown endpoints, self-loops and duplicate edges;
    /// cycles are detected later by [`GraphBuilder::build`].
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: Cost) -> Result<(), GraphError> {
        if src.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(src.index()));
        }
        if dst.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(dst.index()));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src.index()));
        }
        if self.edges.iter().any(|e| e.src == src && e.dst == dst) {
            return Err(GraphError::DuplicateEdge(src.index(), dst.index()));
        }
        self.edges.push(EdgeData { src, dst, weight });
        Ok(())
    }

    /// Validates and freezes the graph.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let v = self.nodes.len();
        let mut succs: Vec<Vec<(NodeId, Cost)>> = vec![Vec::new(); v];
        let mut preds: Vec<Vec<(NodeId, Cost)>> = vec![Vec::new(); v];
        for e in &self.edges {
            succs[e.src.index()].push((e.dst, e.weight));
            preds[e.dst.index()].push((e.src, e.weight));
        }
        for list in succs.iter_mut().chain(preds.iter_mut()) {
            list.sort_unstable_by_key(|&(n, _)| n);
        }
        let g = TaskGraph { nodes: self.nodes, edges: self.edges, succs, preds };
        // Cycle check via Kahn's algorithm.
        if crate::topo::TopoOrder::compute(&g).is_none() {
            return Err(GraphError::CycleDetected);
        }
        Ok(g)
    }
}

/// Constructs the 6-node example DAG of Figure 1(a) of the paper.
///
/// Node weights: n1=2, n2=3, n3=3, n4=4, n5=5, n6=2. Edge weights:
/// (n1,n2)=1, (n1,n3)=1, (n1,n4)=2, (n2,n5)=1, (n3,n5)=1, (n4,n6)=4, (n5,n6)=5.
/// These reproduce exactly the static levels, b-levels and t-levels listed in
/// Figure 2 and the `f = g + h` values of the search tree in Figure 3.
///
/// The paper indexes nodes from 1; this function returns ids 0..5 where id
/// `i` corresponds to the paper's `n(i+1)`.
pub fn paper_example_dag() -> TaskGraph {
    let mut b = GraphBuilder::new();
    let n1 = b.add_labeled_node(2, "n1");
    let n2 = b.add_labeled_node(3, "n2");
    let n3 = b.add_labeled_node(3, "n3");
    let n4 = b.add_labeled_node(4, "n4");
    let n5 = b.add_labeled_node(5, "n5");
    let n6 = b.add_labeled_node(2, "n6");
    b.add_edge(n1, n2, 1).unwrap();
    b.add_edge(n1, n3, 1).unwrap();
    b.add_edge(n1, n4, 2).unwrap();
    b.add_edge(n2, n5, 1).unwrap();
    b.add_edge(n3, n5, 1).unwrap();
    b.add_edge(n4, n6, 4).unwrap();
    b.add_edge(n5, n6, 5).unwrap();
    b.build().expect("example DAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskGraph {
        // a -> b, a -> c, b -> d, c -> d
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let x = b.add_node(2);
        let y = b.add_node(3);
        let d = b.add_node(4);
        b.add_edge(a, x, 10).unwrap();
        b.add_edge(a, y, 20).unwrap();
        b.add_edge(x, d, 30).unwrap();
        b.add_edge(y, d, 40).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.add_node(1), NodeId(0));
        assert_eq!(b.add_node(1), NodeId(1));
        assert_eq!(b.add_node(1), NodeId(2));
        assert_eq!(b.num_nodes(), 3);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        assert_eq!(b.add_edge(a, NodeId(9), 1), Err(GraphError::UnknownNode(9)));
        assert_eq!(b.add_edge(NodeId(9), a, 1), Err(GraphError::UnknownNode(9)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        assert_eq!(b.add_edge(a, a, 1), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_edge(a, c, 1).unwrap();
        assert_eq!(b.add_edge(a, c, 2), Err(GraphError::DuplicateEdge(0, 1)));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn cycle_rejected() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        let d = b.add_node(1);
        b.add_edge(a, c, 1).unwrap();
        b.add_edge(c, d, 1).unwrap();
        b.add_edge(d, a, 1).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::CycleDetected);
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.successors(NodeId(0)), &[(NodeId(1), 10), (NodeId(2), 20)]);
        assert_eq!(g.predecessors(NodeId(3)), &[(NodeId(1), 30), (NodeId(2), 40)]);
        assert_eq!(g.edge_weight(NodeId(1), NodeId(3)), Some(30));
        assert_eq!(g.edge_weight(NodeId(3), NodeId(1)), None);
    }

    #[test]
    fn entry_and_exit_nodes() {
        let g = diamond();
        assert_eq!(g.entry_nodes(), vec![NodeId(0)]);
        assert_eq!(g.exit_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn totals_and_ccr() {
        let g = diamond();
        assert_eq!(g.total_computation(), 10);
        assert_eq!(g.total_communication(), 100);
        // avg comm = 25, avg comp = 2.5 -> CCR = 10
        assert!((g.ccr() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ccr_of_edgeless_graph_is_zero() {
        let mut b = GraphBuilder::new();
        b.add_node(5);
        b.add_node(5);
        let g = b.build().unwrap();
        assert_eq!(g.ccr(), 0.0);
    }

    #[test]
    fn paper_example_shape() {
        let g = paper_example_dag();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.entry_nodes(), vec![NodeId(0)]);
        assert_eq!(g.exit_nodes(), vec![NodeId(5)]);
        assert_eq!(g.weight(NodeId(4)), 5);
        assert_eq!(g.edge_weight(NodeId(3), NodeId(5)), Some(4));
    }

    #[test]
    fn paper_example_n2_n3_equivalent() {
        // The paper states that n2 and n3 are equivalent (Definition 3): same
        // predecessors, same successors, same weight, same edge costs.
        let g = paper_example_dag();
        assert!(g.nodes_equivalent(NodeId(1), NodeId(2)));
        assert_eq!(g.equivalence_classes(), vec![vec![NodeId(1), NodeId(2)]]);
        // Nodes with differing edge costs to the same successor are not
        // equivalent under the strict definition.
        let mut b = GraphBuilder::new();
        let a = b.add_node(1);
        let x = b.add_node(3);
        let y = b.add_node(3);
        let z = b.add_node(1);
        b.add_edge(a, x, 2).unwrap();
        b.add_edge(a, y, 9).unwrap();
        b.add_edge(x, z, 1).unwrap();
        b.add_edge(y, z, 1).unwrap();
        let g2 = b.build().unwrap();
        assert!(!g2.nodes_equivalent(NodeId(1), NodeId(2)));
        assert!(g2.equivalence_classes().is_empty());
    }

    #[test]
    fn node_is_equivalent_to_itself() {
        let g = diamond();
        for n in g.node_ids() {
            assert!(g.nodes_equivalent(n, n));
        }
    }

    #[test]
    fn serde_round_trip() {
        let g = paper_example_dag();
        let json = serde_json::to_string(&g).unwrap();
        let g2: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }

    /// The wire format carries only the canonical parts; adjacency is derived.
    #[test]
    fn wire_format_is_nodes_plus_edges_only() {
        let json = serde_json::to_string(&paper_example_dag()).unwrap();
        assert!(json.contains("\"nodes\""));
        assert!(json.contains("\"edges\""));
        assert!(!json.contains("\"succs\""), "derived adjacency must not be serialised: {json}");
        assert!(!json.contains("\"preds\""));
    }

    /// Deserialisation re-validates: structurally broken documents are
    /// rejected with a clear error instead of yielding an inconsistent graph.
    #[test]
    fn malformed_graph_documents_are_rejected() {
        // A cycle.
        let cyclic = r#"{"nodes": [{"weight": 1, "label": null}, {"weight": 1, "label": null}],
                         "edges": [{"src": 0, "dst": 1, "weight": 1},
                                   {"src": 1, "dst": 0, "weight": 1}]}"#;
        let err = serde_json::from_str::<TaskGraph>(cyclic).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");

        // A dangling edge endpoint.
        let dangling = r#"{"nodes": [{"weight": 1, "label": null}],
                           "edges": [{"src": 0, "dst": 7, "weight": 1}]}"#;
        assert!(serde_json::from_str::<TaskGraph>(dangling).is_err());

        // A self-loop.
        let self_loop = r#"{"nodes": [{"weight": 1, "label": null}],
                            "edges": [{"src": 0, "dst": 0, "weight": 1}]}"#;
        assert!(serde_json::from_str::<TaskGraph>(self_loop).is_err());

        // An empty node list.
        assert!(serde_json::from_str::<TaskGraph>(r#"{"nodes": [], "edges": []}"#).is_err());

        // Not an object at all.
        assert!(serde_json::from_str::<TaskGraph>("[1, 2, 3]").is_err());
    }

    #[test]
    fn display_of_node_id() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(NodeId(4).index(), 4);
    }
}

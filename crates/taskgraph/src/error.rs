//! Error types for task-graph construction and validation.

use std::fmt;

/// Errors that can arise while building or validating a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint refers to a node id that was never added.
    UnknownNode(usize),
    /// The same directed edge was added twice.
    DuplicateEdge(usize, usize),
    /// A self-loop `(n, n)` was added.
    SelfLoop(usize),
    /// The finished graph contains a directed cycle, so it is not a DAG.
    CycleDetected,
    /// The graph has no nodes at all.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "edge refers to unknown node n{id}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge (n{a}, n{b})"),
            GraphError::SelfLoop(id) => write!(f, "self loop on node n{id}"),
            GraphError::CycleDetected => write!(f, "graph contains a cycle; not a DAG"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_nodes() {
        assert_eq!(GraphError::UnknownNode(3).to_string(), "edge refers to unknown node n3");
        assert_eq!(GraphError::DuplicateEdge(1, 2).to_string(), "duplicate edge (n1, n2)");
        assert_eq!(GraphError::SelfLoop(7).to_string(), "self loop on node n7");
        assert!(GraphError::CycleDetected.to_string().contains("cycle"));
        assert!(GraphError::Empty.to_string().contains("no nodes"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(GraphError::CycleDetected);
        assert!(e.source().is_none());
    }
}

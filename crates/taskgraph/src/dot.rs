//! Graphviz (DOT) export of task graphs, for documentation and debugging.

use std::fmt::Write as _;

use crate::graph::{NodeId, TaskGraph};
use crate::levels::GraphLevels;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph <name> { ... }` header.
    pub name: String,
    /// Annotate each node with its b-level / t-level.
    pub show_levels: bool,
    /// Highlight one critical path with bold edges.
    pub highlight_critical_path: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions { name: "taskgraph".to_string(), show_levels: false, highlight_critical_path: false }
    }
}

/// Renders `g` as a Graphviz DOT string.
pub fn to_dot(g: &TaskGraph, opts: &DotOptions) -> String {
    let levels = GraphLevels::compute(g);
    let cp: Vec<NodeId> = if opts.highlight_critical_path { levels.critical_path(g) } else { Vec::new() };
    let on_cp_edge = |a: NodeId, b: NodeId| cp.windows(2).any(|w| w[0] == a && w[1] == b);

    let mut out = String::new();
    writeln!(out, "digraph {} {{", sanitize(&opts.name)).unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    for n in g.node_ids() {
        let label = match &g.node(n).label {
            Some(l) => l.clone(),
            None => format!("n{}", n.0),
        };
        let mut text = format!("{}\\nw={}", label, g.weight(n));
        if opts.show_levels {
            write!(text, "\\nb={} t={}", levels.b_level(n), levels.t_level(n)).unwrap();
        }
        writeln!(out, "  {} [label=\"{}\"];", n.0, text).unwrap();
    }
    for e in g.edges() {
        let style = if on_cp_edge(e.src, e.dst) { ", style=bold, color=red" } else { "" };
        writeln!(out, "  {} -> {} [label=\"{}\"{}];", e.src.0, e.dst.0, e.weight, style).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_dag;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let g = paper_example_dag();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph taskgraph {"));
        for n in g.node_ids() {
            assert!(dot.contains(&format!("  {} [", n.0)), "missing node {n}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_levels_and_critical_path_annotations() {
        let g = paper_example_dag();
        let opts = DotOptions {
            name: "example dag".into(),
            show_levels: true,
            highlight_critical_path: true,
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.starts_with("digraph example_dag {"));
        assert!(dot.contains("b=19 t=0"));
        // CP n1->n2->n5->n6 has three bold edges.
        assert_eq!(dot.matches("style=bold").count(), 3);
    }

    #[test]
    fn sanitize_empty_name() {
        let g = paper_example_dag();
        let dot = to_dot(&g, &DotOptions { name: "!!!".into(), ..Default::default() });
        assert!(dot.starts_with("digraph ___ {"));
        let dot2 = to_dot(&g, &DotOptions { name: "".into(), ..Default::default() });
        assert!(dot2.starts_with("digraph g {"));
    }
}

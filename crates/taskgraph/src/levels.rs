//! Scheduling attributes of a DAG: t-levels, b-levels, static levels, ALAP
//! times and the critical path.
//!
//! * The **t-level** (top level) of a node is the length of the longest path
//!   from an entry node to the node, *excluding* the node itself, where the
//!   length of a path is the sum of all node and edge weights along it.
//! * The **b-level** (bottom level) of a node is the length of the longest
//!   path from the node (inclusive) to an exit node, again counting node and
//!   edge weights.
//! * The **static level** `sl` is the b-level computed without edge weights.
//! * The **critical path** (CP) is a longest path through the DAG; its length
//!   equals the largest b-level.
//! * The **ALAP** (as-late-as-possible) time of a node is
//!   `CP length − b-level(n)`.
//!
//! All of these are computed in `O(v + e)` by a single pass over a
//! topological order and its reverse, matching the paper's observation that
//! the attributes are obtainable with standard graph traversals.

use crate::graph::{Cost, NodeId, TaskGraph};
use crate::topo::TopoOrder;

/// Which level attribute to use when ranking nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// Top level (length of longest entry→node path, excluding the node).
    TLevel,
    /// Bottom level (length of longest node→exit path, including the node).
    BLevel,
    /// Static level (b-level without edge costs).
    StaticLevel,
    /// b-level + t-level, the priority used by the paper's search.
    BPlusT,
}

/// Precomputed level attributes for every node of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphLevels {
    t_level: Vec<Cost>,
    b_level: Vec<Cost>,
    static_level: Vec<Cost>,
    cp_length: Cost,
}

impl GraphLevels {
    /// Computes all attributes for `g`.
    pub fn compute(g: &TaskGraph) -> GraphLevels {
        let v = g.num_nodes();
        let topo = TopoOrder::compute(g).expect("TaskGraph is always acyclic");

        // t-level: forward pass.
        let mut t_level = vec![0 as Cost; v];
        for &n in topo.order() {
            let mut best = 0;
            for &(p, c) in g.predecessors(n) {
                best = best.max(t_level[p.index()] + g.weight(p) + c);
            }
            t_level[n.index()] = best;
        }

        // b-level and static level: backward pass.
        let mut b_level = vec![0 as Cost; v];
        let mut static_level = vec![0 as Cost; v];
        for n in topo.reverse() {
            let w = g.weight(n);
            let mut best_b = 0;
            let mut best_s = 0;
            for &(c, comm) in g.successors(n) {
                best_b = best_b.max(comm + b_level[c.index()]);
                best_s = best_s.max(static_level[c.index()]);
            }
            b_level[n.index()] = w + best_b;
            static_level[n.index()] = w + best_s;
        }

        let cp_length = b_level.iter().copied().max().unwrap_or(0);
        GraphLevels { t_level, b_level, static_level, cp_length }
    }

    /// t-level of `n`.
    #[inline]
    pub fn t_level(&self, n: NodeId) -> Cost {
        self.t_level[n.index()]
    }

    /// b-level of `n`.
    #[inline]
    pub fn b_level(&self, n: NodeId) -> Cost {
        self.b_level[n.index()]
    }

    /// Static level `sl(n)` of `n`.
    #[inline]
    pub fn static_level(&self, n: NodeId) -> Cost {
        self.static_level[n.index()]
    }

    /// ALAP start time of `n` (critical-path length minus b-level).
    #[inline]
    pub fn alap(&self, n: NodeId) -> Cost {
        self.cp_length - self.b_level[n.index()]
    }

    /// The priority used by the paper when ordering ready nodes:
    /// b-level + t-level (larger = more urgent).
    #[inline]
    pub fn b_plus_t(&self, n: NodeId) -> Cost {
        self.b_level[n.index()] + self.t_level[n.index()]
    }

    /// The requested attribute for `n`.
    pub fn level(&self, kind: LevelKind, n: NodeId) -> Cost {
        match kind {
            LevelKind::TLevel => self.t_level(n),
            LevelKind::BLevel => self.b_level(n),
            LevelKind::StaticLevel => self.static_level(n),
            LevelKind::BPlusT => self.b_plus_t(n),
        }
    }

    /// All t-levels, indexed by node id.
    pub fn t_levels(&self) -> &[Cost] {
        &self.t_level
    }

    /// All b-levels, indexed by node id.
    pub fn b_levels(&self) -> &[Cost] {
        &self.b_level
    }

    /// All static levels, indexed by node id.
    pub fn static_levels(&self) -> &[Cost] {
        &self.static_level
    }

    /// Length of the critical path (max b-level).
    #[inline]
    pub fn critical_path_length(&self) -> Cost {
        self.cp_length
    }

    /// One critical path: a longest entry→exit path, as a list of node ids.
    ///
    /// Ties are broken toward smaller node ids so the result is deterministic.
    pub fn critical_path(&self, g: &TaskGraph) -> Vec<NodeId> {
        // Start from a node with maximal b-level among entry nodes.
        let start = g
            .entry_nodes()
            .into_iter()
            .max_by_key(|&n| (self.b_level(n), std::cmp::Reverse(n)))
            .expect("non-empty graph");
        let mut path = vec![start];
        let mut cur = start;
        loop {
            // Next CP node: successor c maximising comm + b-level(c), i.e. the
            // one through which the b-level of `cur` was attained.
            let target = self.b_level(cur) - g.weight(cur);
            let next = g
                .successors(cur)
                .iter()
                .filter(|&&(c, comm)| comm + self.b_level(c) == target)
                .map(|&(c, _)| c)
                .min();
            match next {
                Some(c) => {
                    path.push(c);
                    cur = c;
                }
                None => break,
            }
        }
        path
    }

    /// Nodes sorted by decreasing priority of the given kind; ties broken by
    /// ascending node id (the paper breaks ties randomly; a fixed rule keeps
    /// every run reproducible).
    pub fn nodes_by_priority(&self, g: &TaskGraph, kind: LevelKind) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = g.node_ids().collect();
        nodes.sort_by_key(|&n| (std::cmp::Reverse(self.level(kind, n)), n));
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_dag, GraphBuilder};

    /// Figure 2 of the paper: sl, b-level and t-level of every node of the
    /// example DAG in Figure 1(a).
    #[test]
    fn fig2_levels_of_example_dag() {
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        let expected = [
            // (sl, b-level, t-level)
            (12, 19, 0), // n1
            (10, 16, 3), // n2
            (10, 16, 3), // n3
            (6, 10, 4),  // n4
            (7, 12, 7),  // n5
            (2, 2, 17),  // n6
        ];
        for (i, &(sl, b, t)) in expected.iter().enumerate() {
            let n = NodeId(i as u32);
            assert_eq!(l.static_level(n), sl, "sl of n{}", i + 1);
            assert_eq!(l.b_level(n), b, "b-level of n{}", i + 1);
            assert_eq!(l.t_level(n), t, "t-level of n{}", i + 1);
        }
        assert_eq!(l.critical_path_length(), 19);
    }

    #[test]
    fn critical_path_of_example_dag() {
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        // CP: n1 -> n2 -> n5 -> n6 (length 2+1+3+1+5+5+2 = 19).
        let cp = l.critical_path(&g);
        assert_eq!(cp, vec![NodeId(0), NodeId(1), NodeId(4), NodeId(5)]);
        let mut len = 0;
        for w in cp.windows(2) {
            len += g.weight(w[0]) + g.edge_weight(w[0], w[1]).unwrap();
        }
        len += g.weight(*cp.last().unwrap());
        assert_eq!(len, l.critical_path_length());
    }

    #[test]
    fn entry_nodes_have_zero_t_level() {
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        for n in g.entry_nodes() {
            assert_eq!(l.t_level(n), 0);
        }
    }

    #[test]
    fn exit_nodes_b_level_equals_weight() {
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        for n in g.exit_nodes() {
            assert_eq!(l.b_level(n), g.weight(n));
            assert_eq!(l.static_level(n), g.weight(n));
        }
    }

    #[test]
    fn alap_of_cp_nodes_equals_t_level_when_ccr_consistent() {
        // On the critical path, ALAP == t-level.
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        for &n in &l.critical_path(&g) {
            assert_eq!(l.alap(n), l.t_level(n), "node {n}");
        }
    }

    #[test]
    fn static_level_never_exceeds_b_level() {
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        for n in g.node_ids() {
            assert!(l.static_level(n) <= l.b_level(n));
        }
    }

    #[test]
    fn single_node_graph() {
        let mut b = GraphBuilder::new();
        let n = b.add_node(7);
        let g = b.build().unwrap();
        let l = GraphLevels::compute(&g);
        assert_eq!(l.t_level(n), 0);
        assert_eq!(l.b_level(n), 7);
        assert_eq!(l.static_level(n), 7);
        assert_eq!(l.critical_path_length(), 7);
        assert_eq!(l.critical_path(&g), vec![n]);
    }

    #[test]
    fn chain_levels() {
        // a(1) -5-> b(2) -7-> c(3)
        let mut bd = GraphBuilder::new();
        let a = bd.add_node(1);
        let b = bd.add_node(2);
        let c = bd.add_node(3);
        bd.add_edge(a, b, 5).unwrap();
        bd.add_edge(b, c, 7).unwrap();
        let g = bd.build().unwrap();
        let l = GraphLevels::compute(&g);
        assert_eq!(l.t_level(a), 0);
        assert_eq!(l.t_level(b), 6);
        assert_eq!(l.t_level(c), 15);
        assert_eq!(l.b_level(a), 18);
        assert_eq!(l.b_level(b), 12);
        assert_eq!(l.b_level(c), 3);
        assert_eq!(l.static_level(a), 6);
        assert_eq!(l.b_plus_t(b), 18);
        assert_eq!(l.alap(c), 15);
    }

    #[test]
    fn priority_ordering_by_b_plus_t() {
        let g = paper_example_dag();
        let l = GraphLevels::compute(&g);
        let order = l.nodes_by_priority(&g, LevelKind::BPlusT);
        // b+t: n1=19, n2=19, n3=19, n4=14, n5=19, n6=19; ties by id.
        assert_eq!(
            order,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4), NodeId(5), NodeId(3)]
        );
        let order_b = l.nodes_by_priority(&g, LevelKind::BLevel);
        assert_eq!(order_b[0], NodeId(0));
        let order_t = l.nodes_by_priority(&g, LevelKind::TLevel);
        assert_eq!(*order_t.last().unwrap(), NodeId(0));
        let order_s = l.nodes_by_priority(&g, LevelKind::StaticLevel);
        assert_eq!(order_s[0], NodeId(0));
    }
}

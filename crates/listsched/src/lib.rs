//! Polynomial-time list-scheduling heuristics.
//!
//! These serve two purposes in the reproduction:
//!
//! 1. **Upper bound for the optimal search.** Section 3.2 of the paper prunes
//!    any search state whose cost exceeds an upper bound `U` obtained from a
//!    linear-time heuristic (the FAST-style two-step procedure of reference
//!    [14]): build a task list in decreasing priority order, then schedule
//!    each task on the processor allowing the earliest start time.  This is
//!    [`upper_bound_schedule`] / [`upper_bound`].
//! 2. **Baselines.** The same machinery, parameterised by priority attribute
//!    (static level, b-level, t-level, b+t) and processor-selection policy
//!    (earliest start vs. earliest finish, append vs. insertion), provides the
//!    classic heuristics the paper's introduction positions the optimal
//!    algorithms against.
//!
//! All heuristics return a validated [`Schedule`] and run in
//! `O(v log v + (v + e) · p)`.

#![warn(missing_docs)]

use optsched_procnet::{ProcId, ProcNetwork};
use optsched_schedule::{
    earliest_start_time, earliest_start_time_insertion_with, Schedule, ScheduledTask,
};
use optsched_taskgraph::{Cost, GraphLevels, LevelKind, NodeId, TaskGraph};

/// How a processor is chosen for the task under consideration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorPolicy {
    /// Pick the processor on which the task can *start* earliest
    /// (the rule used by the paper's upper-bound heuristic).
    EarliestStart,
    /// Pick the processor on which the task *finishes* earliest
    /// (differs from `EarliestStart` only on heterogeneous systems).
    EarliestFinish,
}

/// Configuration of a list-scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListConfig {
    /// Node attribute used as the (static) priority; larger = scheduled earlier.
    pub priority: LevelKind,
    /// Processor selection rule.
    pub policy: ProcessorPolicy,
    /// If true, tasks may be inserted into idle slots; otherwise they are
    /// appended after the last task of the chosen processor.
    pub insertion: bool,
}

impl Default for ListConfig {
    fn default() -> Self {
        ListConfig {
            priority: LevelKind::BLevel,
            policy: ProcessorPolicy::EarliestStart,
            insertion: false,
        }
    }
}

/// Runs list scheduling with the given configuration and returns the schedule.
///
/// Tasks are consumed in decreasing priority among *ready* tasks (all
/// predecessors scheduled), which both reproduces the "schedule the list one
/// by one" behaviour for monotone priorities such as the b-level and stays
/// correct for non-monotone ones such as the t-level.
pub fn list_schedule(graph: &TaskGraph, net: &ProcNetwork, config: ListConfig) -> Schedule {
    let levels = GraphLevels::compute(graph);
    list_schedule_with_levels(graph, net, config, &levels)
}

/// Same as [`list_schedule`] but reuses precomputed levels.
pub fn list_schedule_with_levels(
    graph: &TaskGraph,
    net: &ProcNetwork,
    config: ListConfig,
    levels: &GraphLevels,
) -> Schedule {
    let v = graph.num_nodes();
    let mut schedule = Schedule::new(v, net.num_procs());
    let mut unscheduled_preds: Vec<usize> =
        graph.node_ids().map(|n| graph.in_degree(n)).collect();
    // Ready pool, re-sorted lazily: small graphs dominate our workloads, so a
    // simple Vec with linear extraction of the max-priority element is fast
    // and keeps tie-breaking (by node id) explicit and deterministic.
    let mut ready: Vec<NodeId> =
        graph.node_ids().filter(|&n| graph.in_degree(n) == 0).collect();
    // One task-list buffer reused across every insertion-EST probe below.
    let mut est_scratch: Vec<ScheduledTask> = Vec::new();

    for _ in 0..v {
        // Highest priority ready node; ties broken toward the smaller id.
        let (pos, &node) = ready
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| {
                levels
                    .level(config.priority, a)
                    .cmp(&levels.level(config.priority, b))
                    .then(b.cmp(&a))
            })
            .expect("ready pool must not be empty while nodes remain");
        ready.swap_remove(pos);

        // Choose the processor.
        let mut best: Option<(Cost, Cost, ProcId)> = None; // (key, start, proc)
        for proc in net.proc_ids() {
            let start = if config.insertion {
                earliest_start_time_insertion_with(
                    graph,
                    net,
                    &schedule,
                    node,
                    proc,
                    &mut est_scratch,
                )
            } else {
                earliest_start_time(graph, net, &schedule, node, proc)
            };
            let finish = start + net.exec_time(graph.weight(node), proc);
            let key = match config.policy {
                ProcessorPolicy::EarliestStart => start,
                ProcessorPolicy::EarliestFinish => finish,
            };
            if best.map_or(true, |(bk, _, bp)| key < bk || (key == bk && proc < bp)) {
                best = Some((key, start, proc));
            }
        }
        let (_, start, proc) = best.expect("network has at least one processor");
        let finish = start + net.exec_time(graph.weight(node), proc);
        schedule.assign(node, proc, start, finish);

        for &(child, _) in graph.successors(node) {
            unscheduled_preds[child.index()] -= 1;
            if unscheduled_preds[child.index()] == 0 {
                ready.push(child);
            }
        }
    }
    schedule
}

/// The paper's linear-time upper-bound heuristic (Section 3.2, "Upper-Bound
/// Solution Cost"): decreasing-priority list + earliest-start-time processor,
/// append-only.
pub fn upper_bound_schedule(graph: &TaskGraph, net: &ProcNetwork) -> Schedule {
    list_schedule(graph, net, ListConfig::default())
}

/// Schedule length of [`upper_bound_schedule`]; every optimal schedule has a
/// makespan `<= upper_bound(graph, net)`.
pub fn upper_bound(graph: &TaskGraph, net: &ProcNetwork) -> Cost {
    upper_bound_schedule(graph, net).makespan()
}

/// Convenience: run every built-in heuristic configuration and return the
/// best (shortest) schedule found together with the name of the winner.
pub fn best_heuristic_schedule(graph: &TaskGraph, net: &ProcNetwork) -> (String, Schedule) {
    let configs = [
        ("blevel-est", ListConfig { priority: LevelKind::BLevel, policy: ProcessorPolicy::EarliestStart, insertion: false }),
        ("blevel-eft-ins", ListConfig { priority: LevelKind::BLevel, policy: ProcessorPolicy::EarliestFinish, insertion: true }),
        ("static-est", ListConfig { priority: LevelKind::StaticLevel, policy: ProcessorPolicy::EarliestStart, insertion: false }),
        ("bpt-eft-ins", ListConfig { priority: LevelKind::BPlusT, policy: ProcessorPolicy::EarliestFinish, insertion: true }),
    ];
    let mut best: Option<(String, Schedule)> = None;
    for (name, cfg) in configs {
        let s = list_schedule(graph, net, cfg);
        if best.as_ref().map_or(true, |(_, b)| s.makespan() < b.makespan()) {
            best = Some((name.to_string(), s));
        }
    }
    best.expect("at least one configuration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::{paper_example_dag, GraphBuilder};

    #[test]
    fn upper_bound_schedule_is_valid_on_example() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let s = upper_bound_schedule(&g, &net);
        s.validate(&g, &net).unwrap();
        assert!(s.is_complete());
        // The optimal length is 14 (Figure 4); a heuristic can only be >= that
        // and never worse than fully serial execution.
        assert!(s.makespan() >= 14);
        assert!(s.makespan() <= g.total_computation() + g.total_communication());
    }

    #[test]
    fn upper_bound_value_matches_schedule() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        assert_eq!(upper_bound(&g, &net), upper_bound_schedule(&g, &net).makespan());
    }

    #[test]
    fn single_processor_gives_serial_makespan() {
        let g = paper_example_dag();
        let net = ProcNetwork::fully_connected(1);
        for insertion in [false, true] {
            let s = list_schedule(
                &g,
                &net,
                ListConfig { insertion, ..Default::default() },
            );
            s.validate(&g, &net).unwrap();
            assert_eq!(s.makespan(), g.total_computation());
        }
    }

    #[test]
    fn makespan_never_below_static_critical_path() {
        let g = paper_example_dag();
        for p in 1..=4 {
            let net = ProcNetwork::fully_connected(p);
            let s = upper_bound_schedule(&g, &net);
            s.validate(&g, &net).unwrap();
            assert!(s.makespan() >= g.schedule_length_lower_bound());
        }
    }

    #[test]
    fn all_configs_produce_valid_schedules() {
        let g = paper_example_dag();
        let net = ProcNetwork::mesh(2, 2);
        for priority in [LevelKind::BLevel, LevelKind::TLevel, LevelKind::StaticLevel, LevelKind::BPlusT] {
            for policy in [ProcessorPolicy::EarliestStart, ProcessorPolicy::EarliestFinish] {
                for insertion in [false, true] {
                    let s = list_schedule(&g, &net, ListConfig { priority, policy, insertion });
                    s.validate(&g, &net)
                        .unwrap_or_else(|e| panic!("{priority:?}/{policy:?}/{insertion}: {e}"));
                }
            }
        }
    }

    #[test]
    fn insertion_never_hurts_on_example() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let append = list_schedule(&g, &net, ListConfig::default());
        let insert = list_schedule(&g, &net, ListConfig { insertion: true, ..Default::default() });
        assert!(insert.makespan() <= append.makespan());
    }

    #[test]
    fn heterogeneous_processors_prefer_fast_one() {
        // A single chain: a -> b; PE1 three times slower.
        let mut bd = GraphBuilder::new();
        let a = bd.add_node(4);
        let b = bd.add_node(4);
        bd.add_edge(a, b, 1).unwrap();
        let g = bd.build().unwrap();
        let net = ProcNetwork::fully_connected(2).with_cycle_times(&[1, 3]);
        let s = list_schedule(
            &g,
            &net,
            ListConfig { policy: ProcessorPolicy::EarliestFinish, ..Default::default() },
        );
        s.validate(&g, &net).unwrap();
        assert_eq!(s.proc_of(a), Some(ProcId(0)));
        assert_eq!(s.proc_of(b), Some(ProcId(0)));
        assert_eq!(s.makespan(), 8);
    }

    #[test]
    fn fork_join_uses_multiple_processors_when_comm_is_cheap() {
        // root -> 4 children -> sink, zero communication: parallelism wins.
        let mut bd = GraphBuilder::new();
        let root = bd.add_node(1);
        let sink_children: Vec<_> = (0..4).map(|_| bd.add_node(10)).collect();
        let sink = bd.add_node(1);
        for &c in &sink_children {
            bd.add_edge(root, c, 0).unwrap();
            bd.add_edge(c, sink, 0).unwrap();
        }
        let g = bd.build().unwrap();
        let net = ProcNetwork::fully_connected(4);
        let s = upper_bound_schedule(&g, &net);
        s.validate(&g, &net).unwrap();
        assert_eq!(s.makespan(), 12); // 1 + 10 + 1
        assert_eq!(s.procs_used(), 4);
    }

    #[test]
    fn high_communication_keeps_chain_on_one_processor() {
        // a -> b with enormous comm cost: b must follow a on the same PE.
        let mut bd = GraphBuilder::new();
        let a = bd.add_node(2);
        let b = bd.add_node(2);
        bd.add_edge(a, b, 1000).unwrap();
        let g = bd.build().unwrap();
        let net = ProcNetwork::fully_connected(4);
        let s = upper_bound_schedule(&g, &net);
        assert_eq!(s.proc_of(a), s.proc_of(b));
        assert_eq!(s.makespan(), 4);
    }

    #[test]
    fn best_heuristic_reports_minimum() {
        let g = paper_example_dag();
        let net = ProcNetwork::ring(3);
        let (name, best) = best_heuristic_schedule(&g, &net);
        assert!(!name.is_empty());
        best.validate(&g, &net).unwrap();
        assert!(best.makespan() <= upper_bound(&g, &net));
    }

    #[test]
    fn random_graphs_all_heuristics_valid() {
        use optsched_workload::{RandomDagConfig, generate_random_dag};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for nodes in [10usize, 16, 24] {
            for ccr in [0.1, 1.0, 10.0] {
                let cfg = RandomDagConfig { nodes, ccr, ..Default::default() };
                let g = generate_random_dag(&cfg, &mut rng);
                let net = ProcNetwork::fully_connected(4);
                let s = upper_bound_schedule(&g, &net);
                s.validate(&g, &net)
                    .unwrap_or_else(|e| panic!("v={nodes} ccr={ccr}: {e}"));
            }
        }
    }
}

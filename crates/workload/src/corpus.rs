//! Request-corpus generation for the scheduling service.
//!
//! The service's `batch` front end (and the CI smoke test) need a stream of
//! *mixed* scheduling requests: varying graph sizes and CCRs, several
//! algorithm families, occasional deadlines, and repeated instances that
//! should hit the service's memoizing result cache.  This module generates
//! such a corpus deterministically from a seed, as plain data — the service
//! crate converts each [`CorpusRequest`] into its wire-format request.
//!
//! Sizes stay small (≤ 10 nodes by default) so the exact searches answer in
//! milliseconds on the single-core CI host; the deadline entries exist to
//! exercise the anytime path, not to time out the suite.

use rand::Rng;

use optsched_taskgraph::TaskGraph;

use crate::random::{generate_random_dag, RandomDagConfig, PAPER_CCRS};

/// Parameters of the request-corpus generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestCorpusConfig {
    /// Number of requests to generate.
    pub count: usize,
    /// Graph sizes to draw from (uniformly).
    pub sizes: Vec<usize>,
    /// Number of target processors to draw from (uniformly).
    pub procs: Vec<usize>,
    /// Algorithm names to rotate through (must be registry names).
    pub algorithms: Vec<String>,
    /// Every `deadline_every`-th request carries a tight wall-clock deadline
    /// (0 disables deadlines).  At least one deadline request is always
    /// emitted when the corpus has ≥ 2 entries and this is non-zero.
    pub deadline_every: usize,
    /// The deadline value used for deadline-carrying requests, in ms.
    pub deadline_ms: u64,
    /// Every `duplicate_every`-th request repeats an earlier instance
    /// verbatim (0 disables duplicates).  At least one duplicate is always
    /// emitted when the corpus has ≥ 2 entries and this is non-zero.
    pub duplicate_every: usize,
}

impl Default for RequestCorpusConfig {
    fn default() -> Self {
        RequestCorpusConfig {
            count: 20,
            sizes: vec![6, 7, 8, 9],
            procs: vec![2, 3],
            algorithms: vec![
                "astar".to_string(),
                "wastar".to_string(),
                "aeps".to_string(),
                "list".to_string(),
            ],
            deadline_every: 5,
            deadline_ms: 1,
            duplicate_every: 4,
        }
    }
}

/// One generated request, as plain data: the instance parts plus the
/// scheduling knobs.  The service crate converts this into its wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusRequest {
    /// The task graph to schedule.
    pub graph: TaskGraph,
    /// Number of fully connected target processors.
    pub procs: usize,
    /// Registry name of the algorithm to run.
    pub algorithm: String,
    /// Optional wall-clock budget in milliseconds (the anytime path).
    pub deadline_ms: Option<u64>,
    /// Index of the earlier corpus entry this request duplicates
    /// (same graph, same processor count — a service cache hit), if any.
    pub duplicate_of: Option<usize>,
}

/// Generates `cfg.count` mixed requests, deterministically for a given RNG
/// stream.
///
/// A duplicate repeats an earlier *request* — same graph, same processor
/// count, same algorithm — so that a memoizing service must answer it from
/// its cache.  The original is always a memoizable one: never itself a
/// duplicate, never deadline-constrained, never the `list` heuristic (whose
/// answers a service has no reason to intern).  With the default
/// configuration a ≥ 2-request corpus is guaranteed to contain at least one
/// duplicate and at least one deadline request — the two cases the service
/// smoke test must observe (a cache hit and an anytime answer).
pub fn generate_request_corpus(
    cfg: &RequestCorpusConfig,
    rng: &mut impl Rng,
) -> Vec<CorpusRequest> {
    assert!(!cfg.sizes.is_empty(), "corpus needs at least one size");
    assert!(!cfg.procs.is_empty(), "corpus needs at least one processor count");
    assert!(!cfg.algorithms.is_empty(), "corpus needs at least one algorithm");

    let mut corpus: Vec<CorpusRequest> = Vec::with_capacity(cfg.count);
    for i in 0..cfg.count {
        let wants_duplicate = cfg.duplicate_every > 0
            && i > 0
            && (i % cfg.duplicate_every == 0 || (i == cfg.count - 1 && !has_duplicate(&corpus)));
        let wants_deadline = cfg.deadline_every > 0
            && (i % cfg.deadline_every == cfg.deadline_every - 1
                || (i == cfg.count - 1 && !has_deadline(&corpus)));
        let deadline_ms = wants_deadline.then_some(cfg.deadline_ms);

        let original = wants_duplicate
            .then(|| {
                // Pick an earlier memoizable original: not a duplicate
                // itself, not deadline-bound, not the list heuristic.
                let originals: Vec<usize> = (0..i)
                    .filter(|&j| {
                        corpus[j].duplicate_of.is_none()
                            && corpus[j].deadline_ms.is_none()
                            && corpus[j].algorithm != "list"
                    })
                    .collect();
                if originals.is_empty() {
                    None
                } else {
                    Some(originals[rng.gen_range(0..originals.len())])
                }
            })
            .flatten();

        let entry = match original {
            Some(j) => CorpusRequest {
                graph: corpus[j].graph.clone(),
                procs: corpus[j].procs,
                algorithm: corpus[j].algorithm.clone(),
                deadline_ms,
                duplicate_of: Some(j),
            },
            None => {
                let nodes = cfg.sizes[rng.gen_range(0..cfg.sizes.len())];
                let ccr = PAPER_CCRS[rng.gen_range(0..PAPER_CCRS.len())];
                let graph = generate_random_dag(
                    &RandomDagConfig { nodes, ccr, ..Default::default() },
                    rng,
                );
                CorpusRequest {
                    graph,
                    procs: cfg.procs[rng.gen_range(0..cfg.procs.len())],
                    algorithm: cfg.algorithms[i % cfg.algorithms.len()].clone(),
                    deadline_ms,
                    duplicate_of: None,
                }
            }
        };
        corpus.push(entry);
    }
    corpus
}

fn has_duplicate(corpus: &[CorpusRequest]) -> bool {
    corpus.iter().any(|r| r.duplicate_of.is_some())
}

fn has_deadline(corpus: &[CorpusRequest]) -> bool {
    corpus.iter().any(|r| r.deadline_ms.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_corpus_mixes_all_the_required_cases() {
        let cfg = RequestCorpusConfig::default();
        let corpus = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(corpus.len(), cfg.count);
        assert!(has_duplicate(&corpus), "a default corpus must contain a duplicate instance");
        assert!(has_deadline(&corpus), "a default corpus must contain a deadline request");
        // Duplicates really repeat the full request of a memoizable original.
        for (i, r) in corpus.iter().enumerate() {
            if let Some(j) = r.duplicate_of {
                assert!(j < i);
                assert!(corpus[j].duplicate_of.is_none(), "duplicate of a duplicate");
                assert_eq!(corpus[j].graph, r.graph);
                assert_eq!(corpus[j].procs, r.procs);
                assert_eq!(corpus[j].algorithm, r.algorithm, "a cache hit needs the same key");
                assert!(corpus[j].deadline_ms.is_none(), "original must be memoizable");
                assert_ne!(corpus[j].algorithm, "list", "original must be memoizable");
            }
            assert!(cfg.algorithms.contains(&r.algorithm));
            assert!(cfg.procs.contains(&r.procs));
        }
        // More than one algorithm family is exercised.
        let distinct: std::collections::BTreeSet<&str> =
            corpus.iter().map(|r| r.algorithm.as_str()).collect();
        assert!(distinct.len() >= 3, "{distinct:?}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = RequestCorpusConfig::default();
        let a = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(11));
        let b = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(11));
        let c = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(12));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_corpora_still_cover_the_smoke_cases() {
        // Even a 2-request corpus ends with the forced duplicate/deadline.
        let cfg = RequestCorpusConfig { count: 2, ..Default::default() };
        let corpus = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(3));
        assert!(has_duplicate(&corpus) && has_deadline(&corpus));
    }

    #[test]
    fn knobs_can_disable_special_cases() {
        let cfg = RequestCorpusConfig {
            count: 12,
            deadline_every: 0,
            duplicate_every: 0,
            ..Default::default()
        };
        let corpus = generate_request_corpus(&cfg, &mut StdRng::seed_from_u64(3));
        assert!(!has_duplicate(&corpus));
        assert!(!has_deadline(&corpus));
    }
}

//! Structured application DAGs: fork–join, trees, Gaussian elimination, FFT
//! butterflies and linear chains.
//!
//! These shapes correspond to the parallel kernels that motivate DAG
//! scheduling (the paper's introduction targets "parallel programs" in
//! general); they are used by the examples, the extra tests, and the
//! heuristic-vs-optimal comparison benches.

use optsched_taskgraph::{Cost, GraphBuilder, NodeId, TaskGraph};

/// A linear chain of `n` tasks: `t0 -> t1 -> … -> t(n-1)`.
///
/// Every node has computation cost `comp`, every edge communication cost `comm`.
pub fn chain(n: usize, comp: Cost, comm: Cost) -> TaskGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n);
    let ids: Vec<NodeId> = (0..n).map(|_| b.add_node(comp)).collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], comm).unwrap();
    }
    b.build().unwrap()
}

/// A fork–join graph: one source, `width` independent middle tasks, one sink.
pub fn fork_join(width: usize, comp: Cost, comm: Cost) -> TaskGraph {
    assert!(width >= 1);
    let mut b = GraphBuilder::with_capacity(width + 2);
    let src = b.add_labeled_node(comp, "fork");
    let mids: Vec<NodeId> = (0..width).map(|i| b.add_labeled_node(comp, format!("w{i}"))).collect();
    let sink = b.add_labeled_node(comp, "join");
    for &m in &mids {
        b.add_edge(src, m, comm).unwrap();
        b.add_edge(m, sink, comm).unwrap();
    }
    b.build().unwrap()
}

/// A complete out-tree (root at the top) of the given `depth` and `branching`
/// factor; `depth = 0` is a single node.
pub fn out_tree(depth: u32, branching: usize, comp: Cost, comm: Cost) -> TaskGraph {
    assert!(branching >= 1);
    let mut b = GraphBuilder::new();
    let root = b.add_node(comp);
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..branching {
                let child = b.add_node(comp);
                b.add_edge(parent, child, comm).unwrap();
                next.push(child);
            }
        }
        frontier = next;
    }
    b.build().unwrap()
}

/// A complete in-tree (leaves at the top, root at the bottom): the reversal
/// of [`out_tree`]. Models reductions.
pub fn in_tree(depth: u32, branching: usize, comp: Cost, comm: Cost) -> TaskGraph {
    let out = out_tree(depth, branching, comp, comm);
    // Reverse every edge.
    let mut b = GraphBuilder::with_capacity(out.num_nodes());
    for n in out.node_ids() {
        b.add_node(out.weight(n));
    }
    for e in out.edges() {
        b.add_edge(e.dst, e.src, e.weight).unwrap();
    }
    b.build().unwrap()
}

/// The Gaussian-elimination task graph over an `m x m` matrix: for each
/// elimination step `k` there is one pivot task followed by `m - k - 1`
/// update tasks that all depend on the pivot and feed the next pivot.
///
/// Total node count is `m(m+1)/2 - 1` for `m >= 2`.
pub fn gaussian_elimination(m: usize, comp: Cost, comm: Cost) -> TaskGraph {
    assert!(m >= 2);
    let mut b = GraphBuilder::new();
    // prev_update[j] = the step-(k-1) update task of column j, if any.
    let mut prev_update: Vec<Option<NodeId>> = vec![None; m];
    for k in 0..(m - 1) {
        let pivot = b.add_labeled_node(comp, format!("piv{k}"));
        // The pivot of step k works on column k, which was last touched by
        // the step-(k-1) update of that column.
        if let Some(u) = prev_update[k] {
            b.add_edge(u, pivot, comm).unwrap();
        }
        let mut new_update: Vec<Option<NodeId>> = vec![None; m];
        for j in (k + 1)..m {
            let u = b.add_labeled_node(comp, format!("upd{k}_{j}"));
            b.add_edge(pivot, u, comm).unwrap();
            if let Some(pu) = prev_update[j] {
                b.add_edge(pu, u, comm).unwrap();
            }
            new_update[j] = Some(u);
        }
        prev_update = new_update;
    }
    b.build().unwrap()
}

/// An FFT butterfly graph over `points` inputs (`points` must be a power of
/// two): `log2(points)` layers of `points` tasks each plus an input layer,
/// with the classic butterfly connections.
pub fn fft_butterfly(points: usize, comp: Cost, comm: Cost) -> TaskGraph {
    assert!(points.is_power_of_two() && points >= 2);
    let stages = points.trailing_zeros() as usize;
    let mut b = GraphBuilder::new();
    // Layer 0: inputs.
    let mut prev: Vec<NodeId> =
        (0..points).map(|i| b.add_labeled_node(comp, format!("in{i}"))).collect();
    for s in 0..stages {
        let stride = points >> (s + 1);
        let cur: Vec<NodeId> =
            (0..points).map(|i| b.add_labeled_node(comp, format!("s{s}_{i}"))).collect();
        for i in 0..points {
            let partner = i ^ stride;
            b.add_edge(prev[i], cur[i], comm).unwrap();
            b.add_edge(prev[partner], cur[i], comm).unwrap();
        }
        prev = cur;
    }
    b.build().unwrap()
}

/// A diamond / wavefront lattice of `rows x cols` tasks where task `(i, j)`
/// depends on `(i-1, j)` and `(i, j-1)`. Models stencil sweeps and dynamic
/// programming kernels.
pub fn diamond_lattice(rows: usize, cols: usize, comp: Cost, comm: Cost) -> TaskGraph {
    assert!(rows >= 1 && cols >= 1);
    let mut b = GraphBuilder::with_capacity(rows * cols);
    let ids: Vec<NodeId> = (0..rows * cols).map(|_| b.add_node(comp)).collect();
    let id = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), comm).unwrap();
            }
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), comm).unwrap();
            }
        }
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(5, 3, 2);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.entry_nodes().len(), 1);
        assert_eq!(g.exit_nodes().len(), 1);
        assert_eq!(g.critical_path_length(), 5 * 3 + 4 * 2);
    }

    #[test]
    fn single_node_chain() {
        let g = chain(1, 7, 0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(6, 2, 1);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.entry_nodes().len(), 1);
        assert_eq!(g.exit_nodes().len(), 1);
        // Critical path = fork + worker + join + 2 comm.
        assert_eq!(g.critical_path_length(), 2 + 2 + 2 + 1 + 1);
    }

    #[test]
    fn out_tree_and_in_tree_are_mirrors() {
        let o = out_tree(3, 2, 1, 1);
        let i = in_tree(3, 2, 1, 1);
        assert_eq!(o.num_nodes(), 15);
        assert_eq!(i.num_nodes(), 15);
        assert_eq!(o.num_edges(), i.num_edges());
        assert_eq!(o.entry_nodes().len(), 1);
        assert_eq!(i.exit_nodes().len(), 1);
        assert_eq!(i.entry_nodes().len(), 8);
        assert_eq!(o.critical_path_length(), i.critical_path_length());
    }

    #[test]
    fn out_tree_depth_zero_is_single_node() {
        let g = out_tree(0, 3, 5, 1);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn gaussian_elimination_node_count() {
        // m=4: steps k=0,1,2 with 1+3, 1+2, 1+1 tasks = 9 = 4*5/2 - 1.
        let g = gaussian_elimination(4, 2, 1);
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.entry_nodes().len(), 1);
        // The last pivot/update chain is the single exit.
        assert_eq!(g.exit_nodes().len(), 1);
    }

    #[test]
    fn gaussian_elimination_smallest_case() {
        let g = gaussian_elimination(2, 2, 1);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn fft_butterfly_shape() {
        let g = fft_butterfly(8, 1, 1);
        // 4 layers (1 input + 3 stages) of 8 nodes.
        assert_eq!(g.num_nodes(), 32);
        assert_eq!(g.num_edges(), 3 * 8 * 2);
        assert_eq!(g.entry_nodes().len(), 8);
        assert_eq!(g.exit_nodes().len(), 8);
        // Each stage node has exactly two parents.
        for n in g.exit_nodes() {
            assert_eq!(g.in_degree(n), 2);
        }
    }

    #[test]
    fn diamond_lattice_shape() {
        let g = diamond_lattice(3, 4, 2, 1);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.entry_nodes().len(), 1);
        assert_eq!(g.exit_nodes().len(), 1);
        // Critical path visits rows+cols-1 nodes.
        assert_eq!(g.critical_path_length(), 6 * 2 + 5);
    }

    #[test]
    fn structured_graphs_are_valid_dags() {
        // The builders already guarantee acyclicity; spot-check entry/exit counts.
        for g in [
            chain(10, 1, 1),
            fork_join(3, 1, 1),
            out_tree(2, 3, 1, 1),
            in_tree(2, 3, 1, 1),
            gaussian_elimination(5, 1, 1),
            fft_butterfly(4, 1, 1),
            diamond_lattice(4, 4, 1, 1),
        ] {
            assert!(!g.entry_nodes().is_empty());
            assert!(!g.exit_nodes().is_empty());
        }
    }
}

//! The paper's random task-graph generator (Section 4.1).

use rand::Rng;
use serde::{Deserialize, Serialize};

use optsched_taskgraph::{Cost, GraphBuilder, NodeId, TaskGraph};

/// The CCR values used throughout the paper's evaluation.
pub const PAPER_CCRS: [f64; 3] = [0.1, 1.0, 10.0];

/// The graph sizes of each experiment set: 10, 12, …, 32 nodes.
pub const PAPER_SIZES: [usize; 12] = [10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32];

/// Parameters of the random DAG generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDagConfig {
    /// Number of nodes `v`.
    pub nodes: usize,
    /// Communication-to-computation ratio; edge weights are drawn with mean
    /// `mean_comp * ccr`.
    pub ccr: f64,
    /// Mean computation cost (the paper uses 40).
    pub mean_comp: Cost,
    /// Mean number of children per node.  `None` uses the paper's `v / 10`.
    pub mean_children: Option<f64>,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig { nodes: 20, ccr: 1.0, mean_comp: 40, mean_children: None }
    }
}

/// Draws an integer from a uniform distribution over `[1, 2·mean - 1]`
/// (mean `mean`); degenerates to the constant 1 when `mean <= 1`.
fn uniform_with_mean(rng: &mut impl Rng, mean: f64) -> Cost {
    if mean <= 1.0 {
        return 1;
    }
    let hi = (2.0 * mean - 1.0).round() as u64;
    rng.gen_range(1..=hi.max(1))
}

/// Generates one random DAG following the paper's procedure.
///
/// Starting from the first node, each node draws a child count from a uniform
/// distribution with mean `v/10` (or [`RandomDagConfig::mean_children`]) and
/// connects to that many distinct, randomly chosen, higher-numbered nodes, so
/// the result is acyclic by construction and its connectivity increases with
/// the graph size.  Computation costs are uniform with mean
/// [`RandomDagConfig::mean_comp`] and communication costs uniform with mean
/// `mean_comp * ccr`.
pub fn generate_random_dag(cfg: &RandomDagConfig, rng: &mut impl Rng) -> TaskGraph {
    assert!(cfg.nodes >= 2, "a task graph needs at least two nodes");
    let v = cfg.nodes;
    let mean_children = cfg.mean_children.unwrap_or(v as f64 / 10.0).max(1.0);
    let mean_comm = (cfg.mean_comp as f64 * cfg.ccr).max(1.0);

    let mut b = GraphBuilder::with_capacity(v);
    let ids: Vec<NodeId> = (0..v)
        .map(|_| b.add_node(uniform_with_mean(rng, cfg.mean_comp as f64)))
        .collect();

    for (i, &src) in ids.iter().enumerate() {
        let remaining = v - i - 1;
        if remaining == 0 {
            break;
        }
        // Child count: uniform over [0, 2·mean] (mean `mean_children`),
        // clipped to the number of candidates that exist.
        let max_children = (2.0 * mean_children).round() as usize;
        let wanted = rng.gen_range(0..=max_children).min(remaining);
        // Sample `wanted` distinct targets among the higher-numbered nodes.
        let mut candidates: Vec<usize> = ((i + 1)..v).collect();
        for k in 0..wanted {
            let j = rng.gen_range(k..candidates.len());
            candidates.swap(k, j);
        }
        for &t in &candidates[..wanted] {
            let comm = uniform_with_mean(rng, mean_comm);
            b.add_edge(src, ids[t], comm).expect("targets are distinct and higher-numbered");
        }
    }

    // Guarantee at least one edge so the graph is a meaningful precedence
    // problem (the paper's graphs always have growing connectivity).
    let g = b.clone().build().expect("construction is acyclic");
    if g.num_edges() == 0 {
        let comm = uniform_with_mean(rng, mean_comm);
        let mut b2 = b;
        b2.add_edge(ids[0], ids[1], comm).expect("edge 0->1 is valid");
        return b2.build().expect("still acyclic");
    }
    g
}

/// Generates the full experiment set for one CCR value: twelve graphs with
/// v = 10, 12, …, 32 (the sets used for Table 1 and Figures 6–7).
pub fn paper_workload_suite(ccr: f64, rng: &mut impl Rng) -> Vec<TaskGraph> {
    PAPER_SIZES
        .iter()
        .map(|&v| generate_random_dag(&RandomDagConfig { nodes: v, ccr, ..Default::default() }, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let cfg = RandomDagConfig { nodes: 24, ccr: 1.0, ..Default::default() };
        let a = generate_random_dag(&cfg, &mut StdRng::seed_from_u64(42));
        let b = generate_random_dag(&cfg, &mut StdRng::seed_from_u64(42));
        let c = generate_random_dag(&cfg, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn node_count_matches_config() {
        let mut rng = StdRng::seed_from_u64(1);
        for v in [2usize, 10, 17, 32, 64] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: v, ..Default::default() },
                &mut rng,
            );
            assert_eq!(g.num_nodes(), v);
            assert!(g.num_edges() >= 1);
        }
    }

    #[test]
    fn mean_computation_cost_is_close_to_forty() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generate_random_dag(
            &RandomDagConfig { nodes: 500, ccr: 1.0, ..Default::default() },
            &mut rng,
        );
        let mean = g.total_computation() as f64 / g.num_nodes() as f64;
        assert!((mean - 40.0).abs() < 5.0, "mean computation cost {mean}");
    }

    #[test]
    fn ccr_of_generated_graph_tracks_requested_ccr() {
        let mut rng = StdRng::seed_from_u64(3);
        for &ccr in &PAPER_CCRS {
            let g = generate_random_dag(
                &RandomDagConfig { nodes: 400, ccr, ..Default::default() },
                &mut rng,
            );
            let measured = g.ccr();
            assert!(
                measured > ccr * 0.5 && measured < ccr * 2.0,
                "requested CCR {ccr}, measured {measured}"
            );
        }
    }

    #[test]
    fn connectivity_grows_with_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = generate_random_dag(
            &RandomDagConfig { nodes: 10, ..Default::default() },
            &mut rng,
        );
        let large = generate_random_dag(
            &RandomDagConfig { nodes: 200, ..Default::default() },
            &mut rng,
        );
        let avg_deg_small = small.num_edges() as f64 / small.num_nodes() as f64;
        let avg_deg_large = large.num_edges() as f64 / large.num_nodes() as f64;
        assert!(avg_deg_large > avg_deg_small);
    }

    #[test]
    fn suite_has_twelve_graphs_of_increasing_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let suite = paper_workload_suite(1.0, &mut rng);
        assert_eq!(suite.len(), 12);
        for (g, &v) in suite.iter().zip(PAPER_SIZES.iter()) {
            assert_eq!(g.num_nodes(), v);
        }
    }

    #[test]
    fn mean_children_override_is_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let dense = generate_random_dag(
            &RandomDagConfig { nodes: 60, mean_children: Some(8.0), ..Default::default() },
            &mut rng,
        );
        let sparse = generate_random_dag(
            &RandomDagConfig { nodes: 60, mean_children: Some(1.0), ..Default::default() },
            &mut rng,
        );
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_config_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        generate_random_dag(&RandomDagConfig { nodes: 1, ..Default::default() }, &mut rng);
    }

    #[test]
    fn uniform_with_mean_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let x = uniform_with_mean(&mut rng, 40.0);
            assert!((1..=79).contains(&x));
            assert_eq!(uniform_with_mean(&mut rng, 0.5), 1);
        }
    }
}

//! Workload generators for the `optsched` experiments.
//!
//! * [`random`] reproduces the random task graphs of Section 4.1 of the
//!   paper: node weights from a uniform distribution with mean 40, a number
//!   of children per node drawn from a uniform distribution with mean `v/10`
//!   (so connectivity grows with graph size), and edge weights from a uniform
//!   distribution with mean `40 · CCR` for CCR ∈ {0.1, 1.0, 10.0}.  Each
//!   experiment set contains the twelve sizes v = 10, 12, …, 32.
//! * [`structured`] provides the classic application-shaped DAGs (fork–join,
//!   trees, Gaussian elimination, FFT butterfly, pipelines) used by the
//!   examples and the extra tests.
//!
//! All generators are driven by a caller-supplied [`rand::Rng`], so every
//! workload in the repository is reproducible from a seed.

#![warn(missing_docs)]

pub mod corpus;
pub mod random;
pub mod structured;

pub use corpus::{generate_request_corpus, CorpusRequest, RequestCorpusConfig};
pub use random::{generate_random_dag, paper_workload_suite, RandomDagConfig, PAPER_CCRS, PAPER_SIZES};
pub use structured::{chain, diamond_lattice, fft_butterfly, fork_join, gaussian_elimination, in_tree, out_tree};

//! # optsched — optimal and near-optimal DAG scheduling by state-space search
//!
//! A Rust reproduction of Kwok & Ahmad, *"Optimal and Near-Optimal Allocation
//! of Precedence-Constrained Tasks to Parallel Processors: Defying the High
//! Complexity Using Effective Search Techniques"* (ICPP 1998).
//!
//! This crate is a thin facade that re-exports the workspace members and
//! hosts the [`registry`] — the object-safe [`Scheduler`](registry::Scheduler)
//! trait and name-indexed [`SchedulerRegistry`](registry::SchedulerRegistry)
//! the CLI, the experiment binaries and the conformance suite dispatch
//! through:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`taskgraph`] | `optsched-taskgraph` | weighted DAGs, levels, critical path |
//! | [`procnet`] | `optsched-procnet` | processor networks and topologies |
//! | [`schedule`] | `optsched-schedule` | schedules, validation, Gantt rendering |
//! | [`listsched`] | `optsched-listsched` | list-scheduling heuristics / upper bound |
//! | [`core`] | `optsched-core` | serial A*, Aε*, Chen & Yu branch-and-bound |
//! | [`parallel`] | `optsched-parallel` | parallel A*/Aε* over a PPE thread pool |
//! | [`workload`] | `optsched-workload` | random and structured workload generators |
//!
//! # Quick start
//!
//! ```
//! use optsched::prelude::*;
//!
//! // The example task graph and 3-processor ring of the paper (Figure 1).
//! let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
//!
//! // Serial optimal schedule (Figure 4: length 14).
//! let result = AStarScheduler::new(&problem).run();
//! assert_eq!(result.schedule_length, 14);
//!
//! // Parallel search on 2 PPE threads reaches the same optimum.
//! let parallel = ParallelAStarScheduler::new(&problem, ParallelConfig::exact(2)).run();
//! assert_eq!(parallel.schedule_length(), 14);
//! ```

#![warn(missing_docs)]

pub use optsched_core as core;
pub use optsched_listsched as listsched;
pub use optsched_parallel as parallel;
pub use optsched_procnet as procnet;
pub use optsched_schedule as schedule;
pub use optsched_taskgraph as taskgraph;
pub use optsched_workload as workload;

pub mod registry;

/// Commonly used items, re-exported for convenient glob imports.
pub mod prelude {
    pub use crate::registry::{Scheduler, SchedulerRegistry, SchedulerSpec, SearchReport};
    pub use optsched_core::{
        exhaustive_optimal, AEpsScheduler, AStarScheduler, ArenaConfig, ChenYuScheduler,
        ExhaustiveScheduler, HeuristicKind, PruningConfig, SchedulingProblem, SearchLimits,
        SearchOutcome, SearchResult, SearchStats, StoreKind, WAStarScheduler,
    };
    pub use optsched_listsched::{
        best_heuristic_schedule, list_schedule, upper_bound, upper_bound_schedule, ListConfig,
        ProcessorPolicy,
    };
    pub use optsched_parallel::{
        ClosedTableStats, DuplicateDetection, ParallelAStarScheduler, ParallelConfig,
        ParallelSearchResult, ShardedClosedTable,
    };
    pub use optsched_procnet::{CommModel, ProcId, ProcNetwork, Processor, Topology};
    pub use optsched_schedule::{render_gantt, Schedule, ScheduleError, ScheduledTask};
    pub use optsched_taskgraph::{
        paper_example_dag, Cost, GraphBuilder, GraphLevels, LevelKind, NodeId, TaskGraph,
    };
    pub use optsched_workload::{
        chain, diamond_lattice, fft_butterfly, fork_join, gaussian_elimination, in_tree,
        generate_random_dag, out_tree, paper_workload_suite, RandomDagConfig, PAPER_CCRS,
        PAPER_SIZES,
    };
}

//! The scheduler registry: one object-safe dispatch point for every
//! scheduler family in the workspace.
//!
//! The CLI, the experiment binaries and the conformance suite used to
//! hand-match algorithm names onto concrete scheduler types; they now build a
//! [`SchedulerSpec`] (the union of every family's knobs), instantiate a
//! [`SchedulerRegistry`] and dispatch by name through the [`Scheduler`]
//! trait.  Adding a scheduler family to the workspace means implementing the
//! trait and registering one entry here — every front end picks it up.

use optsched_core::{
    AEpsScheduler, AStarScheduler, ChenYuScheduler, ExhaustiveScheduler, HeuristicKind,
    PruningConfig, SchedulingProblem, SearchLimits, SearchOutcome, SearchResult, SearchStats,
    StoreKind, WAStarScheduler,
};
use optsched_listsched::upper_bound_schedule;
use optsched_parallel::{ParallelAStarScheduler, ParallelConfig, ParallelSearchResult};
use optsched_schedule::Schedule;

/// An object-safe scheduler: anything that maps a [`SchedulingProblem`] to a
/// [`SearchResult`].
pub trait Scheduler {
    /// The registry name (and CLI `--algorithm` value) of this scheduler.
    fn name(&self) -> &'static str;

    /// One-line human description (shown by `optsched schedule --help`-style
    /// listings and used in reports).
    fn description(&self) -> String;

    /// Runs the scheduler on `problem`.
    fn run(&self, problem: &SchedulingProblem) -> SearchReport;
}

/// The result of a dispatched run: the uniform [`SearchResult`] plus any
/// family-specific extras (e.g. the parallel scheduler's CLOSED-table
/// counters) as displayable label/value pairs.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The uniform search result (schedule, outcome, stats, elapsed time).
    pub result: SearchResult,
    /// Family-specific report lines, in display order.
    pub extras: Vec<(String, String)>,
}

impl SearchReport {
    fn plain(result: SearchResult) -> SearchReport {
        SearchReport { result, extras: Vec::new() }
    }
}

/// Configuration shared by every registered scheduler family; each family
/// reads the knobs that apply to it.
#[derive(Debug, Clone)]
pub struct SchedulerSpec {
    /// Resource limits (all families, including `exhaustive`).
    pub limits: SearchLimits,
    /// Pruning techniques (A\* family; Chen & Yu and exhaustive ignore it by
    /// construction).
    pub pruning: PruningConfig,
    /// Admissible heuristic (A\* family).
    pub heuristic: HeuristicKind,
    /// State-store layout (`arena` by default) — applied to the serial
    /// engine and to each PPE of the `parallel` family alike.  Like
    /// [`SchedulerSpec::limits`], this spec-level knob *overrides* the
    /// corresponding field of [`SchedulerSpec::parallel`] at dispatch time:
    /// the spec is the front ends' single source of truth.
    pub store: StoreKind,
    /// Refcounted reclamation of dead delta chains in the state store (on by
    /// default; never changes the search).  Applied, like
    /// [`SchedulerSpec::store`], to the serial engine and to each PPE of the
    /// `parallel` family, overriding [`ParallelConfig::arena_gc`].
    pub arena_gc: bool,
    /// Materialisation path-cache capacity of the state store (0 disables
    /// it).  Same override semantics as [`SchedulerSpec::arena_gc`].
    pub path_cache: u32,
    /// Approximation factor of `aeps` (also applied to `parallel` when
    /// [`ParallelConfig::epsilon`] is set there).
    pub epsilon: f64,
    /// Heuristic weight of `wastar` (`>= 1`; 1.0 makes it bit-identical to
    /// `astar`).
    pub weight: f64,
    /// Seeds the serial searches (`astar`, `wastar`, `aeps`, `chenyu`) with
    /// the list-scheduling schedule as an *attained* incumbent: the
    /// branch-and-bound elimination starts from the list upper bound instead
    /// of infinity and the upper-bound rule prunes states that cannot
    /// strictly improve on it.  Off by default (the classic behaviour, and
    /// what the pinned `tests/engine_equivalence.rs` literals measure); the
    /// scheduling service switches it on.
    pub seed_incumbent: bool,
    /// A complete schedule attained by an earlier run (a cached near-match,
    /// the anytime leg of a race) handed to the serial searches (`astar`,
    /// `wastar`, `aeps`, `chenyu`) as a candidate starting incumbent.  The
    /// engine adopts it only when it beats the incumbent the run would start
    /// from otherwise; the caller must guarantee it is feasible for the
    /// problem being solved.  `None` (the default) changes nothing.
    pub warm_start: Option<Schedule>,
    /// Configuration of the `parallel` family.
    pub parallel: ParallelConfig,
}

impl Default for SchedulerSpec {
    fn default() -> Self {
        SchedulerSpec {
            limits: SearchLimits::unlimited(),
            pruning: PruningConfig::all(),
            heuristic: HeuristicKind::default(),
            store: StoreKind::default(),
            arena_gc: true,
            path_cache: 8,
            epsilon: 0.2,
            weight: 1.0,
            seed_incumbent: false,
            warm_start: None,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Converts a parallel result into the uniform [`SearchResult`] shape
/// (statistics aggregated over all PPEs).
pub fn parallel_to_search_result(r: &ParallelSearchResult) -> SearchResult {
    SearchResult {
        schedule_length: r.schedule_length(),
        schedule: Some(r.schedule.clone()),
        outcome: r.outcome.clone(),
        stats: r.total_stats(),
        elapsed: r.elapsed,
    }
}

/// Formats the arena path-cache hit rate (`path_cache_hits` over
/// materialisations) for report lines; `"n/a"` when the run never
/// materialised a state (eager store, or no expansions).
pub fn path_cache_hit_rate(stats: &SearchStats) -> String {
    if stats.materialisations == 0 {
        "n/a".to_string()
    } else {
        format!(
            "{:.1}% ({} of {})",
            stats.path_cache_hits as f64 / stats.materialisations as f64 * 100.0,
            stats.path_cache_hits,
            stats.materialisations
        )
    }
}

struct AStarEntry(SchedulerSpec);
struct WAStarEntry(SchedulerSpec);
struct AEpsEntry(SchedulerSpec);
struct ChenYuEntry(SchedulerSpec);
struct ExhaustiveEntry(SchedulerSpec);
struct ListEntry;
struct ParallelEntry(SchedulerSpec);

impl Scheduler for AStarEntry {
    fn name(&self) -> &'static str {
        "astar"
    }
    fn description(&self) -> String {
        "serial A* (optimal)".to_string()
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        SearchReport::plain(
            AStarScheduler::new(problem)
                .with_pruning(self.0.pruning)
                .with_heuristic(self.0.heuristic)
                .with_limits(self.0.limits)
                .with_store(self.0.store)
                .with_arena_gc(self.0.arena_gc)
                .with_path_cache(self.0.path_cache)
                .with_seeded_incumbent(self.0.seed_incumbent)
                .with_warm_start(self.0.warm_start.clone())
                .run(),
        )
    }
}

impl Scheduler for WAStarEntry {
    fn name(&self) -> &'static str {
        "wastar"
    }
    fn description(&self) -> String {
        format!("weighted A* (w = {}, anytime)", self.0.weight)
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        SearchReport::plain(
            WAStarScheduler::new(problem, self.0.weight)
                .with_pruning(self.0.pruning)
                .with_heuristic(self.0.heuristic)
                .with_limits(self.0.limits)
                .with_store(self.0.store)
                .with_arena_gc(self.0.arena_gc)
                .with_path_cache(self.0.path_cache)
                .with_seeded_incumbent(self.0.seed_incumbent)
                .with_warm_start(self.0.warm_start.clone())
                .run(),
        )
    }
}

impl Scheduler for AEpsEntry {
    fn name(&self) -> &'static str {
        "aeps"
    }
    fn description(&self) -> String {
        format!("Aε* (ε = {})", self.0.epsilon)
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        SearchReport::plain(
            AEpsScheduler::new(problem, self.0.epsilon)
                .with_pruning(self.0.pruning)
                .with_heuristic(self.0.heuristic)
                .with_limits(self.0.limits)
                .with_store(self.0.store)
                .with_arena_gc(self.0.arena_gc)
                .with_path_cache(self.0.path_cache)
                .with_seeded_incumbent(self.0.seed_incumbent)
                .with_warm_start(self.0.warm_start.clone())
                .run(),
        )
    }
}

impl Scheduler for ChenYuEntry {
    fn name(&self) -> &'static str {
        "chenyu"
    }
    fn description(&self) -> String {
        "Chen & Yu branch-and-bound".to_string()
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        SearchReport::plain(
            ChenYuScheduler::new(problem)
                .with_limits(self.0.limits)
                .with_store(self.0.store)
                .with_arena_gc(self.0.arena_gc)
                .with_path_cache(self.0.path_cache)
                .with_seeded_incumbent(self.0.seed_incumbent)
                .with_warm_start(self.0.warm_start.clone())
                .run(),
        )
    }
}

impl Scheduler for ExhaustiveEntry {
    fn name(&self) -> &'static str {
        "exhaustive"
    }
    fn description(&self) -> String {
        "exhaustive enumeration".to_string()
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        SearchReport::plain(
            ExhaustiveScheduler::new(problem)
                .with_limits(self.0.limits)
                .with_store(self.0.store)
                .with_arena_gc(self.0.arena_gc)
                .with_path_cache(self.0.path_cache)
                .run(),
        )
    }
}

impl Scheduler for ListEntry {
    fn name(&self) -> &'static str {
        "list"
    }
    fn description(&self) -> String {
        "list-scheduling heuristic".to_string()
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        let start = std::time::Instant::now();
        let schedule = upper_bound_schedule(problem.graph(), problem.network());
        SearchReport::plain(SearchResult {
            schedule_length: schedule.makespan(),
            schedule: Some(schedule),
            outcome: SearchOutcome::Heuristic,
            stats: Default::default(),
            elapsed: start.elapsed(),
        })
    }
}

impl Scheduler for ParallelEntry {
    fn name(&self) -> &'static str {
        "parallel"
    }
    fn description(&self) -> String {
        format!(
            "parallel A* ({} PPEs, {} duplicate detection, {} store)",
            self.0.parallel.num_ppes, self.0.parallel.duplicate_detection, self.0.store
        )
    }
    fn run(&self, problem: &SchedulingProblem) -> SearchReport {
        let mut cfg = self.0.parallel;
        cfg.limits = self.0.limits;
        cfg.store = self.0.store;
        cfg.arena_gc = self.0.arena_gc;
        cfg.path_cache = self.0.path_cache;
        let r = ParallelAStarScheduler::new(problem, cfg).run();
        let totals = r.total_stats();
        let mut extras = vec![
            ("states expanded".to_string(), r.total_expanded().to_string()),
            (
                "redundant cross-PPE expansions avoided".to_string(),
                r.redundant_expansions_avoided().to_string(),
            ),
            ("peak_live_states".to_string(), r.peak_live_states().to_string()),
            ("peak_live_records".to_string(), totals.peak_live_records.to_string()),
            ("reclaimed_records".to_string(), totals.reclaimed_records.to_string()),
            ("path-cache hit rate".to_string(), path_cache_hit_rate(&totals)),
            (
                "path-cache ancestor hits".to_string(),
                totals.path_cache_ancestor_hits.to_string(),
            ),
            ("replayed deltas saved".to_string(), totals.replayed_deltas_saved.to_string()),
            ("in-flight peak".to_string(), r.peak_in_flight.to_string()),
            ("election transfers".to_string(), r.election_transfers().to_string()),
        ];
        if let Some(table) = &r.closed_stats {
            extras.push((
                "closed table".to_string(),
                format!(
                    "{} shards, {} entries, hit rate {:.1}%",
                    table.num_shards(),
                    table.total_entries(),
                    table.hit_rate() * 100.0
                ),
            ));
        }
        SearchReport { result: parallel_to_search_result(&r), extras }
    }
}

/// A name → [`Scheduler`] table over every family in the workspace.
pub struct SchedulerRegistry {
    entries: Vec<Box<dyn Scheduler>>,
}

impl SchedulerRegistry {
    /// The built-in families (`astar`, `wastar`, `aeps`, `chenyu`,
    /// `exhaustive`, `list`, `parallel`), each configured from `spec`.
    pub fn with_spec(spec: SchedulerSpec) -> SchedulerRegistry {
        SchedulerRegistry {
            entries: vec![
                Box::new(AStarEntry(spec.clone())),
                Box::new(WAStarEntry(spec.clone())),
                Box::new(AEpsEntry(spec.clone())),
                Box::new(ChenYuEntry(spec.clone())),
                Box::new(ExhaustiveEntry(spec.clone())),
                Box::new(ListEntry),
                Box::new(ParallelEntry(spec)),
            ],
        }
    }

    /// The registry with every knob at its default.
    pub fn builtin() -> SchedulerRegistry {
        SchedulerRegistry::with_spec(SchedulerSpec::default())
    }

    /// Looks a scheduler up by its registry name.
    pub fn get(&self, name: &str) -> Option<&dyn Scheduler> {
        self.entries.iter().find(|s| s.name() == name).map(|b| b.as_ref())
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optsched_procnet::ProcNetwork;
    use optsched_taskgraph::paper_example_dag;

    fn example_problem() -> SchedulingProblem {
        SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
    }

    #[test]
    fn registry_lists_every_family() {
        let reg = SchedulerRegistry::builtin();
        assert_eq!(
            reg.names(),
            vec!["astar", "wastar", "aeps", "chenyu", "exhaustive", "list", "parallel"]
        );
        assert!(reg.get("astar").is_some());
        assert!(reg.get("wastar").is_some());
        assert!(reg.get("quantum").is_none());
    }

    #[test]
    fn every_exact_family_reaches_the_paper_optimum_via_dispatch() {
        let problem = example_problem();
        let reg = SchedulerRegistry::builtin();
        for name in ["astar", "wastar", "aeps", "chenyu", "exhaustive", "parallel"] {
            let report = reg.get(name).expect(name).run(&problem);
            // aeps runs at the default ε = 0.2 (and wastar at the default
            // w = 1.0) yet still finds 14 here.
            assert_eq!(report.result.schedule_length, 14, "{name}");
            report
                .result
                .schedule
                .as_ref()
                .expect(name)
                .validate(problem.graph(), problem.network())
                .unwrap();
        }
        let list = reg.get("list").unwrap().run(&problem);
        assert_eq!(list.result.outcome, SearchOutcome::Heuristic);
        assert!(list.result.schedule_length >= 14);
    }

    #[test]
    fn parallel_entry_reports_extras() {
        let problem = example_problem();
        let reg = SchedulerRegistry::builtin();
        let report = reg.get("parallel").unwrap().run(&problem);
        assert!(report.extras.iter().any(|(k, _)| k == "states expanded"));
        assert!(report.extras.iter().any(|(k, _)| k == "peak_live_states"));
        assert!(report.extras.iter().any(|(k, _)| k == "peak_live_records"));
        assert!(report.extras.iter().any(|(k, _)| k == "reclaimed_records"));
        assert!(report.extras.iter().any(|(k, _)| k == "path-cache hit rate"));
        assert!(report.extras.iter().any(|(k, _)| k == "path-cache ancestor hits"));
        assert!(report.extras.iter().any(|(k, _)| k == "replayed deltas saved"));
        assert!(report.extras.iter().any(|(k, _)| k == "election transfers"));
        assert!(
            report.extras.iter().any(|(k, _)| k == "closed table"),
            "default mode is sharded, which reports table stats"
        );
        let desc = reg.get("parallel").unwrap().description();
        assert!(desc.contains("sharded"), "{desc}");
        assert!(desc.contains("arena store"), "{desc}");
    }

    /// `--store` is no longer silently ignored by the `parallel` family: the
    /// spec's store reaches the PPE workers, visible as delta replay — only
    /// the delta arena rebuilds states from delta records; the eager
    /// baseline keeps every record as a full clone and never replays.
    /// (Live-full-state counts no longer discriminate on a problem this
    /// small: snapshot transfers give the arena a few full states per PPE.)
    #[test]
    fn store_knob_flows_through_to_the_parallel_family() {
        let problem = example_problem();
        let run = |store| {
            let spec = SchedulerSpec { store, ..SchedulerSpec::default() };
            SchedulerRegistry::with_spec(spec).get("parallel").unwrap().run(&problem)
        };
        let arena = run(StoreKind::DeltaArena);
        let eager = run(StoreKind::EagerClone);
        assert_eq!(arena.result.schedule_length, 14);
        assert_eq!(eager.result.schedule_length, 14);
        assert!(
            arena.result.stats.replayed_deltas > 0,
            "the delta store expands children by replaying their records"
        );
        assert_eq!(
            eager.result.stats.replayed_deltas, 0,
            "the eager store never stores a delta, so it never replays one"
        );
    }

    /// The arena-lifecycle knobs reach both the serial engines and the PPE
    /// workers: GC-off keeps `reclaimed_records` at zero (the PR 4/5
    /// append-only store) while the default reclaims dead chains, and
    /// neither setting moves the optimum.
    #[test]
    fn arena_gc_knob_flows_through() {
        let problem = example_problem();
        let run = |name: &str, gc: bool| {
            let spec = SchedulerSpec { arena_gc: gc, ..SchedulerSpec::default() };
            SchedulerRegistry::with_spec(spec).get(name).unwrap().run(&problem)
        };
        for name in ["astar", "parallel"] {
            let on = run(name, true);
            let off = run(name, false);
            assert_eq!(on.result.schedule_length, 14, "{name}");
            assert_eq!(off.result.schedule_length, 14, "{name}");
            assert!(on.result.stats.reclaimed_records > 0, "{name}: GC on must reclaim");
            assert_eq!(off.result.stats.reclaimed_records, 0, "{name}: GC off is append-only");
            assert!(
                on.result.stats.peak_live_records <= off.result.stats.peak_live_records,
                "{name}: GC can only shrink the record high-water mark ({} vs {})",
                on.result.stats.peak_live_records,
                off.result.stats.peak_live_records
            );
        }
    }

    #[test]
    fn path_cache_hit_rate_formats() {
        let none = SearchStats::default();
        assert_eq!(path_cache_hit_rate(&none), "n/a");
        let some = SearchStats { materialisations: 8, path_cache_hits: 2, ..Default::default() };
        assert_eq!(path_cache_hit_rate(&some), "25.0% (2 of 8)");
    }

    #[test]
    fn spec_knobs_flow_through() {
        let problem = example_problem();
        let spec = SchedulerSpec {
            limits: SearchLimits::expansions(1),
            ..SchedulerSpec::default()
        };
        let reg = SchedulerRegistry::with_spec(spec);
        for name in ["astar", "wastar", "exhaustive"] {
            let report = reg.get(name).unwrap().run(&problem);
            assert_eq!(report.result.outcome, SearchOutcome::LimitReached, "{name}");
        }
    }

    /// The `wastar` entry reads the spec's weight (visible in its banner and
    /// in the `w x optimal` bound) and the seeded-incumbent knob reaches the
    /// serial families without changing their optima.
    #[test]
    fn weight_and_seed_knobs_flow_through() {
        let problem = example_problem();
        let spec = SchedulerSpec { weight: 2.0, seed_incumbent: true, ..SchedulerSpec::default() };
        let reg = SchedulerRegistry::with_spec(spec);
        assert!(reg.get("wastar").unwrap().description().contains("w = 2"));
        let w = reg.get("wastar").unwrap().run(&problem);
        assert!(w.result.schedule_length <= 28, "2 x optimal bound");
        w.result.schedule.as_ref().unwrap().validate(problem.graph(), problem.network()).unwrap();
        for name in ["astar", "chenyu"] {
            let seeded = reg.get(name).unwrap().run(&problem);
            assert!(seeded.result.is_optimal(), "{name}");
            assert_eq!(seeded.result.schedule_length, 14, "{name}");
            // Strict pruning against the attained list incumbent can only
            // shrink the search.
            let plain = SchedulerRegistry::builtin().get(name).unwrap().run(&problem);
            assert!(
                seeded.result.stats.expanded <= plain.result.stats.expanded,
                "{name}: seeded {} vs plain {}",
                seeded.result.stats.expanded,
                plain.result.stats.expanded
            );
        }
    }
}

//! Offline, API-compatible stand-in for the subset of [`serde_json`] this
//! workspace uses: [`to_string`], [`to_string_pretty`] and [`from_str`],
//! driven by the vendored `serde` traits.
//!
//! The writer emits standard JSON (deterministic key order, `\uXXXX` escapes
//! for control characters); the reader is a full recursive-descent JSON
//! parser with a nesting-depth limit and precise error positions.
//!
//! [`serde_json`]: https://docs.rs/serde_json

use std::fmt;

pub use serde::Value;

/// Error produced by JSON serialisation or deserialisation.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indents).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // integral floats print without a fraction, which parses back
                // as an integer value — `f64::from_value` accepts both.
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no NaN/Infinity; mirror a lossy-but-valid `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_whitespace();
    let v = p.value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape already
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("control character inside string"));
                }
                Some(b) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).  The
                    // leading byte determines the width; validating only the
                    // consumed slice keeps string parsing linear.
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let slice = &self.bytes[self.pos..self.pos + width];
                    let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            n = n * 16 + d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("invalid number"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n == 0 {
                        return Ok(Value::U64(0));
                    }
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::I64(i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.error("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("2e3").unwrap(), Value::F64(2000.0));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains("\n  ["));
        let back: Vec<Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::String("Aé".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
        let json = to_string(&"tab\there".to_string()).unwrap();
        assert_eq!(json, r#""tab\there""#);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(from_str::<u64>("\"not a number\"").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&doc).is_err());
    }
}
